//! `gkm` — facade crate of the GK-means reproduction.
//!
//! Re-exports the full public API of the workspace so downstream users can
//! depend on a single crate:
//!
//! * [`vecstore`] — vector storage, distance kernels, dataset I/O;
//! * [`datagen`] — synthetic SIFT/GIST/GloVe/VLAD-like workload generators;
//! * [`knn_graph`] — KNN graph structure, exact construction, NN-Descent;
//! * [`baselines`] — Lloyd, k-means++, Mini-Batch, closure k-means, bisecting,
//!   Elkan and Hamerly baselines;
//! * [`gkmeans`] — the paper's contribution: boost k-means, the two-means
//!   tree, GK-means (Alg. 2) and graph construction by fast k-means (Alg. 3);
//! * [`anns`] — graph-based approximate nearest-neighbour search;
//! * [`ivf`] — the cluster-backed inverted-file serving index (batched
//!   multi-probe search with on-disk persistence);
//! * [`eval`] — distortion, recall, co-occurrence and reporting utilities.
//!
//! The [`prelude`] pulls in the handful of types most programs need.
//!
//! ```
//! use gkm::prelude::*;
//!
//! let workload = Workload::generate_with_n(PaperDataset::Sift100K, 2_000, 7);
//! let params = GkParams::default().kappa(10).xi(25).tau(3).iterations(10);
//! let outcome = GkMeansPipeline::new(params).cluster(&workload.data, 20);
//! let distortion = average_distortion(
//!     &workload.data,
//!     &outcome.clustering.labels,
//!     &outcome.clustering.centroids,
//! );
//! assert!(distortion.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use anns;
pub use baselines;
pub use datagen;
pub use eval;
pub use gkmeans;
pub use ivf;
pub use knn_graph;
pub use vecstore;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use anns::eval::SearchReport;
    pub use anns::{evaluate as evaluate_anns, AnnsReport, GraphSearcher, SearchParams};
    pub use baselines::akm::ApproximateKMeans;
    pub use baselines::bisecting::BisectingKMeans;
    pub use baselines::closure::ClosureKMeans;
    pub use baselines::common::{Clustering, IterationStat, KMeansConfig};
    pub use baselines::elkan::ElkanKMeans;
    pub use baselines::hamerly::HamerlyKMeans;
    pub use baselines::hkm::{HierarchicalKMeans, HkmTree};
    pub use baselines::kdtree::{KdForestParams, KdTreeForest};
    pub use baselines::lloyd::LloydKMeans;
    pub use baselines::minibatch::MiniBatchKMeans;
    pub use baselines::seeding::Seeding;
    pub use datagen::{DatasetSpec, DescriptorFamily, GmmDataset, PaperDataset, Workload};
    pub use eval::{average_distortion, cooccurrence_by_rank, PhaseTimer, Series, Table};
    pub use gkmeans::{
        BoostKMeans, ClusterState, GkMeans, GkMeansPipeline, GkMode, GkParams, KnnGraphBuilder,
        OnlineGkMeans, ParallelKnnGraphBuilder, PipelineOutcome,
    };
    pub use ivf::{evaluate as evaluate_ivf, IvfIndex, IvfReport, IvfSearchParams};
    pub use knn_graph::brute::{exact_graph, exact_ground_truth};
    pub use knn_graph::nn_descent::{nn_descent, NnDescentParams};
    pub use knn_graph::nsw::{nsw_build, NswParams};
    pub use knn_graph::recall::{graph_recall_at_1, graph_recall_at_r};
    pub use knn_graph::{KnnGraph, Neighbor};
    pub use vecstore::{Metric, VectorSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_compose() {
        let workload = Workload::generate_with_n(PaperDataset::Glove1M, 1_000, 3);
        assert_eq!(workload.data.dim(), 100);
        let cfg = KMeansConfig::with_k(8).max_iters(3).record_trace(false);
        let lloyd = LloydKMeans::new(cfg).fit(&workload.data);
        assert_eq!(lloyd.labels.len(), 1_000);
    }
}
