//! Fx-style hashing: a fast, non-cryptographic hasher for hot-path hash sets
//! and maps keyed by small integers.
//!
//! The visited-pair sets inside the KNN-graph builders sit in the innermost
//! refinement loop; `std`'s default SipHash spends more time hashing a `u64`
//! key than the loop spends on everything else around it.  This crate is a
//! clean-room implementation of the multiply-rotate scheme popularised by the
//! Firefox/rustc "FxHash": each word is folded in with a rotate, xor and a
//! multiplication by a large odd constant.  It is not DoS-resistant — use it
//! only for internal keys, never for attacker-controlled input.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for small keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_behaves_like_a_set() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        assert!(set.insert(42));
        assert!(!set.insert(42));
        assert!(set.contains(&42));
        assert!(!set.contains(&43));
        for i in 0..10_000u64 {
            set.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
        }
        assert_eq!(set.len(), 10_001);
    }

    #[test]
    fn hash_is_deterministic_and_spreads_sequential_keys() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(7), hash(7));
        // sequential keys must not collide in the low bits the table uses
        let low_bits: std::collections::HashSet<u64> =
            (0..1024u64).map(|v| hash(v) & 0x3ff).collect();
        assert!(low_bits.len() > 512, "low-bit spread {}", low_bits.len());
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a, h.finish());
    }

    #[test]
    fn map_round_trips() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.len(), 2);
    }
}
