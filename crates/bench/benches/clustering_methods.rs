//! Macro-benchmark: end-to-end clustering time for every method at a fixed
//! iteration budget — the Criterion counterpart of Fig. 6, kept small enough
//! to run in CI.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::Method;
use datagen::{PaperDataset, Workload};

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_methods");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    let w = Workload::generate_with_n(PaperDataset::Vlad10M, 3_000, 13);
    let iterations = 5usize;
    for &k in &[64usize, 256] {
        for method in Method::scalability_set() {
            group.bench_with_input(
                BenchmarkId::new(method.label().replace(' ', "_"), k),
                &k,
                |bench, &k| {
                    bench.iter(|| {
                        let (clustering, _) = method.run(&w.data, k, iterations, 1, false);
                        black_box(clustering.distance_evals)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
