//! Micro-benchmark: approximate KNN-graph construction cost — Alg. 3
//! (clustering-driven) vs NN-Descent vs NSW vs exact brute force.  The paper
//! claims Alg. 3 is at least 2× faster than NN-Descent and small-world graph
//! construction (Sec. 4.3); the brute-force column shows what all three are
//! avoiding.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use datagen::{PaperDataset, Workload};
use gkmeans::{GkParams, KnnGraphBuilder};
use knn_graph::brute::exact_graph;
use knn_graph::nn_descent::{nn_descent, NnDescentParams};
use knn_graph::nsw::{nsw_build, NswParams};

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[2_000usize, 5_000] {
        let w = Workload::generate_with_n(PaperDataset::Sift100K, n, 11);
        let k = 10usize;

        group.bench_with_input(BenchmarkId::new("alg3_gkmeans", n), &n, |bench, _| {
            bench.iter(|| {
                let (g, _) = KnnGraphBuilder::new(
                    GkParams::default()
                        .kappa(k)
                        .xi(50)
                        .tau(5)
                        .seed(3)
                        .record_trace(false),
                )
                .graph_k(k)
                .build(&w.data);
                black_box(g.stored_edges())
            })
        });

        group.bench_with_input(BenchmarkId::new("nn_descent", n), &n, |bench, _| {
            bench.iter(|| {
                let g = nn_descent(
                    &w.data,
                    &NnDescentParams {
                        k,
                        seed: 3,
                        ..Default::default()
                    },
                );
                black_box(g.stored_edges())
            })
        });

        group.bench_with_input(BenchmarkId::new("nsw_small_world", n), &n, |bench, _| {
            bench.iter(|| {
                let g = nsw_build(&w.data, &NswParams::with_m(k).seed(3));
                black_box(g.stored_edges())
            })
        });

        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |bench, _| {
            bench.iter(|| {
                let g = exact_graph(&w.data, k);
                black_box(g.stored_edges())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
