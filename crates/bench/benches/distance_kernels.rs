//! Micro-benchmark: distance kernels across the paper's dimensionalities
//! (100-d GloVe, 128-d SIFT, 512-d VLAD, 960-d GIST).  The `l2_sq` kernel is
//! the inner loop of every algorithm in the workspace, so its throughput sets
//! the constant factor of all the macro results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use vecstore::distance::{dot, l2_sq, l2_sq_reference};
use vecstore::kernels;

fn vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.71).cos()).collect();
    (a, b)
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dim in [100usize, 128, 512, 960] {
        let (a, b) = vectors(dim);
        group.bench_with_input(BenchmarkId::new("l2_sq_simd", dim), &dim, |bench, _| {
            bench.iter(|| l2_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("l2_sq_scalar", dim), &dim, |bench, _| {
            bench.iter(|| kernels::scalar::l2_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(
            BenchmarkId::new("l2_sq_reference", dim),
            &dim,
            |bench, _| bench.iter(|| l2_sq_reference(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)))
        });

        // batched one-to-many: 256 candidate rows per call, reported per call
        let rows = 256usize;
        let block: Vec<f32> = (0..rows * dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let mut out = vec![0.0f32; rows];
        group.bench_with_input(
            BenchmarkId::new("l2_sq_batched_256", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    kernels::l2_sq_one_to_many(black_box(&a), &block, &mut out);
                    out[rows - 1]
                })
            },
        );

        // register-blocked tile: 16 queries × the same 256 candidate rows
        let queries = 16usize;
        let qs: Vec<f32> = (0..queries * dim)
            .map(|i| (i as f32 * 0.29).cos())
            .collect();
        let mut tile = vec![0.0f32; queries * rows];
        group.bench_with_input(
            BenchmarkId::new("l2_sq_tile_16x256", dim),
            &dim,
            |bench, _| {
                bench.iter(|| {
                    kernels::l2_sq_many_to_many(black_box(&qs), &block, dim, &mut tile);
                    tile[queries * rows - 1]
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
