//! Micro-benchmark: one assignment pass over the data — exhaustive
//! (traditional k-means, cost `n·k`) vs graph-restricted (GK-means, cost
//! `n·κ̃` with κ̃ ≤ κ) vs the boost-k-means ΔI evaluation.  This isolates the
//! paper's core claim at the level of a single iteration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use baselines::common::assign_exhaustive;
use datagen::{PaperDataset, Workload};
use gkmeans::two_means::TwoMeansTree;
use gkmeans::ClusterState;
use knn_graph::brute::exact_graph;
use vecstore::VectorSet;

struct Fixture {
    data: VectorSet,
    centroids: VectorSet,
    labels: Vec<usize>,
    state: ClusterState,
    graph: knn_graph::KnnGraph,
    k: usize,
}

fn fixture(n: usize, k: usize) -> Fixture {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, n, 7);
    let labels = TwoMeansTree::new(1).partition(&w.data, k);
    let state = ClusterState::from_labels(&w.data, labels.clone(), k);
    let centroids = state.centroids();
    let graph = exact_graph(&w.data, 10);
    Fixture {
        data: w.data,
        centroids,
        labels,
        state,
        graph,
        k,
    }
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_step");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &k in &[64usize, 256] {
        let fx = fixture(4_000, k);

        group.bench_with_input(BenchmarkId::new("exhaustive", k), &k, |bench, _| {
            bench.iter(|| {
                let mut labels = fx.labels.clone();
                let mut evals = 0u64;
                assign_exhaustive(&fx.data, &fx.centroids, &mut labels, &mut evals);
                black_box(evals)
            })
        });

        group.bench_with_input(BenchmarkId::new("graph_restricted", k), &k, |bench, _| {
            bench.iter(|| {
                // one GK-means-style pass: candidates from the graph, ΔI moves
                let mut state = fx.state.clone();
                let mut moves = 0usize;
                for i in 0..fx.data.len() {
                    let u = state.label(i);
                    if state.size(u) <= 1 {
                        continue;
                    }
                    let x = fx.data.row(i);
                    let removal = state.removal_part(i, x);
                    let mut best_v = u;
                    let mut best_delta = 0.0;
                    for nb in fx.graph.neighbors(i).as_slice().iter().take(10) {
                        let v = state.label(nb.id as usize);
                        if v == u {
                            continue;
                        }
                        let delta = removal + state.addition_part(x, v);
                        if delta > best_delta {
                            best_delta = delta;
                            best_v = v;
                        }
                    }
                    if best_v != u && best_delta > 0.0 {
                        state.apply_move(i, x, best_v);
                        moves += 1;
                    }
                }
                black_box(moves)
            })
        });

        group.bench_with_input(BenchmarkId::new("boost_full_scan", k), &k, |bench, _| {
            bench.iter(|| {
                // BKM pass without the graph: every cluster is a candidate
                let mut state = fx.state.clone();
                let mut moves = 0usize;
                for i in 0..fx.data.len() {
                    let u = state.label(i);
                    if state.size(u) <= 1 {
                        continue;
                    }
                    let x = fx.data.row(i);
                    let removal = state.removal_part(i, x);
                    let mut best_v = u;
                    let mut best_delta = 0.0;
                    for v in 0..fx.k {
                        if v == u {
                            continue;
                        }
                        let delta = removal + state.addition_part(x, v);
                        if delta > best_delta {
                            best_delta = delta;
                            best_v = v;
                        }
                    }
                    if best_v != u && best_delta > 0.0 {
                        state.apply_move(i, x, best_v);
                        moves += 1;
                    }
                }
                black_box(moves)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment);
criterion_main!(benches);
