//! `bench` — experiment harness index.
//!
//! Run `cargo run --release -p bench` to list the available experiment
//! binaries (one per paper figure/table) and the Criterion micro-benchmarks.

fn main() {
    println!("GK-means reproduction — experiment harness");
    println!();
    println!("Experiment binaries (cargo run --release -p bench --bin <name> [-- --scale <f>]):");
    for (bin, what) in [
        (
            "datasets",
            "Tab. 1  — dataset overview (paper vs synthetic surrogates)",
        ),
        (
            "fig1_cooccurrence",
            "Fig. 1  — co-occurrence of a sample and its rank-r NN in one cluster",
        ),
        (
            "fig2_graph_evolution",
            "Fig. 2  — KNN-graph recall & clustering distortion vs tau",
        ),
        (
            "fig4_config_test",
            "Fig. 4  — distortion vs graph recall for three GK-means configurations",
        ),
        (
            "fig5_quality",
            "Fig. 5  — distortion vs iteration and vs time for all methods",
        ),
        (
            "fig6_scalability_time",
            "Fig. 6  — time vs data scale (a) and vs cluster count (b)",
        ),
        (
            "fig7_scalability_quality",
            "Fig. 7  — distortion for the same two sweeps",
        ),
        (
            "table2_massive_k",
            "Tab. 2  — partitioning the VLAD-like workload into a massive number of clusters",
        ),
        (
            "anns_eval",
            "Sec.4.3 — ANN search with the Alg. 3 graph vs NN-Descent",
        ),
        (
            "param_sweep",
            "Sec.4.4 — kappa / xi parameter sensitivity (ablation)",
        ),
    ] {
        println!("  {bin:<26} {what}");
    }
    println!();
    println!("Criterion micro-benchmarks (cargo bench -p bench):");
    println!("  distance_kernels    l2 / dot kernels across the paper's dimensionalities");
    println!("  assignment_step     exhaustive vs graph-restricted assignment cost");
    println!("  graph_construction  Alg. 3 vs NN-Descent vs brute force");
    println!("  clustering_methods  end-to-end clustering time per method");
}
