//! Fig. 1 — the probability that one sample and its rank-r nearest neighbour
//! reside in the same cluster, for (a) k-means and (b) the two-means tree,
//! with cluster size fixed to 50 (SIFT100K in the paper).
//!
//! Expected shape: both curves start around 0.3–0.5 at rank 1, decay with
//! rank, and sit orders of magnitude above the random-collision probability
//! (≈ cluster_size / n).
//!
//! ```bash
//! cargo run --release -p bench --bin fig1_cooccurrence -- --scale 0.2
//! ```

use baselines::common::KMeansConfig;
use baselines::lloyd::LloydKMeans;
use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::cooccurrence::{cooccurrence_by_rank, random_collision_probability};
use eval::{Series, Table};
use gkmeans::two_means::TwoMeansTree;
use knn_graph::brute::exact_graph;

fn main() {
    let opts = Options::parse(0.2);
    let w = Workload::generate(PaperDataset::Sift100K, opts.scale, opts.seed);
    let n = w.data.len();
    // Fig. 1 fixes the cluster size to 50 samples.
    let cluster_size = 50usize;
    let k = (n / cluster_size).max(2);
    let max_rank = 150.min(n / 10).max(10);
    println!("Fig. 1 — co-occurrence statistics on {n} SIFT-like samples, k = {k} (cluster size ≈ {cluster_size})");

    println!("computing the exact KNN graph for ranks 1..{max_rank} (evaluation only)…");
    let exact = exact_graph(&w.data, max_rank);

    // (a) traditional k-means clustering
    let kmeans = LloydKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(opts.iterations.min(20))
            .seed(opts.seed)
            .record_trace(false),
    )
    .fit(&w.data);
    let kmeans_probs = cooccurrence_by_rank(&exact, &kmeans.labels, max_rank);

    // (b) two-means tree partition
    let tree_labels = TwoMeansTree::new(opts.seed).partition(&w.data, k);
    let tree_probs = cooccurrence_by_rank(&exact, &tree_labels, max_rank);

    let random = random_collision_probability(&kmeans.labels, k);

    let mut table = Table::new(
        "Fig. 1 — P(rank-r NN in the same cluster)",
        &["rank", "(a) k-means", "(b) 2M tree"],
    );
    for rank in [1usize, 5, 10, 25, 50, 100, 150] {
        if rank > max_rank {
            continue;
        }
        table.row(&[
            rank.to_string(),
            format!("{:.3}", kmeans_probs[rank - 1]),
            format!("{:.3}", tree_probs[rank - 1]),
        ]);
    }
    print!("{}", table.render());
    println!("random collision probability: {random:.5} (paper quotes 0.0005 for SIFT100K)");

    for (name, probs) in [("kmeans", &kmeans_probs), ("2m_tree", &tree_probs)] {
        let mut series = Series::new(name, "rank", "probability");
        for (r, &p) in probs.iter().enumerate() {
            series.push((r + 1) as f64, p);
        }
        print!("{}", series.to_csv());
    }
}
