//! Fig. 4 — configuration test of Alg. 2: clustering distortion as a function
//! of the supplied KNN-graph quality (recall), for three configurations:
//!
//! * `KGraph+GK-means` — graph from NN-Descent, boost-k-means moves;
//! * `GK-means`        — graph from Alg. 3, boost-k-means moves (standard);
//! * `GK-means-`       — graph from Alg. 3, traditional closest-centroid moves.
//!
//! The paper runs this on SIFT1M with k = 10 000.  Expected shape: for every
//! configuration, higher graph recall gives lower distortion; at matched
//! recall the boost-based runs sit clearly below `GK-means-`, and `GK-means`
//! converges slightly lower than `KGraph+GK-means`.
//!
//! ```bash
//! cargo run --release -p bench --bin fig4_config_test -- --scale 0.05
//! ```

use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{average_distortion, Series, Table};
use gkmeans::{GkMeans, GkMode, GkParams, KnnGraphBuilder};
use knn_graph::brute::exact_graph;
use knn_graph::nn_descent::{nn_descent_with_stats, NnDescentParams};
use knn_graph::recall::graph_recall_at_1;

fn main() {
    let opts = Options::parse(0.05);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let n = w.data.len();
    // The paper fixes k = 10 000 on 1M points (n/k = 100); keep the same ratio.
    let k = (n / 100).max(10);
    let kappa = 20usize;
    println!("Fig. 4 — configuration test on {n} SIFT-like samples, k = {k}");

    println!("computing the exact graph for recall measurement…");
    let exact = exact_graph(&w.data, kappa);

    let mut table = Table::new(
        "Fig. 4 — distortion vs graph recall",
        &["configuration", "graph recall@1", "avg distortion"],
    );
    let mut series: Vec<Series> = Vec::new();

    // Graphs of increasing quality from Alg. 3 (vary τ).
    let mut gk_series = Series::new("GK-means", "recall", "distortion");
    let mut gk_minus_series = Series::new("GK-means-", "recall", "distortion");
    for tau in [1usize, 2, 4, 8, 12] {
        let (graph, _) = KnnGraphBuilder::new(
            GkParams::default()
                .kappa(kappa)
                .xi(50)
                .tau(tau)
                .seed(opts.seed)
                .record_trace(false),
        )
        .graph_k(kappa)
        .build(&w.data);
        let recall = graph_recall_at_1(&graph, &exact);
        for (mode, label, series_ref) in [
            (GkMode::Boost, "GK-means", &mut gk_series),
            (GkMode::Traditional, "GK-means-", &mut gk_minus_series),
        ] {
            let clustering = GkMeans::new(
                GkParams::default()
                    .kappa(kappa)
                    .iterations(opts.iterations.min(20))
                    .mode(mode)
                    .seed(opts.seed)
                    .record_trace(false),
            )
            .fit(&w.data, k, &graph);
            let e = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
            table.row(&[
                format!("{label} (tau={tau})"),
                format!("{recall:.3}"),
                format!("{e:.2}"),
            ]);
            series_ref.push(recall, e);
        }
    }
    series.push(gk_series);
    series.push(gk_minus_series);

    // Graphs of increasing quality from NN-Descent (vary the iteration cap).
    let mut kgraph_series = Series::new("KGraph+GK-means", "recall", "distortion");
    for iters in [1usize, 2, 4, 8] {
        let (graph, _) = nn_descent_with_stats(
            &w.data,
            &NnDescentParams {
                k: kappa,
                max_iters: iters,
                seed: opts.seed,
                ..Default::default()
            },
        );
        let recall = graph_recall_at_1(&graph, &exact);
        let clustering = GkMeans::new(
            GkParams::default()
                .kappa(kappa)
                .iterations(opts.iterations.min(20))
                .seed(opts.seed)
                .record_trace(false),
        )
        .fit(&w.data, k, &graph);
        let e = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
        table.row(&[
            format!("KGraph+GK-means (it={iters})"),
            format!("{recall:.3}"),
            format!("{e:.2}"),
        ]);
        kgraph_series.push(recall, e);
    }
    series.push(kgraph_series);

    print!("{}", table.render());
    for s in &series {
        print!("{}", s.to_csv());
    }
    println!("(expected: distortion decreases with recall for every configuration; the two");
    println!(" boost-based configurations sit below GK-means- at comparable recall.)");
}
