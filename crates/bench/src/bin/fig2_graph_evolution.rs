//! Fig. 2 — the intertwined evolution of KNN-graph recall and clustering
//! distortion as a function of the construction round τ (Alg. 3, SIFT100K in
//! the paper).
//!
//! Expected shape: recall starts near 0 (random graph) and climbs above 0.6
//! within ~5 rounds while the per-round clustering distortion drops sharply,
//! then both flatten.
//!
//! ```bash
//! cargo run --release -p bench --bin fig2_graph_evolution -- --scale 0.2
//! ```

use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{Series, Table};
use gkmeans::{GkParams, KnnGraphBuilder};
use knn_graph::brute::exact_graph;
use knn_graph::recall::graph_recall_at_1;

fn main() {
    let opts = Options::parse(0.2);
    let w = Workload::generate(PaperDataset::Sift100K, opts.scale, opts.seed);
    let n = w.data.len();
    let tau = 30usize;
    println!("Fig. 2 — graph/clustering co-evolution on {n} SIFT-like samples, tau = 1..{tau}");

    println!("computing the exact KNN graph for recall evaluation…");
    let exact = exact_graph(&w.data, 10);

    // Rebuild the graph for increasing τ.  Alg. 3 is incremental, so instead of
    // rebuilding from scratch per τ we observe each round of a single run.
    let mut distortions: Vec<f64> = Vec::new();
    let params = GkParams::default()
        .kappa(10)
        .xi(50)
        .tau(tau)
        .seed(opts.seed)
        .record_trace(false);
    // Snapshot recall per round by running the builder once per prefix length
    // would be O(τ²); instead we track distortion from the observer and
    // measure recall at a few checkpoints by re-running with that τ.
    let (_, _) = KnnGraphBuilder::new(params)
        .graph_k(10)
        .build_with_observer(&w.data, |info| distortions.push(info.distortion));

    let checkpoints = [1usize, 2, 3, 5, 8, 12, 20, 30];
    let mut recall_series = Series::new("recall", "tau", "top-1 recall");
    let mut distortion_series = Series::new("distortion", "tau", "average distortion");
    let mut table = Table::new(
        "Fig. 2 — recall and distortion vs tau",
        &["tau", "recall@1", "avg distortion"],
    );
    for &t in &checkpoints {
        if t > tau {
            continue;
        }
        let (graph, _) = KnnGraphBuilder::new(params.tau(t))
            .graph_k(10)
            .build(&w.data);
        let recall = graph_recall_at_1(&graph, &exact);
        let distortion = distortions[t - 1];
        table.row(&[
            t.to_string(),
            format!("{recall:.3}"),
            format!("{distortion:.1}"),
        ]);
        recall_series.push(t as f64, recall);
        distortion_series.push(t as f64, distortion);
    }
    print!("{}", table.render());
    print!("{}", recall_series.to_csv());
    print!("{}", distortion_series.to_csv());
    println!("(expected: recall ≈ 0 at tau=1, above ~0.6 by tau≈5, flattening after; distortion mirrors it downwards.)");
}
