//! Fig. 6 — scalability in time on the VLAD-like workload:
//!
//! * (a) time vs data scale `n` (10K → 10M in the paper) at k = 1 024;
//! * (b) time vs cluster count `k` (1 024 → 8 192 in the paper) at n = 1M.
//!
//! Expected shape: Mini-Batch is fastest but lossy (see Fig. 7); GK-means is
//! constantly faster than closure k-means and ≥10× faster than k-means/BKM;
//! in (b) the k-means/BKM curves grow linearly with k while closure and
//! GK-means stay nearly flat.
//!
//! The default `--scale` keeps the sweep laptop-sized (the `n` axis tops out
//! at `scale × 10M`); pass `--full` to reproduce the paper's axis.
//!
//! ```bash
//! cargo run --release -p bench --bin fig6_scalability_time -- --scale 0.005
//! ```

use bench::{Method, Options};
use datagen::{PaperDataset, Workload};
use eval::report::human_secs;
use eval::{Series, Table};

fn main() {
    let opts = Options::parse(0.005);
    let iterations = 30.min(opts.iterations); // the paper fixes 30 iterations
    let max_n = (PaperDataset::Vlad10M.paper_n() as f64 * opts.scale) as usize;

    // ------------------------------------------------------------- panel (a)
    // n sweep: 10K → max_n (log-spaced decades like the paper's x-axis).
    let mut n_values = vec![10_000usize.min(max_n.max(1_000))];
    while *n_values.last().unwrap() * 10 <= max_n {
        n_values.push(n_values.last().unwrap() * 10);
    }
    let k_fixed = 1_024usize;
    println!("Fig. 6(a) — time vs data scale (k = {k_fixed}, {iterations} iterations)");
    let mut table_a = Table::new(
        "Fig. 6(a) — time vs n",
        &["n", "Mini-Batch", "closure", "k-means", "BKM", "GK-means"],
    );
    let mut series_a: Vec<Series> = Method::scalability_set()
        .iter()
        .map(|m| Series::new(m.label(), "n", "seconds"))
        .collect();
    for &n in &n_values {
        let w = Workload::generate_with_n(PaperDataset::Vlad10M, n, opts.seed);
        let k = k_fixed.min(n / 2).max(2);
        let mut cells = vec![n.to_string()];
        for (mi, method) in Method::scalability_set().iter().enumerate() {
            let (clustering, aux) = method.run(&w.data, k, iterations, opts.seed, false);
            let secs = (aux + clustering.total_time()).as_secs_f64();
            cells.push(human_secs(secs));
            series_a[mi].push(n as f64, secs);
        }
        table_a.row(&cells);
    }
    print!("{}", table_a.render());
    for s in &series_a {
        print!("{}", s.to_csv());
    }

    // ------------------------------------------------------------- panel (b)
    // k sweep at fixed n (the paper uses n = 1M; here n = scale × 10M).
    let n_fixed = max_n.max(2_048);
    let k_values: Vec<usize> = [1_024usize, 2_048, 4_096, 8_192]
        .iter()
        .copied()
        .filter(|&k| k * 2 <= n_fixed)
        .collect();
    let k_values = if k_values.is_empty() {
        vec![(n_fixed / 8).max(2), (n_fixed / 4).max(4)]
    } else {
        k_values
    };
    println!();
    println!("Fig. 6(b) — time vs cluster count (n = {n_fixed}, {iterations} iterations)");
    let w = Workload::generate_with_n(PaperDataset::Vlad10M, n_fixed, opts.seed);
    let mut table_b = Table::new(
        "Fig. 6(b) — time vs k",
        &["k", "Mini-Batch", "closure", "k-means", "BKM", "GK-means"],
    );
    let mut series_b: Vec<Series> = Method::scalability_set()
        .iter()
        .map(|m| Series::new(m.label(), "k", "seconds"))
        .collect();
    for &k in &k_values {
        let mut cells = vec![k.to_string()];
        for (mi, method) in Method::scalability_set().iter().enumerate() {
            let (clustering, aux) = method.run(&w.data, k, iterations, opts.seed, false);
            let secs = (aux + clustering.total_time()).as_secs_f64();
            cells.push(human_secs(secs));
            series_b[mi].push(k as f64, secs);
        }
        table_b.row(&cells);
    }
    print!("{}", table_b.render());
    for s in &series_b {
        print!("{}", s.to_csv());
    }
    println!("(expected: k-means and BKM times grow ~linearly with k; closure and GK-means stay nearly constant.)");
}
