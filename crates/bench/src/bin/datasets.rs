//! Tab. 1 — dataset overview: the paper's descriptor collections and the
//! synthetic surrogates the harness generates for them.
//!
//! ```bash
//! cargo run --release -p bench --bin datasets -- --scale 0.01
//! ```

use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::Table;

fn main() {
    let opts = Options::parse(0.01);
    let mut table = Table::new(
        "Tab. 1 — Overview of datasets (paper vs generated surrogate)",
        &[
            "dataset",
            "paper n",
            "dim",
            "data type",
            "surrogate n",
            "surrogate components",
        ],
    );
    for dataset in PaperDataset::all() {
        let w = Workload::generate(dataset, opts.scale, opts.seed);
        let data_type = match dataset {
            PaperDataset::Sift100K | PaperDataset::Sift1M => "SIFT (local feature)",
            PaperDataset::Gist1M => "GIST (global feature)",
            PaperDataset::Glove1M => "GloVe (word vector)",
            PaperDataset::Vlad10M => "VLAD from YFCC",
        };
        table.row(&[
            dataset.name().into(),
            dataset.paper_n().to_string(),
            dataset.dim().to_string(),
            data_type.into(),
            w.len().to_string(),
            w.spec.components.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("(surrogates are clustered Gaussian mixtures matching each dataset's dimensionality");
    println!(" and value range — see DESIGN.md §2 for the substitution rationale.)");
}
