//! Tab. 2 — the most challenging scalability test: partitioning the VLAD-like
//! workload into a massive number of clusters (10M → 1M clusters in the
//! paper, i.e. n/k = 10).  Only closure k-means and the GK-means variants
//! remain workable in this regime; plain k-means is extrapolated.
//!
//! Expected shape (paper, Tab. 2):
//!
//! | method            | init | iter | total | E     | recall |
//! |-------------------|------|------|-------|-------|--------|
//! | KGraph+GK-means   | 27.3 | 3.2  | 30.5 h| 0.649 | 0.40   |
//! | GK-means          | 2.7  | 2.5  | 5.2 h | 0.619 | 0.08   |
//! | Closure k-means   | 0.9  | 9.6  | 10.5 h| 0.700 | n.a.   |
//!
//! i.e. GK-means has the lowest total time *and* the lowest distortion, even
//! though its graph recall is far below NN-Descent's; traditional k-means
//! would take ~3 years.
//!
//! ```bash
//! cargo run --release -p bench --bin table2_massive_k -- --scale 0.003
//! ```

use std::time::Instant;

use baselines::closure::ClosureKMeans;
use baselines::common::KMeansConfig;
use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::report::human_secs;
use eval::{average_distortion, Table};
use gkmeans::{GkMeansPipeline, GkParams};
use knn_graph::brute::exact_neighbors_of_subset;
use knn_graph::nn_descent::{nn_descent, NnDescentParams};
use knn_graph::recall::estimated_recall_at_1;
use vecstore::distance::l2_sq;
use vecstore::sample::{rng_from_seed, sample_distinct};

fn main() {
    let opts = Options::parse(0.003);
    let w = Workload::generate(PaperDataset::Vlad10M, opts.scale, opts.seed);
    let n = w.data.len();
    // The paper partitions 10M samples into 1M clusters: n/k = 10.
    let k = (n / 10).max(2);
    let iterations = opts.iterations.min(30);
    let kappa = 20usize;
    println!("Tab. 2 — partitioning {n} VLAD-like samples into k = {k} clusters ({iterations} iterations)");

    // Recall is estimated on 100 random samples, like the paper (Sec. 5.1).
    let mut rng = rng_from_seed(opts.seed ^ 0xabcd);
    let probe_ids = sample_distinct(&mut rng, n, 100.min(n)).expect("probe sample");
    let probe_truth = exact_neighbors_of_subset(&w.data, &probe_ids, 1);

    let mut table = Table::new(
        "Tab. 2 — massive-k clustering",
        &["method", "init", "iter", "total", "E", "graph recall@1"],
    );

    // --- GK-means (standard configuration, graph from Alg. 3) --------------
    let params = GkParams::default()
        .kappa(kappa)
        .xi(50)
        .tau(5)
        .iterations(iterations)
        .seed(opts.seed)
        .record_trace(false);
    let outcome = GkMeansPipeline::new(params).cluster(&w.data, k);
    let gk_e = average_distortion(
        &w.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    let gk_recall = estimated_recall_at_1(&outcome.graph, &probe_ids, &probe_truth);
    table.row(&[
        "GK-means".into(),
        human_secs(outcome.init_time().as_secs_f64()),
        human_secs(outcome.iter_time().as_secs_f64()),
        human_secs(outcome.total_time().as_secs_f64()),
        format!("{gk_e:.4}"),
        format!("{gk_recall:.2}"),
    ]);

    // --- KGraph+GK-means (graph from NN-Descent) ----------------------------
    let start = Instant::now();
    let nnd_graph = nn_descent(
        &w.data,
        &NnDescentParams {
            k: kappa,
            seed: opts.seed,
            ..Default::default()
        },
    );
    let nnd_time = start.elapsed();
    let nnd_recall = estimated_recall_at_1(&nnd_graph, &probe_ids, &probe_truth);
    let outcome_kg =
        GkMeansPipeline::new(params).cluster_with_graph(&w.data, k, nnd_graph, nnd_time);
    let kg_e = average_distortion(
        &w.data,
        &outcome_kg.clustering.labels,
        &outcome_kg.clustering.centroids,
    );
    table.row(&[
        "KGraph+GK-means".into(),
        human_secs(outcome_kg.init_time().as_secs_f64()),
        human_secs(outcome_kg.iter_time().as_secs_f64()),
        human_secs(outcome_kg.total_time().as_secs_f64()),
        format!("{kg_e:.4}"),
        format!("{nnd_recall:.2}"),
    ]);

    // --- Closure k-means -----------------------------------------------------
    let closure = ClosureKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(opts.seed)
            .record_trace(false),
    )
    .fit(&w.data);
    let closure_e = average_distortion(&w.data, &closure.labels, &closure.centroids);
    table.row(&[
        "Closure k-means".into(),
        human_secs(closure.init_time.as_secs_f64()),
        human_secs(closure.iter_time.as_secs_f64()),
        human_secs(closure.total_time().as_secs_f64()),
        format!("{closure_e:.4}"),
        "n.a.".into(),
    ]);

    print!("{}", table.render());

    // --- Traditional k-means: extrapolated, exactly like the paper ----------
    // Measure the cost of assigning a small probe batch against k centroids
    // and extrapolate to n samples × `iterations` iterations.
    let probe = 200.min(n);
    let centroid_probe = &outcome.clustering.centroids;
    let start = Instant::now();
    for i in 0..probe {
        let x = w.data.row(i);
        let mut best = f32::INFINITY;
        for c in 0..k {
            let d = l2_sq(x, centroid_probe.row(c));
            if d < best {
                best = d;
            }
        }
        std::hint::black_box(best);
    }
    let per_sample = start.elapsed().as_secs_f64() / probe as f64;
    let estimated_total = per_sample * n as f64 * iterations as f64;
    println!(
        "traditional k-means (extrapolated from {probe} probe assignments): ~{}",
        human_secs(estimated_total)
    );
    println!("(the paper's estimate for the full-scale task is ~3 years.)");
    println!();
    println!(
        "(expected: GK-means has the lowest E and the lowest total time; KGraph+GK-means has much"
    );
    println!(" higher graph recall yet slightly worse E and a far more expensive init phase.)");
}
