//! Ablation of the design choices DESIGN.md §5 calls out:
//!
//! 1. boost-k-means vs traditional moves inside GK-means (GK-means vs
//!    GK-means⁻, Fig. 4's configuration study) at an identical graph;
//! 2. cross-round pair deduplication in Alg. 3 on vs off (cost, not quality);
//! 3. the two-means tree's boost refinement of each bisection on vs off
//!    (initial-partition quality feeding Alg. 2);
//! 4. sequential vs rayon-parallel Alg. 3 refinement (identical graphs,
//!    wall-clock only — the parallel path is never used in measured runs).
//!
//! ```bash
//! cargo run --release -p bench --bin ablation_design_choices -- --scale 0.02
//! ```

use std::time::Instant;

use baselines::common::recompute_centroids;
use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{average_distortion, Table};
use gkmeans::two_means::TwoMeansTree;
use gkmeans::{GkMeans, GkMode, GkParams, KnnGraphBuilder, ParallelKnnGraphBuilder};
use knn_graph::brute::exact_graph;
use knn_graph::recall::graph_recall_at_1;
use vecstore::VectorSet;

fn main() {
    let opts = Options::parse(0.01);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let n = w.data.len();
    let k = (n / 100).max(10);
    let iterations = opts.iterations.min(15);
    println!("Design-choice ablations on {n} SIFT-like samples, k = {k}");

    let params = GkParams::default()
        .kappa(10)
        .xi(50)
        .tau(5)
        .iterations(iterations)
        .seed(opts.seed)
        .record_trace(false);

    // ------------------------------------------------------------------ (1)
    let (graph, _) = KnnGraphBuilder::new(params).graph_k(10).build(&w.data);
    let mut mode_table = Table::new(
        "ablation 1: optimisation mode at an identical Alg. 3 graph",
        &["mode", "E", "candidate checks"],
    );
    for (label, mode) in [
        ("boost (GK-means)", GkMode::Boost),
        ("traditional (GK-means-)", GkMode::Traditional),
    ] {
        let clustering = GkMeans::new(params.mode(mode)).fit(&w.data, k, &graph);
        mode_table.row(&[
            label.to_string(),
            format!(
                "{:.3}",
                average_distortion(&w.data, &clustering.labels, &clustering.centroids)
            ),
            clustering.distance_evals.to_string(),
        ]);
    }
    print!("{}", mode_table.render());

    // ------------------------------------------------------------------ (2)
    let mut dedup_table = Table::new(
        "ablation 2: cross-round pair deduplication in Alg. 3",
        &[
            "dedup",
            "refine distance evals",
            "build (s)",
            "recall@1 vs exact",
        ],
    );
    let exact = exact_small(&w.data, 5_000, 10);
    for dedup in [true, false] {
        let start = Instant::now();
        let (g, stats) = KnnGraphBuilder::new(params.dedup_pairs(dedup))
            .graph_k(10)
            .build(&w.data);
        let secs = start.elapsed().as_secs_f64();
        let recall = exact
            .as_ref()
            .map(|e| graph_recall_at_1(&g, e))
            .map_or("n/a".to_string(), |r| format!("{r:.3}"));
        dedup_table.row(&[
            dedup.to_string(),
            stats.refine_distance_evals.to_string(),
            format!("{secs:.2}"),
            recall,
        ]);
    }
    print!("{}", dedup_table.render());

    // ------------------------------------------------------------------ (3)
    let mut init_table = Table::new(
        "ablation 3: boost refinement inside the two-means tree bisections",
        &["boost refinement", "initial-partition E"],
    );
    for boost in [true, false] {
        let labels = TwoMeansTree::new(opts.seed)
            .boost_refine(boost)
            .partition(&w.data, k);
        let mut centroids = VectorSet::zeros(k, w.data.dim()).expect("dim > 0");
        recompute_centroids(&w.data, &labels, &mut centroids);
        init_table.row(&[
            boost.to_string(),
            format!("{:.3}", average_distortion(&w.data, &labels, &centroids)),
        ]);
    }
    print!("{}", init_table.render());

    // ------------------------------------------------------------------ (4)
    let mut par_table = Table::new(
        "ablation 4: sequential vs parallel Alg. 3 refinement (identical output)",
        &["builder", "build (s)", "graph updates"],
    );
    let start = Instant::now();
    let (g_seq, s_seq) = KnnGraphBuilder::new(params).graph_k(10).build(&w.data);
    par_table.row(&[
        "sequential".into(),
        format!("{:.2}", start.elapsed().as_secs_f64()),
        s_seq.graph_updates.to_string(),
    ]);
    let start = Instant::now();
    let (g_par, s_par) = ParallelKnnGraphBuilder::new(params)
        .graph_k(10)
        .build(&w.data);
    par_table.row(&[
        "parallel refinement".into(),
        format!("{:.2}", start.elapsed().as_secs_f64()),
        s_par.graph_updates.to_string(),
    ]);
    print!("{}", par_table.render());
    let identical = (0..w.data.len()).all(|i| {
        g_seq.neighbors(i).ids().collect::<Vec<_>>() == g_par.neighbors(i).ids().collect::<Vec<_>>()
    });
    println!("parallel output identical to sequential: {identical}");
}

/// Exact graph for recall, but only when the dataset is small enough for the
/// O(n²·d) cost to stay in the seconds range.
fn exact_small(data: &VectorSet, limit: usize, k: usize) -> Option<knn_graph::KnnGraph> {
    (data.len() <= limit).then(|| exact_graph(data, k))
}
