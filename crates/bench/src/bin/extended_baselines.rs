//! Sec. 5 (excluded comparators) — an extended comparison including AKM
//! (approximate k-means, ref. \[22\]) and HKM (hierarchical k-means /
//! vocabulary tree, ref. \[45\]).
//!
//! The paper drops both from its plots because "inferior performance to
//! closure k-means is reported in \[27\]".  This harness reproduces that
//! statement directly: at matched iteration budgets the distortion ordering
//! should come out roughly
//! `BKM ≤ GK-means ≤ closure k-means ≤ AKM ≤ HKM / bisecting`,
//! with the graph/tree-accelerated methods far cheaper than Lloyd in distance
//! evaluations.
//!
//! ```bash
//! cargo run --release -p bench --bin extended_baselines -- --scale 0.02
//! ```

use std::time::Instant;

use baselines::akm::ApproximateKMeans;
use baselines::bisecting::BisectingKMeans;
use baselines::common::{Clustering, KMeansConfig};
use baselines::hkm::HierarchicalKMeans;
use baselines::seeding::Seeding;
use bench::{Method, Options};
use datagen::{PaperDataset, Workload};
use eval::{davies_bouldin, sampled_silhouette, Table};

fn main() {
    let opts = Options::parse(0.02);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let n = w.data.len();
    let k = (n / 100).max(10);
    let iterations = opts.iterations.min(20);
    println!(
        "Extended baseline comparison on {n} SIFT-like samples, k = {k}, {iterations} iterations"
    );

    let cfg = KMeansConfig::with_k(k)
        .max_iters(iterations)
        .seed(opts.seed)
        .record_trace(false);

    let mut rows: Vec<(String, Clustering, f64)> = Vec::new();
    for method in [
        Method::Bkm,
        Method::GkMeans,
        Method::Closure,
        Method::KMeans,
    ] {
        let start = Instant::now();
        let (clustering, _aux) = method.run(&w.data, k, iterations, opts.seed, false);
        rows.push((
            method.label().to_string(),
            clustering,
            start.elapsed().as_secs_f64(),
        ));
    }
    let start = Instant::now();
    let akm = ApproximateKMeans::new(cfg)
        .with_seeding(Seeding::KMeansPlusPlus)
        .max_checks(32)
        .fit(&w.data);
    rows.push((
        "AKM (KD-forest, 32 checks)".into(),
        akm,
        start.elapsed().as_secs_f64(),
    ));

    let start = Instant::now();
    let hkm = HierarchicalKMeans::new(cfg).branching(8).fit(&w.data);
    rows.push((
        "HKM (vocabulary tree)".into(),
        hkm,
        start.elapsed().as_secs_f64(),
    ));

    let start = Instant::now();
    let bisect = BisectingKMeans::new(cfg).fit(&w.data);
    rows.push((
        "bisecting k-means".into(),
        bisect,
        start.elapsed().as_secs_f64(),
    ));

    let mut table = Table::new(
        "extended comparison (AKM / HKM included)",
        &[
            "method",
            "E",
            "silhouette",
            "Davies-Bouldin",
            "time (s)",
            "distance evals",
        ],
    );
    for (name, clustering, secs) in &rows {
        let e = clustering.distortion(&w.data);
        let sil = sampled_silhouette(&w.data, &clustering.labels, 200.min(n), opts.seed);
        let db = davies_bouldin(&w.data, &clustering.labels, &clustering.centroids);
        table.row(&[
            name.clone(),
            format!("{e:.3}"),
            format!("{sil:.3}"),
            format!("{db:.3}"),
            format!("{secs:.2}"),
            clustering.distance_evals.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nShape check: the boost-based methods (BKM, GK-means) should show the lowest\n\
         distortion; AKM and HKM should not beat closure k-means (the reason the paper\n\
         omits them); the tree/graph-accelerated methods should use far fewer distance\n\
         evaluations than Lloyd."
    );
}
