//! Distance-kernel micro-benchmark emitting `BENCH_kernels.json`.
//!
//! Times the workhorse squared-Euclidean evaluations at the dimensionalities
//! the paper's datasets use (plus a small d=32 point):
//!
//! * `scalar_pair`  — the portable 4-way unrolled pair kernel (the pre-SIMD
//!   baseline every other number is compared against);
//! * `simd_pair`    — the runtime-dispatched pair kernel ([`vecstore::distance::l2_sq`]);
//! * `simd_batched` — the one-to-many kernel over a contiguous block;
//! * `simd_batched_cached` — the norm-cached one-to-many expansion;
//! * `simd_indexed_gather` — the prefetching indexed-gather form over a
//!   shuffled candidate list;
//!
//! plus, per `(d, k)` assignment shape, the multi-query tier:
//!
//! * `batched_loop` — the pre-tiling assignment inner loop: one one-to-many
//!   sweep per query plus an argmin scan (the baseline the tile must beat);
//! * `many_to_many` — the register-blocked, cache-tiled distance tile,
//!   materialised;
//! * `assign_block` — the argmin-fused tile (never materialises the `m × k`
//!   matrix);
//!
//! plus the epoch tier (the `(d, k)` shapes at a full epoch block's worth of
//! queries):
//!
//! * `assign_two_pass` — one epoch's pre-fusion structure: the argmin-fused
//!   assignment sweep followed by a second pass over the data accumulating
//!   the centroid update (the old `recompute_centroids` inner loop);
//! * `assign_accumulate` — the fused single-pass sweep
//!   ([`kernels::assign_accumulate_block`]): the update accumulates while the
//!   query rows are still cache-hot, so the second data pass disappears;
//!
//! plus the executor tier:
//!
//! * `executor_round` in the JSON — one near-empty `run_blocks` round on the
//!   **persistent worker pool** vs the same round on the pre-pool scoped
//!   fork/join executor (`run_blocks_scoped`), at `--epoch-threads` workers.
//!   This isolates the per-round overhead the pool amortises: the scoped
//!   executor pays `threads − 1` thread spawns and joins every round, the
//!   pool a wake and a park;
//!
//! plus the serving tier:
//!
//! * `ivf_search` in the JSON — batched multi-probe IVF search
//!   ([`ivf::IvfIndex::batch_search`], block-tiled coarse routing) vs the
//!   per-query loop over [`ivf::IvfIndex::search`] on the same index at
//!   d = 128, k = 1024, nprobe = 8.  The two return bit-identical results;
//!   the batched form amortises the routing tile across the query block;
//! * `ivf_search_sq8` in the JSON — the SQ8 quantized serving tier at
//!   d ∈ {128, 960}: u8 panel scan + overfetch + exact re-rank vs the f32
//!   scan at the same nprobe, reporting per-query panel bytes streamed
//!   (re-rank fetches included) and recall@10 against the f32 scan's own
//!   answers.  CI gates ≥ 2× fewer bytes at d = 960 and recall ≥ 0.95;
//!
//! plus the full serving stack:
//!
//! * `serve_latency` in the JSON — the dynamic-batching TCP server end to
//!   end, over loopback.  The **closed loop** runs a few synchronous clients
//!   back to back and reports p50/p99 request latency and the sustained
//!   throughput; the **open loop** paces a pipelined sender at a multiple of
//!   that throughput against a deliberately small admission queue, so the
//!   shed/deadline paths are exercised, and reports the answered-request
//!   accounting (every sent request must come back with exactly one typed
//!   response — the CI gate) plus the p99 over everything answered;
//! * `obs_overhead` in the JSON — the same closed-loop workload against a
//!   metrics-disabled server and a fully metered one (registry counters,
//!   per-stage histograms, slow-query ring), in interleaved A/B rounds; the
//!   CI gate holds the enabled p50 at ≤ 1.05× the disabled p50;
//!
//! plus the durability tier:
//!
//! * `gksc_load` in the JSON — [`ivf::IvfIndex::load`] throughput on the
//!   checksummed GKSC v2 container vs a legacy unchecksummed v1 image of the
//!   same index; the CI gate holds the v2 ratio at ≥ 0.8× (hardware CRC-32C
//!   keeps verification in the noise of the parse);
//! * `mutate_throughput` / `wal_replay` in the JSON — the crash-consistent
//!   mutation tier: journalled insert throughput under group-commit fsync
//!   batching (one fsync per batch), and the journal's decode bandwidth plus
//!   a full checkpoint-and-replay recovery; the CI gate pins the
//!   *accounting*, not the speed — a 16384-record log must recover exactly,
//!   with sequence cursor, applied cursor and live count all balancing;
//!
//! and two end-to-end measurements:
//!
//! * `threaded_epoch` in the JSON: the GK-means boost epoch (delta-batched
//!   engine) at `--epoch-threads` workers vs the sequential epoch on the same
//!   data/graph/seed — output is bit-identical, only wall-clock differs;
//! * `threaded_init` in the JSON: the two-means-tree initialisation
//!   (blocked bisections + delta-batched boost refinement) at
//!   `--epoch-threads` workers vs sequential, same bit-identical contract.
//!
//! Usage: `bench_kernels [--out BENCH_kernels.json] [--rows 1024]
//! [--ms-per-case 200] [--epoch-threads 4] [--skip-epoch]`.  ns/op figures
//! are per distance evaluation.  `docs/BENCHMARKS.md` documents the emitted
//! JSON schema and the CI gate thresholds.

use std::time::Instant;

use gkmeans::two_means::TwoMeansTree;
use gkmeans::{GkMeans, GkParams};
use ivf::{IvfIndex, IvfSearchParams};
use knn_graph::random::random_graph;
use vecstore::kernels;
use vecstore::parallel::{run_blocks, run_blocks_scoped};
use vecstore::VectorSet;

const DIMS: [usize; 3] = [32, 128, 960];

/// Centroid counts of the assignment-shape cases (`k` of the clustering).
const ASSIGN_KS: [usize; 2] = [64, 1024];

/// Query rows per assignment-shape call (one Lloyd block's worth).
const ASSIGN_QUERIES: usize = 256;

/// Values per epoch-shape call (8 MiB of query rows at every dim): big
/// enough that the two-pass baseline's second sweep re-streams the data from
/// beyond L2, the regime a real epoch over a large dataset lives in.
const EPOCH_VALUES: usize = 2 * 1024 * 1024;

/// Query rows per epoch-shape call at dimensionality `dim`.
fn epoch_queries(dim: usize) -> usize {
    EPOCH_VALUES / dim
}

/// Blocks per executor-overhead round: enough that the dynamic claim queue
/// actually cycles, few enough that the round is dominated by executor cost,
/// not work.
const EXECUTOR_BLOCKS: usize = 64;

/// Shape of the IVF serving-tier measurement: SIFT dimensionality at the
/// large-k assignment shape, probing the CI-gated `nprobe`.
const IVF_N: usize = 16384;
const IVF_D: usize = 128;
const IVF_K: usize = 1024;
const IVF_NPROBE: usize = 8;
const IVF_R: usize = 10;
const IVF_QUERIES: usize = 256;

/// Shape of the end-to-end threaded boost-epoch measurement.
const EPOCH_N: usize = 16384;
const EPOCH_D: usize = 128;
const EPOCH_K: usize = 256;
const EPOCH_KAPPA: usize = 16;
const EPOCH_ITERS: usize = 5;

struct Case {
    name: &'static str,
    dim: usize,
    /// Candidate rows of the assignment-shape cases (`None` for the
    /// pair/one-to-many cases, which have no `k`).
    k: Option<usize>,
    ns_per_op: f64,
}

fn test_block(rows: usize, dim: usize, phase: f32) -> Vec<f32> {
    (0..rows * dim)
        .map(|i| ((i as f32 + phase) * 0.37).sin() * 2.0)
        .collect()
}

/// Deterministic clustered dataset for the end-to-end epoch measurement:
/// `EPOCH_K` groups with sub-unit jitter, so boost moves behave like a real
/// mid-flight clustering run.
fn epoch_dataset() -> VectorSet {
    let mut rows = Vec::with_capacity(EPOCH_N);
    for i in 0..EPOCH_N {
        let g = i % EPOCH_K;
        let mut row = Vec::with_capacity(EPOCH_D);
        for d in 0..EPOCH_D {
            let centre = ((g * 13 + d * 7) % 31) as f32 * 3.0;
            row.push(centre + ((i * 31 + d) as f32 * 0.37).sin() * 0.8);
        }
        rows.push(row);
    }
    VectorSet::from_rows(rows).expect("non-empty epoch dataset")
}

/// Measurement chunks per case: the reported figure is the **minimum** mean
/// over the chunks, which discards scheduler/noisy-neighbour interference
/// spikes that a single long mean would average in.
const TIME_CHUNKS: usize = 4;

/// Runs `body` (which performs `evals_per_call` distance evaluations)
/// repeatedly for roughly `budget_ms`, returning the noise-robust (min over
/// [`TIME_CHUNKS`] chunks) mean ns per evaluation.
fn time_case(budget_ms: u64, evals_per_call: u64, mut body: impl FnMut() -> f32) -> f64 {
    // warm-up and calibration
    let mut sink = 0.0f32;
    for _ in 0..3 {
        sink += body();
    }
    let probe = Instant::now();
    sink += body();
    let per_call = probe.elapsed().max(std::time::Duration::from_nanos(100));
    let calls = ((budget_ms as f64 / 1000.0) / per_call.as_secs_f64()).ceil() as u64;
    let calls_per_chunk = (calls / TIME_CHUNKS as u64).clamp(2, 250_000);

    let mut best = f64::INFINITY;
    for _ in 0..TIME_CHUNKS {
        let start = Instant::now();
        for _ in 0..calls_per_chunk {
            sink += body();
        }
        let elapsed = start.elapsed();
        best = best.min(elapsed.as_nanos() as f64 / (calls_per_chunk * evals_per_call) as f64);
    }
    std::hint::black_box(sink);
    best
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut rows = 1024usize;
    let mut budget_ms = 200u64;
    let mut epoch_threads = 4usize;
    let mut skip_epoch = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                if let Some(v) = args.get(i + 1) {
                    out_path = v.clone();
                    i += 1;
                }
            }
            "--rows" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    rows = v;
                    i += 1;
                }
            }
            "--ms-per-case" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    budget_ms = v;
                    i += 1;
                }
            }
            "--epoch-threads" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    epoch_threads = v;
                    i += 1;
                }
            }
            "--skip-epoch" => skip_epoch = true,
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(1);
            }
        }
        i += 1;
    }

    let dispatch = kernels::active().name;
    println!("kernel dispatch: {dispatch}");

    let mut cases: Vec<Case> = Vec::new();
    for dim in DIMS {
        let query: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.71).cos()).collect();
        let block = test_block(rows, dim, 1.5);
        let mut out = vec![0.0f32; rows];

        let scalar = time_case(budget_ms, rows as u64, || {
            let mut acc = 0.0f32;
            for r in 0..rows {
                acc += kernels::scalar::l2_sq(
                    std::hint::black_box(&query),
                    &block[r * dim..(r + 1) * dim],
                );
            }
            acc
        });
        cases.push(Case {
            name: "scalar_pair",
            dim,
            k: None,
            ns_per_op: scalar,
        });

        let simd_pair = time_case(budget_ms, rows as u64, || {
            let mut acc = 0.0f32;
            for r in 0..rows {
                acc += vecstore::distance::l2_sq(
                    std::hint::black_box(&query),
                    &block[r * dim..(r + 1) * dim],
                );
            }
            acc
        });
        cases.push(Case {
            name: "simd_pair",
            dim,
            k: None,
            ns_per_op: simd_pair,
        });

        let batched = time_case(budget_ms, rows as u64, || {
            kernels::l2_sq_one_to_many(std::hint::black_box(&query), &block, &mut out);
            out[rows - 1]
        });
        cases.push(Case {
            name: "simd_batched",
            dim,
            k: None,
            ns_per_op: batched,
        });

        let x_norm: f32 = query.iter().map(|v| v * v).sum();
        let row_norms: Vec<f32> = (0..rows)
            .map(|r| block[r * dim..(r + 1) * dim].iter().map(|v| v * v).sum())
            .collect();
        let cached = time_case(budget_ms, rows as u64, || {
            kernels::l2_sq_one_to_many_cached(
                std::hint::black_box(&query),
                x_norm,
                &block,
                &row_norms,
                &mut out,
            );
            out[rows - 1]
        });
        cases.push(Case {
            name: "simd_batched_cached",
            dim,
            k: None,
            ns_per_op: cached,
        });

        // Prefetching indexed gather over a shuffled candidate list — the
        // non-contiguous access pattern of GK-means candidate scoring and the
        // Alg. 3 refinement.
        let indices: Vec<u32> = {
            // deterministic shuffle: walk candidate strides from rows/2 + 1
            // until one is coprime to `rows`, so the map is a permutation for
            // every --rows value
            fn gcd(mut a: usize, mut b: usize) -> usize {
                while b != 0 {
                    (a, b) = (b, a % b);
                }
                a
            }
            let mut stride = rows / 2 + 1;
            while gcd(stride, rows) != 1 {
                stride += 1;
            }
            (0..rows).map(|r| ((r * stride) % rows) as u32).collect()
        };
        let indexed = time_case(budget_ms, rows as u64, || {
            kernels::l2_sq_one_to_many_indexed(
                std::hint::black_box(&query),
                &block,
                dim,
                &indices,
                &mut out,
            );
            out[rows - 1]
        });
        cases.push(Case {
            name: "simd_indexed_gather",
            dim,
            k: None,
            ns_per_op: indexed,
        });
    }

    // Multi-query assignment shapes: ASSIGN_QUERIES query rows against k
    // centroid rows, the Lloyd/Elkan/Hamerly hot loop.
    for dim in DIMS {
        for k in ASSIGN_KS {
            let m = ASSIGN_QUERIES;
            let xs = test_block(m, dim, 0.7);
            let centroids = test_block(k, dim, 9.1);
            let evals = (m * k) as u64;

            let mut dists = vec![0.0f32; k];
            let batched_loop = time_case(budget_ms, evals, || {
                let mut acc = 0.0f32;
                for q in 0..m {
                    kernels::l2_sq_one_to_many(
                        std::hint::black_box(&xs[q * dim..(q + 1) * dim]),
                        &centroids,
                        &mut dists,
                    );
                    let mut best = 0usize;
                    let mut best_v = f32::INFINITY;
                    for (c, &v) in dists.iter().enumerate() {
                        if v < best_v {
                            best_v = v;
                            best = c;
                        }
                    }
                    acc += best as f32;
                }
                acc
            });
            cases.push(Case {
                name: "batched_loop",
                dim,
                k: Some(k),
                ns_per_op: batched_loop,
            });

            let mut tile = vec![0.0f32; m * k];
            let many = time_case(budget_ms, evals, || {
                kernels::l2_sq_many_to_many(std::hint::black_box(&xs), &centroids, dim, &mut tile);
                tile[m * k - 1]
            });
            cases.push(Case {
                name: "many_to_many",
                dim,
                k: Some(k),
                ns_per_op: many,
            });

            let current = vec![0u32; m];
            let mut idx = vec![0u32; m];
            let mut best_d = vec![0.0f32; m];
            let mut second_d = vec![0.0f32; m];
            let fused = time_case(budget_ms, evals, || {
                kernels::assign_block(
                    std::hint::black_box(&xs),
                    &centroids,
                    dim,
                    &current,
                    &mut idx,
                    &mut best_d,
                    &mut second_d,
                );
                idx[m - 1] as f32
            });
            cases.push(Case {
                name: "assign_block",
                dim,
                k: Some(k),
                ns_per_op: fused,
            });
        }
    }

    // Epoch shapes: the fused single-pass assign+accumulate sweep vs its
    // pre-fusion structure (assignment sweep, then a second pass over the
    // data accumulating the centroid update the way `recompute_centroids`
    // used to).
    for dim in DIMS {
        for k in ASSIGN_KS {
            let m = epoch_queries(dim);
            let xs = test_block(m, dim, 0.7);
            let centroids = test_block(k, dim, 9.1);
            let evals = (m * k) as u64;
            let current = vec![0u32; m];
            let mut idx = vec![0u32; m];
            let mut best_d = vec![0.0f32; m];
            let mut second_d = vec![0.0f32; m];
            let mut sums = vec![0.0f64; k * dim];
            let mut counts = vec![0u64; k];

            let two_pass = time_case(budget_ms, evals, || {
                kernels::assign_block(
                    std::hint::black_box(&xs),
                    &centroids,
                    dim,
                    &current,
                    &mut idx,
                    &mut best_d,
                    &mut second_d,
                );
                // Second pass: re-stream the data to accumulate the update
                // (the pre-fusion `recompute_centroids` inner loop).
                sums.fill(0.0);
                counts.fill(0);
                for q in 0..m {
                    let c = idx[q] as usize;
                    counts[c] += 1;
                    for (slot, &x) in sums[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&xs[q * dim..(q + 1) * dim])
                    {
                        *slot += f64::from(x);
                    }
                }
                sums[0] as f32
            });
            cases.push(Case {
                name: "assign_two_pass",
                dim,
                k: Some(k),
                ns_per_op: two_pass,
            });

            let fused_sweep = time_case(budget_ms, evals, || {
                sums.fill(0.0);
                counts.fill(0);
                kernels::assign_accumulate_block(
                    std::hint::black_box(&xs),
                    &centroids,
                    dim,
                    &current,
                    &mut idx,
                    &mut best_d,
                    &mut second_d,
                    &mut sums,
                    &mut counts,
                );
                sums[0] as f32
            });
            cases.push(Case {
                name: "assign_accumulate",
                dim,
                k: Some(k),
                ns_per_op: fused_sweep,
            });
        }
    }

    // Executor round overhead: a near-empty round on the persistent pool vs
    // the scoped fork/join executor it replaced.  The block body is a few ns
    // of arithmetic, so the measured time is almost entirely the executor's
    // per-round cost (pool: wake + park; scoped: spawn + join per worker).
    let executor_round_json = {
        let time_round = |body: &dyn Fn() -> usize| -> f64 {
            // warm-up (also spawns the pool workers once, like a real fit)
            let mut sink = 0usize;
            for _ in 0..8 {
                sink += body();
            }
            let mut best = f64::INFINITY;
            for _ in 0..TIME_CHUNKS {
                let rounds = 50u32;
                let start = Instant::now();
                for _ in 0..rounds {
                    sink += body();
                }
                best = best.min(start.elapsed().as_secs_f64() * 1e6 / f64::from(rounds));
            }
            std::hint::black_box(sink);
            best
        };
        let pool_us = time_round(&|| {
            run_blocks(epoch_threads, EXECUTOR_BLOCKS, |b| b * b)
                .iter()
                .sum()
        });
        let scoped_us = time_round(&|| {
            run_blocks_scoped(epoch_threads, EXECUTOR_BLOCKS, |b| b * b)
                .iter()
                .sum()
        });
        let speedup = scoped_us / pool_us;
        println!(
            "executor_round         {EXECUTOR_BLOCKS} blocks @ {epoch_threads} threads: \
             scoped {scoped_us:.1} us/round, pool {pool_us:.1} us/round ({speedup:.2}x)"
        );
        format!(
            "  \"executor_round\": {{\"threads\": {epoch_threads}, \"blocks\": {EXECUTOR_BLOCKS}, \
             \"scoped_us\": {scoped_us:.3}, \"pool_us\": {pool_us:.3}, \"speedup\": {speedup:.3}}},\n"
        )
    };

    // Serving tier: batched multi-probe IVF search vs the per-query loop on
    // the same index.  Results are bit-identical (kernel tiling invariant);
    // the batched form amortises the m × k routing tile across the block.
    let ivf_search_json = {
        let data = VectorSet::from_flat(test_block(IVF_N, IVF_D, 0.7), IVF_D).expect("whole rows");
        let centroids =
            VectorSet::from_flat(test_block(IVF_K, IVF_D, 9.1), IVF_D).expect("whole rows");
        // real nearest-centroid labels so probed lists have genuine locality
        let mut idx = vec![0u32; IVF_N];
        let mut best_d = vec![0.0f32; IVF_N];
        let mut second_d = vec![0.0f32; IVF_N];
        kernels::assign_block(
            data.as_flat(),
            centroids.as_flat(),
            IVF_D,
            &vec![0u32; IVF_N],
            &mut idx,
            &mut best_d,
            &mut second_d,
        );
        let labels: Vec<usize> = idx.iter().map(|&c| c as usize).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed inputs");
        let queries =
            VectorSet::from_flat(test_block(IVF_QUERIES, IVF_D, 4.3), IVF_D).expect("whole rows");
        let params = IvfSearchParams::default().nprobe(IVF_NPROBE).threads(1);

        let per_query_us = time_case(budget_ms, IVF_QUERIES as u64, || {
            let mut acc = 0.0f32;
            for q in queries.rows() {
                let res = index.search(std::hint::black_box(q), IVF_R, params);
                acc += res.first().map(|n| n.dist).unwrap_or(0.0);
            }
            acc
        }) / 1000.0;
        let batched_us = time_case(budget_ms, IVF_QUERIES as u64, || {
            let res = index.batch_search(std::hint::black_box(&queries), IVF_R, params);
            res.last()
                .and_then(|r| r.first())
                .map(|n| n.dist)
                .unwrap_or(0.0)
        }) / 1000.0;
        let speedup = per_query_us / batched_us;
        println!(
            "ivf_search             n={IVF_N} d={IVF_D} k={IVF_K} nprobe={IVF_NPROBE} r={IVF_R}: \
             per-query {per_query_us:.1} us/query, batched {batched_us:.1} us/query ({speedup:.2}x)"
        );
        format!(
            "  \"ivf_search\": {{\"n\": {IVF_N}, \"dim\": {IVF_D}, \"k\": {IVF_K}, \
             \"nprobe\": {IVF_NPROBE}, \"r\": {IVF_R}, \"queries\": {IVF_QUERIES}, \
             \"per_query_us\": {per_query_us:.3}, \"batched_us\": {batched_us:.3}, \
             \"speedup\": {speedup:.3}}},\n"
        )
    };

    // Quantized serving tier: SQ8 overfetch + exact re-rank vs the f32 scan
    // on the same index, at a cache-resident d and a memory-bound d.  The
    // figures CI gates on: panel bytes streamed per query (the quantized
    // scan must cut them ≥ 2× at d = 960, re-rank fetches included) and
    // recall@R against the f32 scan's own answers (≥ 0.95 — the exact
    // re-rank keeps the approximation at the bottom of the pool only).
    let ivf_search_sq8_json = {
        const SQ8_N: usize = 8192;
        const SQ8_K: usize = 256;
        const SQ8_NPROBE: usize = 8;
        const SQ8_R: usize = 10;
        const SQ8_OVERFETCH: usize = 4;
        const SQ8_QUERIES: usize = 128;
        let mut case_json = String::new();
        for (i, dim) in [128usize, 960].into_iter().enumerate() {
            let data = VectorSet::from_flat(test_block(SQ8_N, dim, 0.7), dim).expect("whole rows");
            let centroids =
                VectorSet::from_flat(test_block(SQ8_K, dim, 9.1), dim).expect("whole rows");
            let mut idx = vec![0u32; SQ8_N];
            let mut best_d = vec![0.0f32; SQ8_N];
            let mut second_d = vec![0.0f32; SQ8_N];
            kernels::assign_block(
                data.as_flat(),
                centroids.as_flat(),
                dim,
                &vec![0u32; SQ8_N],
                &mut idx,
                &mut best_d,
                &mut second_d,
            );
            let labels: Vec<usize> = idx.iter().map(|&c| c as usize).collect();
            let mut index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed");
            index.quantize();
            let queries =
                VectorSet::from_flat(test_block(SQ8_QUERIES, dim, 4.3), dim).expect("whole rows");
            let f32_params = IvfSearchParams::default().nprobe(SQ8_NPROBE).threads(1);
            let sq8_params = f32_params.sq8(true).overfetch(SQ8_OVERFETCH);

            let (f32_results, f32_stats) =
                index.batch_search_with_stats(&queries, SQ8_R, f32_params);
            let (sq8_results, sq8_stats) =
                index.batch_search_with_stats(&queries, SQ8_R, sq8_params);
            let f32_bytes = f32_stats.panel_bytes as f64 / SQ8_QUERIES as f64;
            let sq8_bytes = sq8_stats.panel_bytes as f64 / SQ8_QUERIES as f64;
            let bytes_ratio = f32_bytes / sq8_bytes;
            let mut hits = 0usize;
            let mut truth = 0usize;
            for (got, want) in sq8_results.iter().zip(&f32_results) {
                truth += want.len();
                hits += got
                    .iter()
                    .filter(|n| want.iter().any(|m| m.id == n.id))
                    .count();
            }
            let recall = hits as f64 / truth.max(1) as f64;

            let f32_us = time_case(budget_ms, SQ8_QUERIES as u64, || {
                let res = index.batch_search(std::hint::black_box(&queries), SQ8_R, f32_params);
                res.last()
                    .and_then(|r| r.first())
                    .map(|n| n.dist)
                    .unwrap_or(0.0)
            }) / 1000.0;
            let sq8_us = time_case(budget_ms, SQ8_QUERIES as u64, || {
                let res = index.batch_search(std::hint::black_box(&queries), SQ8_R, sq8_params);
                res.last()
                    .and_then(|r| r.first())
                    .map(|n| n.dist)
                    .unwrap_or(0.0)
            }) / 1000.0;
            println!(
                "ivf_search_sq8         n={SQ8_N} d={dim} k={SQ8_K} nprobe={SQ8_NPROBE} \
                 r={SQ8_R} overfetch={SQ8_OVERFETCH}: f32 {f32_us:.1} us/query \
                 ({f32_bytes:.0} B), sq8 {sq8_us:.1} us/query ({sq8_bytes:.0} B, \
                 {bytes_ratio:.2}x fewer bytes), recall@{SQ8_R} vs f32 = {recall:.3}"
            );
            if i > 0 {
                case_json.push_str(", ");
            }
            case_json.push_str(&format!(
                "{{\"dim\": {dim}, \"f32_us\": {f32_us:.3}, \"sq8_us\": {sq8_us:.3}, \
                 \"f32_bytes_per_query\": {f32_bytes:.1}, \
                 \"sq8_bytes_per_query\": {sq8_bytes:.1}, \"bytes_ratio\": {bytes_ratio:.3}, \
                 \"recall_vs_f32\": {recall:.4}}}"
            ));
        }
        format!(
            "  \"ivf_search_sq8\": {{\"n\": {SQ8_N}, \"k\": {SQ8_K}, \"nprobe\": {SQ8_NPROBE}, \
             \"r\": {SQ8_R}, \"overfetch\": {SQ8_OVERFETCH}, \"queries\": {SQ8_QUERIES}, \
             \"cases\": [{case_json}]}},\n"
        )
    };

    // Serving-stack latency: the dynamic-batching TCP server end to end.
    // Closed loop first (a few synchronous clients establish the sustained
    // throughput and the uncontended latency profile), then an open loop
    // paced at a multiple of that throughput against a small admission
    // queue, so shedding and deadline expiry are part of the measurement.
    // The open loop's accounting — every request answered exactly once,
    // every answer typed — is what the CI bench-smoke gate checks.
    let serve_latency_json = {
        use serve::batcher::{BatcherConfig, IvfBackend};
        use serve::client::Client;
        use serve::protocol::{
            read_frame, write_search, FrameKind, SearchRequest, SearchResponse, Status,
            DEFAULT_MAX_PAYLOAD,
        };
        use serve::server::{Server, ServerConfig};
        use std::sync::{Arc, Mutex};
        use std::time::Duration;

        const CLOSED_CLIENTS: usize = 4;
        const CLOSED_REQUESTS: usize = 150; // per client
        const CLOSED_QPR: usize = 8; // queries per request
        const OPEN_REQUESTS: usize = 2000; // 1 query each
        const OPEN_OVERLOAD: f64 = 3.0; // offered rate vs closed-loop qps
        const OPEN_DEADLINE_MS: u32 = 20;

        let data = VectorSet::from_flat(test_block(IVF_N, IVF_D, 0.7), IVF_D).expect("whole rows");
        let centroids =
            VectorSet::from_flat(test_block(IVF_K, IVF_D, 9.1), IVF_D).expect("whole rows");
        let labels: Vec<usize> = (0..IVF_N).map(|i| i % IVF_K).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed inputs");
        let query_flat: Arc<Vec<f32>> = Arc::new(test_block(IVF_QUERIES, IVF_D, 4.3));

        // Closed loop: every client waits for its response before sending
        // the next request, so the server runs at its natural batch rhythm.
        let mut server = Server::start(
            Arc::new(IvfBackend::new(index.clone(), Some(epoch_threads))),
            ServerConfig {
                batcher: BatcherConfig {
                    max_delay: Duration::from_millis(1),
                    ..BatcherConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind the closed-loop server");
        let addr = server.local_addr();
        let started = Instant::now();
        let clients: Vec<_> = (0..CLOSED_CLIENTS)
            .map(|c| {
                let flat = Arc::clone(&query_flat);
                std::thread::spawn(move || {
                    let mut client =
                        Client::connect(addr, Duration::from_secs(10)).expect("connect");
                    let mut latencies_ms = Vec::with_capacity(CLOSED_REQUESTS);
                    for i in 0..CLOSED_REQUESTS {
                        let off =
                            ((c * CLOSED_REQUESTS + i) * CLOSED_QPR) % (IVF_QUERIES - CLOSED_QPR);
                        let req = SearchRequest {
                            id: (c * CLOSED_REQUESTS + i + 1) as u64,
                            deadline_ms: 0,
                            r: IVF_R as u16,
                            nprobe: IVF_NPROBE as u16,
                            dim: IVF_D as u32,
                            queries: flat[off * IVF_D..(off + CLOSED_QPR) * IVF_D].to_vec(),
                        };
                        let sent = Instant::now();
                        client.search(&req).expect("closed-loop search");
                        latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                    }
                    latencies_ms
                })
            })
            .collect();
        let mut latencies: Vec<f64> = clients
            .into_iter()
            .flat_map(|h| h.join().expect("closed-loop client"))
            .collect();
        let closed_elapsed = started.elapsed().as_secs_f64();
        server.shutdown();
        latencies.sort_by(f64::total_cmp);
        let pct = |sorted: &[f64], p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        let closed_p50 = pct(&latencies, 0.50);
        let closed_p99 = pct(&latencies, 0.99);
        let closed_qps =
            (CLOSED_CLIENTS * CLOSED_REQUESTS * CLOSED_QPR) as f64 / closed_elapsed.max(1e-9);

        // Open loop: a timer-paced pipelined sender fires regardless of
        // completions — the arrival process real overload has — against a
        // small admission queue, so OVERLOADED sheds and deadline expiry
        // join the latency distribution instead of hiding behind sender
        // back-off (coordinated omission).
        let mut server = Server::start(
            Arc::new(IvfBackend::new(index, Some(epoch_threads))),
            ServerConfig {
                batcher: BatcherConfig {
                    max_delay: Duration::from_millis(1),
                    queue_cap: 64,
                    resume_depth: 16,
                    ..BatcherConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("bind the open-loop server");
        let addr = server.local_addr();
        let offered_qps = closed_qps * OPEN_OVERLOAD;
        let stream = std::net::TcpStream::connect(addr).expect("connect the open-loop sender");
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone().expect("clone the open-loop stream");
        let send_times: Arc<Mutex<Vec<Option<Instant>>>> =
            Arc::new(Mutex::new(vec![None; OPEN_REQUESTS + 1]));
        let reader_times = Arc::clone(&send_times);
        let reader = std::thread::spawn(move || {
            let mut reader_stream = reader_stream;
            reader_stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("read timeout");
            let (mut ok, mut shed, mut deadline, mut other) = (0u64, 0u64, 0u64, 0u64);
            let mut answered_ms: Vec<f64> = Vec::with_capacity(OPEN_REQUESTS);
            while (ok + shed + deadline + other) < OPEN_REQUESTS as u64 {
                let frame = match read_frame(&mut reader_stream, DEFAULT_MAX_PAYLOAD) {
                    Ok(Some(f)) => f,
                    // EOF or a stall: stop counting; the gate catches the
                    // deficit as answered < sent.
                    Ok(None) | Err(_) => break,
                };
                if frame.kind != FrameKind::Response {
                    continue;
                }
                let resp = SearchResponse::decode(&frame.payload).expect("decodable response");
                match resp.status {
                    Status::Ok => ok += 1,
                    Status::Overloaded => shed += 1,
                    Status::DeadlineExceeded => deadline += 1,
                    _ => other += 1,
                }
                if let Some(Some(sent)) = reader_times
                    .lock()
                    .expect("send times")
                    .get(resp.id as usize)
                {
                    answered_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                }
            }
            (ok, shed, deadline, other, answered_ms)
        });
        // Pace in 1 ms ticks; each tick sends the offered-rate quantum.
        let per_tick = ((offered_qps / 1000.0).ceil() as usize).max(1);
        let mut sender_stream = stream;
        let mut sent = 0usize;
        let open_started = Instant::now();
        let mut tick = 0u32;
        while sent < OPEN_REQUESTS {
            let burst = per_tick.min(OPEN_REQUESTS - sent);
            for _ in 0..burst {
                sent += 1;
                let off = sent % IVF_QUERIES;
                let req = SearchRequest {
                    id: sent as u64,
                    deadline_ms: OPEN_DEADLINE_MS,
                    r: IVF_R as u16,
                    nprobe: IVF_NPROBE as u16,
                    dim: IVF_D as u32,
                    queries: query_flat[off * IVF_D..(off + 1) * IVF_D].to_vec(),
                };
                send_times.lock().expect("send times")[sent] = Some(Instant::now());
                write_search(&mut sender_stream, &req).expect("open-loop send");
            }
            tick += 1;
            let next = open_started + Duration::from_millis(u64::from(tick));
            if let Some(wait) = next.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let (ok, shed, deadline, other, mut answered_ms) = reader.join().expect("open-loop reader");
        server.shutdown();
        let answered = ok + shed + deadline + other;
        answered_ms.sort_by(f64::total_cmp);
        let open_p99 = if answered_ms.is_empty() {
            f64::NAN
        } else {
            pct(&answered_ms, 0.99)
        };

        println!(
            "serve_latency          closed {CLOSED_CLIENTS} clients: p50 {closed_p50:.3} ms, \
             p99 {closed_p99:.3} ms, {closed_qps:.0} qps; open @{offered_qps:.0} qps offered: \
             {answered}/{OPEN_REQUESTS} answered ({ok} ok, {shed} shed, {deadline} deadline, \
             {other} other), p99 {open_p99:.3} ms"
        );
        format!(
            "  \"serve_latency\": {{\"n\": {IVF_N}, \"dim\": {IVF_D}, \"k\": {IVF_K}, \
             \"nprobe\": {IVF_NPROBE}, \"r\": {IVF_R}, \
             \"closed_loop\": {{\"clients\": {CLOSED_CLIENTS}, \"requests\": {}, \
             \"queries_per_request\": {CLOSED_QPR}, \"p50_ms\": {closed_p50:.3}, \
             \"p99_ms\": {closed_p99:.3}, \"qps\": {closed_qps:.1}}}, \
             \"open_loop\": {{\"offered_qps\": {offered_qps:.1}, \"deadline_ms\": {OPEN_DEADLINE_MS}, \
             \"sent\": {OPEN_REQUESTS}, \"answered\": {answered}, \"ok\": {ok}, \"shed\": {shed}, \
             \"deadline_expired\": {deadline}, \"other\": {other}, \"p99_ms\": {open_p99:.3}}}}},\n",
            CLOSED_CLIENTS * CLOSED_REQUESTS,
        )
    };

    // Observability overhead: the identical closed-loop workload against a
    // metrics-disabled server and a metrics-enabled one (registry + per-stage
    // histograms + slow-query ring all live), in interleaved A/B rounds so
    // thermal drift and scheduler noise hit both variants equally.  The CI
    // gate holds the enabled p50 at ≤ 1.05× the disabled p50: an event is
    // one relaxed atomic, so instrumentation must stay in the noise.
    let obs_overhead_json = {
        use obs::ObsHandle;
        use serve::batcher::{BatcherConfig, IvfBackend};
        use serve::client::Client;
        use serve::protocol::SearchRequest;
        use serve::server::{Server, ServerConfig};
        use std::sync::Arc;
        use std::time::Duration;

        const ROUNDS: usize = 4; // interleaved rounds per variant
        const CLIENTS: usize = 2;
        const REQUESTS: usize = 60; // per client per round
        const QPR: usize = 8; // queries per request

        let data = VectorSet::from_flat(test_block(IVF_N, IVF_D, 0.7), IVF_D).expect("whole rows");
        let centroids =
            VectorSet::from_flat(test_block(IVF_K, IVF_D, 9.1), IVF_D).expect("whole rows");
        let labels: Vec<usize> = (0..IVF_N).map(|i| i % IVF_K).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed inputs");
        let query_flat: Arc<Vec<f32>> = Arc::new(test_block(IVF_QUERIES, IVF_D, 4.3));

        let run_round = |obs: &ObsHandle| -> Vec<f64> {
            let mut server = Server::start_obs(
                Arc::new(IvfBackend::new(index.clone(), Some(epoch_threads))),
                ServerConfig {
                    batcher: BatcherConfig {
                        max_delay: Duration::from_millis(1),
                        ..BatcherConfig::default()
                    },
                    ..ServerConfig::default()
                },
                obs,
            )
            .expect("bind the overhead server");
            let addr = server.local_addr();
            let clients: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let flat = Arc::clone(&query_flat);
                    std::thread::spawn(move || {
                        let mut client =
                            Client::connect(addr, Duration::from_secs(10)).expect("connect");
                        let mut latencies_ms = Vec::with_capacity(REQUESTS);
                        for i in 0..REQUESTS {
                            let off = ((c * REQUESTS + i) * QPR) % (IVF_QUERIES - QPR);
                            let req = SearchRequest {
                                id: (c * REQUESTS + i + 1) as u64,
                                deadline_ms: 0,
                                r: IVF_R as u16,
                                nprobe: IVF_NPROBE as u16,
                                dim: IVF_D as u32,
                                queries: flat[off * IVF_D..(off + QPR) * IVF_D].to_vec(),
                            };
                            let sent = Instant::now();
                            client.search(&req).expect("overhead search");
                            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                        }
                        latencies_ms
                    })
                })
                .collect();
            let latencies: Vec<f64> = clients
                .into_iter()
                .flat_map(|h| h.join().expect("overhead client"))
                .collect();
            server.shutdown();
            latencies
        };

        let mut plain: Vec<f64> = Vec::new();
        let mut metered: Vec<f64> = Vec::new();
        for _ in 0..ROUNDS {
            plain.extend(run_round(&ObsHandle::disabled()));
            metered.extend(run_round(&ObsHandle::enabled()));
        }
        plain.sort_by(f64::total_cmp);
        metered.sort_by(f64::total_cmp);
        let pct = |sorted: &[f64], p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        let plain_p50 = pct(&plain, 0.50);
        let metered_p50 = pct(&metered, 0.50);
        let plain_p99 = pct(&plain, 0.99);
        let metered_p99 = pct(&metered, 0.99);
        let p50_ratio = metered_p50 / plain_p50.max(1e-12);

        println!(
            "obs_overhead           closed {CLIENTS} clients x {REQUESTS} reqs x {ROUNDS} rounds: \
             disabled p50 {plain_p50:.3} ms / p99 {plain_p99:.3} ms, enabled p50 \
             {metered_p50:.3} ms / p99 {metered_p99:.3} ms ({p50_ratio:.3}x)"
        );
        format!(
            "  \"obs_overhead\": {{\"rounds\": {ROUNDS}, \"clients\": {CLIENTS}, \
             \"requests_per_round\": {REQUESTS}, \"queries_per_request\": {QPR}, \
             \"disabled_p50_ms\": {plain_p50:.4}, \"enabled_p50_ms\": {metered_p50:.4}, \
             \"disabled_p99_ms\": {plain_p99:.4}, \"enabled_p99_ms\": {metered_p99:.4}, \
             \"p50_ratio\": {p50_ratio:.4}}},\n"
        )
    };

    // Durable-container load throughput: the checksummed GKSC v2 read path
    // vs a legacy unchecksummed v1 image of the same index.  The CI gate
    // holds v2 at ≥ 0.8× the v1 throughput: the CRC pass must stay in the
    // noise of the parse + copy work, which is what the hardware CRC-32C
    // dispatch buys.
    let gksc_load_json = {
        use std::io::Write as _;

        let data = VectorSet::from_flat(test_block(IVF_N, IVF_D, 0.7), IVF_D).expect("whole rows");
        let centroids =
            VectorSet::from_flat(test_block(IVF_K, IVF_D, 9.1), IVF_D).expect("whole rows");
        let labels: Vec<usize> = (0..IVF_N).map(|i| i % IVF_K).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed inputs");

        let dir = std::env::temp_dir().join(format!("gkm-bench-gksc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create bench temp dir");
        let v2_path = dir.join("index_v2.ivf");
        let v1_path = dir.join("index_v1.ivf");
        index
            .save(v2_path.to_str().expect("utf-8 path"))
            .expect("save v2");
        let sections =
            vecstore::io::read_sections_from(std::fs::File::open(&v2_path).expect("reopen v2"))
                .expect("parse v2");
        let mut v1_file =
            std::io::BufWriter::new(std::fs::File::create(&v1_path).expect("create v1"));
        vecstore::io::write_sections_v1_to(&mut v1_file, &sections).expect("write v1");
        v1_file.flush().expect("flush v1");
        drop(v1_file);
        let bytes = std::fs::metadata(&v2_path).expect("stat v2").len();

        let time_load = |path: &std::path::Path| -> f64 {
            let p = path.to_str().expect("utf-8 path");
            std::hint::black_box(IvfIndex::load(p).expect("load")); // warm the page cache
            let mut best = f64::INFINITY;
            for _ in 0..TIME_CHUNKS {
                let start = Instant::now();
                let loaded = IvfIndex::load(p).expect("load");
                best = best.min(start.elapsed().as_secs_f64());
                std::hint::black_box(loaded);
            }
            best
        };
        let v2_ms = time_load(&v2_path) * 1e3;
        let v1_ms = time_load(&v1_path) * 1e3;
        let ratio = v1_ms / v2_ms;
        std::fs::remove_dir_all(&dir).ok();
        let crc_impl = vecstore::checksum::active_impl();
        println!(
            "gksc_load              {bytes} bytes via {crc_impl}: \
             v1 {v1_ms:.2} ms, v2 {v2_ms:.2} ms ({ratio:.2}x of v1 throughput)"
        );
        format!(
            "  \"gksc_load\": {{\"bytes\": {bytes}, \"checksum_impl\": \"{crc_impl}\", \
             \"v1_ms\": {v1_ms:.3}, \"v2_ms\": {v2_ms:.3}, \"ratio_vs_v1\": {ratio:.3}}},\n"
        )
    };

    // Mutation tier: journalled insert throughput (group commit — one fsync
    // per batch) and WAL replay bandwidth over the log those inserts wrote.
    // The CI gate checks the accounting, not the speed: a 16384-record
    // journal must recover exactly, with the sequence cursor, the applied
    // cursor and the live count all balancing the record count.
    let (mutate_throughput_json, wal_replay_json) = {
        use ivf::MutableStore;

        const MUT_N: usize = 2048;
        const MUT_K: usize = 64;
        const MUT_BATCH: usize = 64;
        const MUT_BATCHES: usize = 256; // 16384 records total
        let records = MUT_BATCH * MUT_BATCHES;

        let data = VectorSet::from_flat(test_block(MUT_N, IVF_D, 0.7), IVF_D).expect("whole rows");
        let centroids =
            VectorSet::from_flat(test_block(MUT_K, IVF_D, 9.1), IVF_D).expect("whole rows");
        let labels: Vec<usize> = (0..MUT_N).map(|i| i % MUT_K).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).expect("well-formed inputs");

        let dir = std::env::temp_dir().join(format!("gkm-bench-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create bench temp dir");
        let index_path = dir.join("mutable.ivf");
        let mut store = MutableStore::create(&index_path, index).expect("attach journal");

        let batch_rows =
            VectorSet::from_flat(test_block(MUT_BATCH, IVF_D, 3.3), IVF_D).expect("whole rows");
        let started = Instant::now();
        for _ in 0..MUT_BATCHES {
            store.insert_batch(&batch_rows).expect("journalled insert");
        }
        let insert_secs = started.elapsed().as_secs_f64();
        let inserts_per_sec = records as f64 / insert_secs.max(1e-9);
        drop(store); // release the journal handle before replaying it

        let wal = ivf::store::wal_path(&index_path);
        let wal_bytes = std::fs::read(&wal).expect("read journal");
        let replay_secs = {
            let mut best = f64::INFINITY;
            for _ in 0..TIME_CHUNKS {
                let start = Instant::now();
                let replay = vecstore::wal::replay_wal(&wal_bytes).expect("replay journal");
                best = best.min(start.elapsed().as_secs_f64());
                std::hint::black_box(replay);
            }
            best
        };
        let replay_mb_per_s = wal_bytes.len() as f64 / replay_secs.max(1e-9) / 1e6;

        // Full recovery (checkpoint load + replay + apply), with the
        // accounting the CI gate pins.
        let rec_started = Instant::now();
        let (recovered, report) = MutableStore::open(&index_path).expect("recover the store");
        let recovery_ms = rec_started.elapsed().as_secs_f64() * 1e3;
        let balanced = report.replayed == records
            && report.skipped == 0
            && !report.torn_tail_dropped
            && recovered.next_seq() == records as u64
            && recovered.index().applied_seq() == recovered.next_seq()
            && recovered.index().live_len() == MUT_N + records;
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();

        println!(
            "mutate_throughput      d={IVF_D} batch={MUT_BATCH}: {records} journalled inserts \
             in {:.1} ms ({inserts_per_sec:.0} inserts/s, {MUT_BATCHES} fsyncs)",
            insert_secs * 1e3
        );
        println!(
            "wal_replay             {} bytes / {records} records: decode {replay_mb_per_s:.0} MB/s, \
             full recovery {recovery_ms:.1} ms, accounting balanced: {balanced}",
            wal_bytes.len()
        );
        (
            format!(
                "  \"mutate_throughput\": {{\"dim\": {IVF_D}, \"batch\": {MUT_BATCH}, \
                 \"batches\": {MUT_BATCHES}, \"records\": {records}, \"fsyncs\": {MUT_BATCHES}, \
                 \"inserts_per_sec\": {inserts_per_sec:.1}}},\n"
            ),
            format!(
                "  \"wal_replay\": {{\"records\": {records}, \"bytes\": {}, \
                 \"replay_mb_per_s\": {replay_mb_per_s:.1}, \"recovery_ms\": {recovery_ms:.3}, \
                 \"recovered_records\": {}, \"recovery_balanced\": {balanced}}},\n",
                wal_bytes.len(),
                report.replayed,
            ),
        )
    };

    // End-to-end threaded boost epoch: same data, graph and seed, so the
    // sequential and threaded runs do bit-identical work — only wall-clock
    // may differ.  `iter_time` isolates the epochs from init.
    // Threaded two-means-tree initialisation on the same dataset shape: the
    // init is the sequential fraction the epochs cannot touch, so its own
    // speedup decides how far the whole fit can scale (Amdahl).
    let threaded_init_json = if skip_epoch {
        String::new()
    } else {
        let data = epoch_dataset();
        let time_partition = |threads: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = Instant::now();
                let labels = TwoMeansTree::new(11)
                    .threads(threads)
                    .partition(&data, EPOCH_K);
                best = best.min(start.elapsed().as_secs_f64());
                std::hint::black_box(labels);
            }
            best
        };
        let seq_secs = time_partition(1);
        let thr_secs = time_partition(epoch_threads);
        let speedup = seq_secs / thr_secs;
        println!(
            "threaded_init          two-means n={EPOCH_N} d={EPOCH_D} k={EPOCH_K}: \
             seq {:.1} ms, {} threads {:.1} ms ({speedup:.2}x)",
            seq_secs * 1e3,
            epoch_threads,
            thr_secs * 1e3
        );
        format!(
            "  \"threaded_init\": {{\"algo\": \"two_means_tree\", \"n\": {EPOCH_N}, \"dim\": {EPOCH_D}, \
             \"k\": {EPOCH_K}, \"threads\": {epoch_threads}, \"seq_ms\": {:.3}, \
             \"threaded_ms\": {:.3}, \"speedup\": {speedup:.3}}},\n",
            seq_secs * 1e3,
            thr_secs * 1e3
        )
    };

    let threaded_epoch_json = if skip_epoch {
        String::new()
    } else {
        let data = epoch_dataset();
        let graph = random_graph(&data, EPOCH_KAPPA, 7);
        let base = GkParams::default()
            .kappa(EPOCH_KAPPA)
            .iterations(EPOCH_ITERS)
            .seed(11)
            .record_trace(false);
        let time_fit = |threads: usize| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let result = GkMeans::new(base.threads(threads)).fit(&data, EPOCH_K, &graph);
                best = best.min(result.iter_time.as_secs_f64());
            }
            best
        };
        let seq_secs = time_fit(1);
        let thr_secs = time_fit(epoch_threads);
        let speedup = seq_secs / thr_secs;
        println!(
            "threaded_epoch         gk-boost n={EPOCH_N} d={EPOCH_D} k={EPOCH_K} kappa={EPOCH_KAPPA}: \
             seq {:.1} ms, {} threads {:.1} ms ({speedup:.2}x)",
            seq_secs * 1e3,
            epoch_threads,
            thr_secs * 1e3
        );
        format!(
            "  \"threaded_epoch\": {{\"algo\": \"gk_boost\", \"n\": {EPOCH_N}, \"dim\": {EPOCH_D}, \
             \"k\": {EPOCH_K}, \"kappa\": {EPOCH_KAPPA}, \"iterations\": {EPOCH_ITERS}, \
             \"threads\": {epoch_threads}, \"seq_epochs_ms\": {:.3}, \"threaded_epochs_ms\": {:.3}, \
             \"speedup\": {speedup:.3}}},\n",
            seq_secs * 1e3,
            thr_secs * 1e3
        )
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"dispatch\": \"{dispatch}\",\n"));
    json.push_str(&format!("  \"rows_per_batch\": {rows},\n"));
    json.push_str(&format!("  \"assign_queries\": {ASSIGN_QUERIES},\n"));
    json.push_str(&format!("  \"epoch_values_per_call\": {EPOCH_VALUES},\n"));
    json.push_str("  \"unit\": \"ns_per_distance_eval\",\n");
    json.push_str(&executor_round_json);
    json.push_str(&ivf_search_json);
    json.push_str(&ivf_search_sq8_json);
    json.push_str(&serve_latency_json);
    json.push_str(&obs_overhead_json);
    json.push_str(&gksc_load_json);
    json.push_str(&mutate_throughput_json);
    json.push_str(&wal_replay_json);
    json.push_str(&threaded_init_json);
    json.push_str(&threaded_epoch_json);
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let vs_scalar = cases
            .iter()
            .find(|c| c.name == "scalar_pair" && c.dim == case.dim)
            .map(|base| base.ns_per_op / case.ns_per_op)
            .unwrap_or(1.0);
        let vs_batched_loop = case.k.and_then(|k| {
            if case.name == "assign_two_pass" || case.name == "assign_accumulate" {
                return None;
            }
            cases
                .iter()
                .find(|c| c.name == "batched_loop" && c.dim == case.dim && c.k == Some(k))
                .map(|base| base.ns_per_op / case.ns_per_op)
        });
        let vs_two_pass = case.k.and_then(|k| {
            if case.name != "assign_accumulate" {
                return None;
            }
            cases
                .iter()
                .find(|c| c.name == "assign_two_pass" && c.dim == case.dim && c.k == Some(k))
                .map(|base| base.ns_per_op / case.ns_per_op)
        });
        let k_field = case.k.map(|k| format!("\"k\": {k}, ")).unwrap_or_default();
        let loop_field = vs_batched_loop
            .map(|s| format!(", \"speedup_vs_batched_loop\": {s:.3}"))
            .unwrap_or_default();
        let two_pass_field = vs_two_pass
            .map(|s| format!(", \"speedup_vs_two_pass\": {s:.3}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"dim\": {}, {}\"ns_per_op\": {:.3}, \"speedup_vs_scalar_pair\": {:.3}{}{}}}{}\n",
            case.name,
            case.dim,
            k_field,
            case.ns_per_op,
            vs_scalar,
            loop_field,
            two_pass_field,
            if i + 1 == cases.len() { "" } else { "," }
        ));
        let shape = case
            .k
            .map(|k| format!("k={k:<5}"))
            .unwrap_or_else(|| "       ".to_string());
        let vs_loop = vs_batched_loop
            .map(|s| format!("   {s:>6.2}x vs batched loop"))
            .unwrap_or_default();
        let vs_2p = vs_two_pass
            .map(|s| format!("   {s:>6.2}x vs two-pass"))
            .unwrap_or_default();
        println!(
            "{:<22} d={:<4} {shape} {:>10.2} ns/op   {:>6.2}x vs scalar pair{vs_loop}{vs_2p}",
            case.name, case.dim, case.ns_per_op, vs_scalar
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
