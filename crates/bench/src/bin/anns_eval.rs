//! Sec. 4.3 — ANN-search evaluation of the Alg. 3 graph.
//!
//! The paper claims the graph built by Alg. 3, although cheaper and of lower
//! recall than NN-Descent's, supports competitive approximate nearest-
//! neighbour search.  This binary builds both graphs on a SIFT-like workload
//! and sweeps the search pool size `ef`, reporting recall@10, latency and the
//! number of distance evaluations per query.
//!
//! ```bash
//! cargo run --release -p bench --bin anns_eval -- --scale 0.05
//! ```

use std::time::Instant;

use anns::{evaluate, SearchParams};
use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{Series, Table};
use gkmeans::{GkParams, KnnGraphBuilder};
use knn_graph::brute::exact_ground_truth;
use knn_graph::nn_descent::{nn_descent, NnDescentParams};

fn main() {
    let opts = Options::parse(0.05);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let queries_n = 200.min(w.data.len() / 10);
    let base_n = w.data.len() - queries_n;
    let (base, queries) = w.data.split_at(base_n).expect("split");
    println!("ANN search: {base_n} SIFT-like base vectors, {queries_n} queries, recall@10");

    println!("computing exact ground truth…");
    let ground_truth = exact_ground_truth(&base, &queries, 10);

    let kappa = 20usize;
    let t = Instant::now();
    let (gk_graph, gk_stats) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(kappa)
            .xi(50)
            .tau(8)
            .seed(opts.seed)
            .record_trace(false),
    )
    .graph_k(kappa)
    .build(&base);
    let gk_build = t.elapsed();

    let t = Instant::now();
    let nnd_graph = nn_descent(
        &base,
        &NnDescentParams {
            k: kappa,
            seed: opts.seed,
            ..Default::default()
        },
    );
    let nnd_build = t.elapsed();

    println!(
        "graph construction: Alg.3 {:.2}s ({} pair comparisons), NN-Descent {:.2}s",
        gk_build.as_secs_f64(),
        gk_stats.refine_distance_evals,
        nnd_build.as_secs_f64()
    );

    let mut table = Table::new(
        "Sec. 4.3 — graph-based ANN search",
        &["graph", "ef", "recall@10", "ms/query", "dist evals/query"],
    );
    let mut curves: Vec<Series> = Vec::new();
    for (name, graph) in [("Alg.3", &gk_graph), ("NN-Descent", &nnd_graph)] {
        let mut curve = Series::new(name, "recall", "ms_per_query");
        for ef in [16usize, 32, 64, 128, 256] {
            let report = evaluate(
                &base,
                graph,
                &queries,
                &ground_truth,
                10,
                SearchParams::default()
                    .ef(ef)
                    .entry_points(16)
                    .seed(opts.seed),
            );
            table.row(&[
                name.into(),
                ef.to_string(),
                format!("{:.3}", report.stats.recall),
                format!("{:.3}", report.stats.avg_query_ms),
                format!("{:.0}", report.stats.avg_distance_evals),
            ]);
            curve.push(report.stats.recall, report.stats.avg_query_ms);
        }
        curves.push(curve);
    }
    print!("{}", table.render());
    for c in &curves {
        print!("{}", c.to_csv());
    }
    println!("(expected: both graphs reach high recall at large ef; the Alg.3 graph is much cheaper to build.)");
}
