//! Fig. 7 — average distortion for the two scalability sweeps of Fig. 6:
//!
//! * (a) distortion vs data scale `n` at k = 1 024;
//! * (b) distortion vs cluster count `k` at fixed `n`.
//!
//! Expected shape: GK-means tracks BKM closely across both sweeps (the two
//! lowest curves), k-means and closure k-means sit slightly higher, and
//! Mini-Batch is clearly the worst; the gap between the boost-based methods
//! and the rest widens as k grows (Fig. 7(b)).
//!
//! ```bash
//! cargo run --release -p bench --bin fig7_scalability_quality -- --scale 0.005
//! ```

use bench::{Method, Options};
use datagen::{PaperDataset, Workload};
use eval::{average_distortion, Series, Table};

fn main() {
    let opts = Options::parse(0.005);
    let iterations = 30.min(opts.iterations);
    let max_n = (PaperDataset::Vlad10M.paper_n() as f64 * opts.scale) as usize;

    // panel (a): distortion vs n at k=1024
    let mut n_values = vec![10_000usize.min(max_n.max(1_000))];
    while *n_values.last().unwrap() * 10 <= max_n {
        n_values.push(n_values.last().unwrap() * 10);
    }
    let k_fixed = 1_024usize;
    println!("Fig. 7(a) — distortion vs data scale (k = {k_fixed})");
    let mut table_a = Table::new(
        "Fig. 7(a) — average distortion vs n",
        &["n", "Mini-Batch", "closure", "k-means", "BKM", "GK-means"],
    );
    let mut series_a: Vec<Series> = Method::scalability_set()
        .iter()
        .map(|m| Series::new(m.label(), "n", "distortion"))
        .collect();
    for &n in &n_values {
        let w = Workload::generate_with_n(PaperDataset::Vlad10M, n, opts.seed);
        let k = k_fixed.min(n / 2).max(2);
        let mut cells = vec![n.to_string()];
        for (mi, method) in Method::scalability_set().iter().enumerate() {
            let (clustering, _) = method.run(&w.data, k, iterations, opts.seed, false);
            let e = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
            cells.push(format!("{e:.4}"));
            series_a[mi].push(n as f64, e);
        }
        table_a.row(&cells);
    }
    print!("{}", table_a.render());
    for s in &series_a {
        print!("{}", s.to_csv());
    }

    // panel (b): distortion vs k at fixed n
    let n_fixed = max_n.max(2_048);
    let k_values: Vec<usize> = [1_024usize, 2_048, 4_096, 8_192]
        .iter()
        .copied()
        .filter(|&k| k * 2 <= n_fixed)
        .collect();
    let k_values = if k_values.is_empty() {
        vec![(n_fixed / 8).max(2), (n_fixed / 4).max(4)]
    } else {
        k_values
    };
    println!();
    println!("Fig. 7(b) — distortion vs cluster count (n = {n_fixed})");
    let w = Workload::generate_with_n(PaperDataset::Vlad10M, n_fixed, opts.seed);
    let mut table_b = Table::new(
        "Fig. 7(b) — average distortion vs k",
        &["k", "Mini-Batch", "closure", "k-means", "BKM", "GK-means"],
    );
    let mut series_b: Vec<Series> = Method::scalability_set()
        .iter()
        .map(|m| Series::new(m.label(), "k", "distortion"))
        .collect();
    for &k in &k_values {
        let mut cells = vec![k.to_string()];
        for (mi, method) in Method::scalability_set().iter().enumerate() {
            let (clustering, _) = method.run(&w.data, k, iterations, opts.seed, false);
            let e = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
            cells.push(format!("{e:.4}"));
            series_b[mi].push(k as f64, e);
        }
        table_b.row(&cells);
    }
    print!("{}", table_b.render());
    for s in &series_b {
        print!("{}", s.to_csv());
    }
    println!("(expected: GK-means ≈ BKM at the bottom; Mini-Batch clearly worst; the boost-based");
    println!(" methods' advantage grows with k.)");
}
