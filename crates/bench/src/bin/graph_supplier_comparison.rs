//! Sec. 4.3 — construction-cost and downstream-quality comparison of the KNN
//! graph suppliers the paper discusses: Alg. 3 (GK-means-driven), NN-Descent
//! ("KGraph"), the navigable-small-world construction (ref. \[34\]) and the
//! exact graph.
//!
//! Expected shape (Sec. 4.3, Fig. 4, Tab. 2): Alg. 3 is the cheapest
//! approximate construction; its recall is usually *lower* than NN-Descent's,
//! yet the GK-means clustering it feeds converges to distortion at least as
//! low, because the graph carries the intermediate clustering structure.
//!
//! ```bash
//! cargo run --release -p bench --bin graph_supplier_comparison -- --scale 0.02
//! ```

use std::time::Instant;

use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{average_distortion, Table};
use gkmeans::{GkMeans, GkParams, KnnGraphBuilder};
use knn_graph::brute::{exact_graph, exact_neighbors_of_subset};
use knn_graph::nn_descent::{nn_descent_with_stats, NnDescentParams};
use knn_graph::nsw::{nsw_build_with_stats, truncate_to_k, NswParams};
use knn_graph::recall::estimated_recall_at_1;
use knn_graph::KnnGraph;
use vecstore::sample::{rng_from_seed, sample_distinct};

struct Supplier {
    name: &'static str,
    graph: KnnGraph,
    build_secs: f64,
    distance_evals: u64,
}

fn main() {
    let opts = Options::parse(0.02);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let n = w.data.len();
    let k = (n / 100).max(10);
    let graph_k = 10usize;
    let kappa = 10usize;
    let iterations = opts.iterations.min(15);
    println!(
        "Sec. 4.3 — graph-supplier comparison on {n} SIFT-like samples (graph k = {graph_k}, clustering k = {k})"
    );

    let params = GkParams::default()
        .kappa(kappa)
        .xi(50)
        .tau(5)
        .seed(opts.seed)
        .record_trace(false);

    let mut suppliers = Vec::new();

    let start = Instant::now();
    let (g, stats) = KnnGraphBuilder::new(params).graph_k(graph_k).build(&w.data);
    suppliers.push(Supplier {
        name: "Alg. 3 (GK-means-driven)",
        graph: g,
        build_secs: start.elapsed().as_secs_f64(),
        distance_evals: stats.refine_distance_evals + stats.clustering_distance_evals,
    });

    let start = Instant::now();
    let (g, stats) = nn_descent_with_stats(
        &w.data,
        &NnDescentParams {
            k: graph_k,
            seed: opts.seed,
            ..Default::default()
        },
    );
    suppliers.push(Supplier {
        name: "NN-Descent (KGraph)",
        graph: g,
        build_secs: start.elapsed().as_secs_f64(),
        distance_evals: stats.distance_evals,
    });

    let start = Instant::now();
    let (g, stats) = nsw_build_with_stats(&w.data, &NswParams::with_m(graph_k).seed(opts.seed));
    suppliers.push(Supplier {
        name: "NSW (small world)",
        graph: truncate_to_k(&g, graph_k),
        build_secs: start.elapsed().as_secs_f64(),
        distance_evals: stats.distance_evals,
    });

    let start = Instant::now();
    let g = exact_graph(&w.data, graph_k);
    suppliers.push(Supplier {
        name: "exact (brute force)",
        graph: g,
        build_secs: start.elapsed().as_secs_f64(),
        distance_evals: (n as u64) * (n as u64 - 1) / 2,
    });

    // Recall is estimated on a random subset (the paper's Sec. 5.1 protocol).
    let mut rng = rng_from_seed(opts.seed ^ 0xabc);
    let sample_ids = sample_distinct(&mut rng, n, 200.min(n)).expect("subset");
    let truth = exact_neighbors_of_subset(&w.data, &sample_ids, 1);

    let mut table = Table::new(
        "graph suppliers: construction cost, recall and downstream GK-means quality",
        &[
            "supplier",
            "build (s)",
            "distance evals",
            "recall@1",
            "GK-means E",
        ],
    );
    for s in &suppliers {
        let recall = estimated_recall_at_1(&s.graph, &sample_ids, &truth);
        let clustering = GkMeans::new(params.iterations(iterations)).fit(&w.data, k, &s.graph);
        let e = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
        table.row(&[
            s.name.to_string(),
            format!("{:.2}", s.build_secs),
            s.distance_evals.to_string(),
            format!("{recall:.3}"),
            format!("{e:.3}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nShape check: Alg. 3 should be the cheapest approximate construction and its\n\
         downstream distortion should not exceed the NN-Descent-supplied run's, even\n\
         when its recall is lower (Sec. 4.3 / Tab. 2)."
    );
}
