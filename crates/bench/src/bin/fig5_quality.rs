//! Fig. 5 — clustering quality study: average distortion as a function of the
//! iteration count (a, c, e) and of wall-clock time (b, d, f) on the SIFT1M-,
//! Glove1M- and GIST1M-like workloads, k = 10 000 in the paper (scaled with
//! the workload here to keep n/k ≈ 100).
//!
//! Expected shape: BKM reaches the lowest distortion; GK-means tracks it
//! closely (sometimes beating plain k-means); Mini-Batch is clearly worse;
//! on the time axis GK-means reaches its plateau far earlier than closure
//! k-means and KGraph+GK-means (whose graph is ~2× more expensive).
//!
//! ```bash
//! cargo run --release -p bench --bin fig5_quality -- --scale 0.02
//! ```

use bench::{Method, Options};
use datagen::{PaperDataset, Workload};
use eval::{Series, Table};

fn main() {
    let opts = Options::parse(0.02);
    let iterations = opts.iterations.min(40);
    for dataset in [
        PaperDataset::Sift1M,
        PaperDataset::Glove1M,
        PaperDataset::Gist1M,
    ] {
        let w = Workload::generate(dataset, opts.scale, opts.seed);
        let n = w.data.len();
        let k = (n / 100).max(10);
        println!();
        println!(
            "Fig. 5 — {} -like workload: {n} samples, k = {k}, {iterations} iterations",
            dataset.name()
        );

        let mut table = Table::new(
            &format!(
                "Fig. 5 ({}) — final distortion and total time",
                dataset.name()
            ),
            &["method", "final E", "total time (s)", "iterations"],
        );
        for method in Method::figure5_set() {
            let (clustering, aux_time) = method.run(&w.data, k, iterations, opts.seed, true);
            let final_e = clustering
                .trace
                .last()
                .map(|t| t.distortion)
                .unwrap_or_else(|| clustering.distortion(&w.data));
            let total = aux_time + clustering.total_time();
            table.row(&[
                method.label().into(),
                format!("{final_e:.3}"),
                format!("{:.2}", total.as_secs_f64()),
                clustering.iterations.to_string(),
            ]);

            // Distortion-vs-iteration and distortion-vs-time series (the two
            // panels of Fig. 5 for this dataset).
            let mut by_iter = Series::new(
                &format!("{}:{}:iter", dataset.name(), method.label()),
                "iteration",
                "distortion",
            );
            let mut by_time = Series::new(
                &format!("{}:{}:time", dataset.name(), method.label()),
                "seconds",
                "distortion",
            );
            for stat in &clustering.trace {
                by_iter.push((stat.iteration + 1) as f64, stat.distortion);
                by_time.push(stat.elapsed_secs + aux_time.as_secs_f64(), stat.distortion);
            }
            print!("{}", by_iter.to_csv());
            print!("{}", by_time.to_csv());
        }
        print!("{}", table.render());
    }
    println!();
    println!("(expected ordering of final E: BKM ≤ GK-means ≈ KGraph+GK-means ≤ k-means ≤ closure < Mini-Batch;");
    println!(" on the time axis GK-means dominates the quality/time trade-off.)");
}
