//! Sec. 4.4 — parameter sensitivity (ablation): how κ (neighbours consulted),
//! ξ (construction cluster size) and τ (construction rounds) affect GK-means
//! quality and cost.
//!
//! Expected shape (Sec. 4.4): quality is stable for κ ≳ 40 (at harness scale,
//! proportionally smaller κ saturate); larger ξ improves graph quality but
//! increases construction cost; τ = 10 suffices for clustering.
//!
//! ```bash
//! cargo run --release -p bench --bin param_sweep -- --scale 0.02
//! ```

use bench::Options;
use datagen::{PaperDataset, Workload};
use eval::{average_distortion, Table};
use gkmeans::{GkMeansPipeline, GkParams};

fn main() {
    let opts = Options::parse(0.02);
    let w = Workload::generate(PaperDataset::Sift1M, opts.scale, opts.seed);
    let n = w.data.len();
    let k = (n / 100).max(10);
    let iterations = opts.iterations.min(20);
    println!("Sec. 4.4 — parameter sweeps on {n} SIFT-like samples, k = {k}");

    // κ sweep (ξ, τ fixed at the defaults).
    let mut kappa_table = Table::new(
        "kappa sweep (xi = 50, tau = 5)",
        &["kappa", "E", "total time (s)", "candidate checks"],
    );
    for kappa in [5usize, 10, 20, 40, 60] {
        let params = GkParams::default()
            .kappa(kappa)
            .xi(50)
            .tau(5)
            .iterations(iterations)
            .seed(opts.seed)
            .record_trace(false);
        let outcome = GkMeansPipeline::new(params).cluster(&w.data, k);
        let e = average_distortion(
            &w.data,
            &outcome.clustering.labels,
            &outcome.clustering.centroids,
        );
        kappa_table.row(&[
            kappa.to_string(),
            format!("{e:.3}"),
            format!("{:.2}", outcome.total_time().as_secs_f64()),
            outcome.clustering.distance_evals.to_string(),
        ]);
    }
    print!("{}", kappa_table.render());

    // ξ sweep.
    let mut xi_table = Table::new(
        "xi sweep (kappa = 20, tau = 5)",
        &["xi", "E", "graph pair comparisons", "total time (s)"],
    );
    for xi in [20usize, 40, 50, 80, 100] {
        let params = GkParams::default()
            .kappa(20)
            .xi(xi)
            .tau(5)
            .iterations(iterations)
            .seed(opts.seed)
            .record_trace(false);
        let outcome = GkMeansPipeline::new(params).cluster(&w.data, k);
        let e = average_distortion(
            &w.data,
            &outcome.clustering.labels,
            &outcome.clustering.centroids,
        );
        xi_table.row(&[
            xi.to_string(),
            format!("{e:.3}"),
            outcome.graph_stats.refine_distance_evals.to_string(),
            format!("{:.2}", outcome.total_time().as_secs_f64()),
        ]);
    }
    print!("{}", xi_table.render());

    // τ sweep.
    let mut tau_table = Table::new(
        "tau sweep (kappa = 20, xi = 50)",
        &["tau", "E", "graph build time (s)", "total time (s)"],
    );
    for tau in [1usize, 3, 5, 10, 16] {
        let params = GkParams::default()
            .kappa(20)
            .xi(50)
            .tau(tau)
            .iterations(iterations)
            .seed(opts.seed)
            .record_trace(false);
        let outcome = GkMeansPipeline::new(params).cluster(&w.data, k);
        let e = average_distortion(
            &w.data,
            &outcome.clustering.labels,
            &outcome.clustering.centroids,
        );
        tau_table.row(&[
            tau.to_string(),
            format!("{e:.3}"),
            format!("{:.2}", outcome.graph_time.as_secs_f64()),
            format!("{:.2}", outcome.total_time().as_secs_f64()),
        ]);
    }
    print!("{}", tau_table.render());
    println!(
        "(expected: E flattens once kappa is large enough; construction cost grows with xi and tau"
    );
    println!(" while E improves only marginally past the defaults — matching Sec. 4.4.)");
}
