//! Shared plumbing for the experiment binaries: command-line options, method
//! registry and workload sizing.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale <f>`   fraction of the paper's dataset size to generate
//!   (default: a per-experiment value small enough to finish in minutes);
//! * `--full`        use the paper's original sample counts;
//! * `--seed <u64>`  RNG seed (default 42);
//! * `--iterations <n>` clustering iterations where applicable.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Duration;

use baselines::bisecting::BisectingKMeans;
use baselines::closure::ClosureKMeans;
use baselines::common::{Clustering, KMeansConfig};
use baselines::lloyd::LloydKMeans;
use baselines::minibatch::MiniBatchKMeans;
use gkmeans::{BoostKMeans, GkMeansPipeline, GkParams};
use knn_graph::nn_descent::{nn_descent, NnDescentParams};
use vecstore::VectorSet;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Fraction of the paper's dataset size to generate.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Clustering iterations (where the experiment does not fix its own).
    pub iterations: usize,
}

impl Options {
    /// Parses `std::env::args`, falling back to `default_scale` when neither
    /// `--scale` nor `--full` is given.
    pub fn parse(default_scale: f64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args, default_scale)
    }

    /// Parses an explicit argument vector (testable).
    pub fn from_args(args: &[String], default_scale: f64) -> Self {
        let mut scale = default_scale;
        let mut seed = 42u64;
        let mut iterations = 30usize;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale = 1.0,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                        scale = v;
                        i += 1;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                        seed = v;
                        i += 1;
                    }
                }
                "--iterations" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        iterations = v.max(1);
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        Self {
            scale: if scale.is_finite() && scale > 0.0 {
                scale.min(1.0)
            } else {
                default_scale
            },
            seed,
            iterations,
        }
    }
}

/// The clustering methods compared throughout Sec. 5, in the order the paper
/// lists them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Mini-Batch k-means (Sculley 2010).
    MiniBatch,
    /// Closure k-means (Wang et al. 2012).
    Closure,
    /// Traditional (Lloyd's) k-means.
    KMeans,
    /// Boost k-means.
    Bkm,
    /// GK-means with the graph supplied by NN-Descent ("KGraph+GK-means").
    KGraphGkMeans,
    /// GK-means with the graph supplied by Alg. 3 (the standard configuration).
    GkMeans,
    /// Bisecting (hierarchical) k-means — related-work reference point.
    Bisecting,
}

impl Method {
    /// The five methods of Fig. 6 / Fig. 7 plus the two graph-supplied runs of
    /// Fig. 5, in plotting order.
    pub fn figure5_set() -> [Method; 6] {
        [
            Method::MiniBatch,
            Method::Closure,
            Method::KMeans,
            Method::Bkm,
            Method::KGraphGkMeans,
            Method::GkMeans,
        ]
    }

    /// The five methods of the scalability figures (Fig. 6 / Fig. 7).
    pub fn scalability_set() -> [Method; 5] {
        [
            Method::MiniBatch,
            Method::Closure,
            Method::KMeans,
            Method::Bkm,
            Method::GkMeans,
        ]
    }

    /// Curve label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::MiniBatch => "Mini-Batch",
            Method::Closure => "closure k-means",
            Method::KMeans => "k-means",
            Method::Bkm => "BKM",
            Method::KGraphGkMeans => "KGraph+GK-means",
            Method::GkMeans => "GK-means",
            Method::Bisecting => "bisecting k-means",
        }
    }

    /// Runs the method on `data` with `k` clusters for `iterations`
    /// iterations, recording traces when `record_trace` is set.  Returns the
    /// clustering and the wall-clock time spent on any auxiliary structure
    /// (the KNN graph for the GK-means variants) so total time comparisons
    /// stay fair.
    pub fn run(
        &self,
        data: &VectorSet,
        k: usize,
        iterations: usize,
        seed: u64,
        record_trace: bool,
    ) -> (Clustering, Duration) {
        let cfg = KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(seed)
            .record_trace(record_trace);
        match self {
            Method::MiniBatch => (
                MiniBatchKMeans::new(cfg)
                    .batch_size(1_000.min(data.len()))
                    .fit(data),
                Duration::ZERO,
            ),
            Method::Closure => (ClosureKMeans::new(cfg).fit(data), Duration::ZERO),
            Method::KMeans => (LloydKMeans::new(cfg).fit(data), Duration::ZERO),
            Method::Bkm => (BoostKMeans::new(cfg).fit(data), Duration::ZERO),
            Method::Bisecting => (BisectingKMeans::new(cfg).fit(data), Duration::ZERO),
            Method::GkMeans => {
                let params = gk_params(k, iterations, seed, record_trace, data.len());
                let outcome = GkMeansPipeline::new(params).cluster(data, k);
                (outcome.clustering, outcome.graph_time)
            }
            Method::KGraphGkMeans => {
                let params = gk_params(k, iterations, seed, record_trace, data.len());
                let start = std::time::Instant::now();
                let graph = nn_descent(
                    data,
                    &NnDescentParams {
                        k: params.kappa,
                        seed,
                        ..Default::default()
                    },
                );
                let graph_time = start.elapsed();
                let outcome =
                    GkMeansPipeline::new(params).cluster_with_graph(data, k, graph, graph_time);
                (outcome.clustering, graph_time)
            }
        }
    }
}

/// GK-means parameters used by the harness.  The paper's defaults are
/// κ = ξ = 50, τ = 10; at harness scale (thousands to hundreds of thousands of
/// samples) a slightly smaller κ keeps graph memory proportional while
/// preserving the algorithmic behaviour.
pub fn gk_params(
    _k: usize,
    iterations: usize,
    seed: u64,
    record_trace: bool,
    n: usize,
) -> GkParams {
    let kappa = if n >= 100_000 { 50 } else { 20 };
    GkParams::default()
        .kappa(kappa)
        .xi(50)
        .tau(if n >= 100_000 { 10 } else { 5 })
        .iterations(iterations)
        .seed(seed)
        .record_trace(record_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{PaperDataset, Workload};

    #[test]
    fn options_parse_flags() {
        let args: Vec<String> = [
            "prog",
            "--scale",
            "0.25",
            "--seed",
            "7",
            "--iterations",
            "12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = Options::from_args(&args, 0.01);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.seed, 7);
        assert_eq!(o.iterations, 12);

        let o = Options::from_args(&["prog".into(), "--full".into()], 0.01);
        assert_eq!(o.scale, 1.0);

        let o = Options::from_args(&["prog".into()], 0.02);
        assert_eq!(o.scale, 0.02);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn options_reject_nonsense_scale() {
        let o = Options::from_args(&["prog".into(), "--scale".into(), "-3".into()], 0.05);
        assert_eq!(o.scale, 0.05);
    }

    #[test]
    fn method_labels_match_paper_legends() {
        assert_eq!(Method::GkMeans.label(), "GK-means");
        assert_eq!(Method::KGraphGkMeans.label(), "KGraph+GK-means");
        assert_eq!(Method::figure5_set().len(), 6);
        assert_eq!(Method::scalability_set().len(), 5);
    }

    #[test]
    fn every_method_runs_on_a_tiny_workload() {
        let w = Workload::generate_with_n(PaperDataset::Sift100K, 600, 1);
        for m in Method::figure5_set() {
            let (c, _aux) = m.run(&w.data, 6, 3, 2, false);
            assert_eq!(c.labels.len(), 600, "{}", m.label());
            assert!(c.labels.iter().all(|&l| l < c.k()), "{}", m.label());
        }
        let (c, _) = Method::Bisecting.run(&w.data, 6, 3, 2, false);
        assert_eq!(c.labels.len(), 600);
    }
}
