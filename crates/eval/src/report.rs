//! Plain-text tables and CSV series for the experiment harness.
//!
//! Every harness binary prints (a) a human-readable table mirroring the
//! paper's tables and (b) machine-readable CSV series (one per curve of the
//! corresponding figure) so the results can be plotted or diffed against the
//! paper's reported numbers in EXPERIMENTS.md.

use std::fmt::Write as _;

/// A column-aligned plain-text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.header) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// A named data series rendered as CSV — one per curve of a paper figure.
#[derive(Clone, Debug)]
pub struct Series {
    name: String,
    x_label: String,
    y_label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            name: name.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends one `(x, y)` point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push((x, y));
        self
    }

    /// Series name (curve label in the figure).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Renders the series as CSV with a comment header.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# series: {}", self.name);
        let _ = writeln!(out, "{},{}", self.x_label, self.y_label);
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x},{y}");
        }
        out
    }
}

/// Formats a `Duration`-like number of seconds compactly (`ms`, `s`, `min`,
/// `h`) for table cells.
pub fn human_secs(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2} s")
    } else if secs < 7200.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.2} h", secs / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Tab. X", &["method", "time", "E"]);
        assert!(t.is_empty());
        t.row(&["GK-means".into(), "5.2".into(), "0.619".into()]);
        t.row(&["closure".into(), "10.5".into(), "0.700".into()]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains("== Tab. X =="));
        assert!(s.contains("GK-means"));
        assert!(s.contains("0.700"));
        // each data line has the three cells
        assert_eq!(s.lines().count(), 2 + 1 + 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn series_round_trips_to_csv() {
        let mut s = Series::new("GK-means", "iteration", "distortion");
        s.push(1.0, 42_000.0).push(2.0, 41_000.0);
        assert_eq!(s.name(), "GK-means");
        assert_eq!(s.points().len(), 2);
        let csv = s.to_csv();
        assert!(csv.starts_with("# series: GK-means"));
        assert!(csv.contains("iteration,distortion"));
        assert!(csv.contains("2,41000"));
    }

    #[test]
    fn human_secs_scales() {
        assert!(human_secs(0.0123).contains("ms"));
        assert!(human_secs(2.5).contains('s'));
        assert!(human_secs(600.0).contains("min"));
        assert!(human_secs(10_000.0).contains('h'));
    }
}
