//! Evaluation metrics and reporting for the GK-means reproduction.
//!
//! * [`distortion`] — the average-distortion measure `E` of Eqn. 4 (a.k.a.
//!   mean squared error / WCSSD), the paper's clustering-quality metric;
//! * [`cooccurrence`] — the Fig. 1 statistic: the probability that a sample
//!   and its rank-`r` nearest neighbour fall into the same cluster;
//! * [`internal`] — additional internal indices (sampled silhouette,
//!   Davies–Bouldin) and the adjusted Rand index, used by the ablation
//!   studies to cross-check distortion-based conclusions;
//! * [`external`] — purity and NMI against the synthetic latent labels;
//! * [`timing`] — a simple phase stopwatch used by the experiment harness to
//!   report the Init./Iter./Total columns of Tab. 2;
//! * [`report`] — plain-text table and CSV series builders so every harness
//!   binary prints output directly comparable to the paper's tables and the
//!   data series behind its figures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cooccurrence;
pub mod distortion;
pub mod external;
pub mod internal;
pub mod report;
pub mod timing;

pub use cooccurrence::cooccurrence_by_rank;
pub use distortion::{average_distortion, within_cluster_ssd};
pub use external::{normalized_mutual_information, purity};
pub use internal::{adjusted_rand_index, davies_bouldin, sampled_silhouette};
pub use report::{Series, Table};
pub use timing::PhaseTimer;
