//! Internal clustering-quality measures beyond the paper's distortion.
//!
//! The paper evaluates with the average distortion `E` (Eqn. 4) alone.  For
//! the ablation studies in this reproduction two standard internal indices
//! are additionally provided, so that quality differences between variants
//! can be cross-checked on a measure the optimisation does not directly
//! target:
//!
//! * a **sampled silhouette coefficient** (O(s·n·d) for `s` sampled points
//!   instead of the exact O(n²·d));
//! * the **Davies–Bouldin index** (lower is better), computed from cluster
//!   centroids and mean within-cluster distances.

use vecstore::distance::l2;
use vecstore::sample::{rng_from_seed, sample_distinct};
use vecstore::VectorSet;

/// Sampled silhouette coefficient in `[-1, 1]`; higher is better.
///
/// For each of `samples` randomly chosen points the full distance to every
/// other point is computed (exact a/b terms for that point); the coefficient
/// is averaged over the sample.  Sampling keeps the cost linear in `n` and is
/// the standard approach for large collections.
///
/// Returns `0.0` for degenerate inputs (fewer than two clusters or fewer than
/// two samples).
///
/// # Panics
///
/// Panics when `labels.len() != data.len()`.
pub fn sampled_silhouette(data: &VectorSet, labels: &[usize], samples: usize, seed: u64) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    if k < 2 {
        return 0.0;
    }
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }

    let mut rng = rng_from_seed(seed);
    let count = samples.clamp(1, n);
    let chosen = sample_distinct(&mut rng, n, count).expect("count <= n");

    let mut total = 0.0f64;
    let mut used = 0usize;
    let mut sums = vec![0.0f64; k];
    for &i in &chosen {
        let own = labels[i];
        if sizes[own] <= 1 {
            // silhouette of a singleton is defined as 0; skip it.
            continue;
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if j == i {
                continue;
            }
            sums[labels[j]] += f64::from(l2(data.row(i), data.row(j)));
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
        used += 1;
    }
    if used == 0 {
        0.0
    } else {
        total / used as f64
    }
}

/// Davies–Bouldin index (≥ 0, lower is better).
///
/// `DB = (1/k) Σ_i max_{j≠i} (s_i + s_j) / d(c_i, c_j)` where `s_i` is the
/// mean distance of cluster `i`'s members to its centroid and `d(c_i, c_j)`
/// the centroid distance.  Empty clusters are ignored.  Returns `0.0` when
/// fewer than two non-empty clusters exist.
///
/// # Panics
///
/// Panics when `labels.len() != data.len()` or when centroid dimensionality
/// does not match the data.
pub fn davies_bouldin(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    assert_eq!(
        data.dim(),
        centroids.dim(),
        "centroid dimensionality mismatch"
    );
    let k = centroids.len();
    let mut sizes = vec![0usize; k];
    let mut scatter = vec![0.0f64; k];
    for (i, &l) in labels.iter().enumerate() {
        sizes[l] += 1;
        scatter[l] += f64::from(l2(data.row(i), centroids.row(l)));
    }
    let populated: Vec<usize> = (0..k).filter(|&c| sizes[c] > 0).collect();
    if populated.len() < 2 {
        return 0.0;
    }
    for &c in &populated {
        scatter[c] /= sizes[c] as f64;
    }
    let mut total = 0.0f64;
    for &i in &populated {
        let mut worst: f64 = 0.0;
        for &j in &populated {
            if i == j {
                continue;
            }
            let centroid_dist = f64::from(l2(centroids.row(i), centroids.row(j)));
            if centroid_dist <= 0.0 {
                continue;
            }
            worst = worst.max((scatter[i] + scatter[j]) / centroid_dist);
        }
        total += worst;
    }
    total / populated.len() as f64
}

/// Adjusted Rand index between two labelings, in `[-1, 1]` (1 = identical
/// partitions up to renaming, ≈ 0 = independent).
///
/// # Panics
///
/// Panics when the two label vectors differ in length.
pub fn adjusted_rand_index(labels: &[usize], reference: &[usize]) -> f64 {
    assert_eq!(labels.len(), reference.len(), "label count mismatch");
    let n = labels.len();
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let r = reference.iter().copied().max().unwrap_or(0) + 1;
    let mut contingency = vec![0u64; k * r];
    let mut row_sums = vec![0u64; k];
    let mut col_sums = vec![0u64; r];
    for (&c, &g) in labels.iter().zip(reference) {
        contingency[c * r + g] += 1;
        row_sums[c] += 1;
        col_sums[g] += 1;
    }
    let choose2 = |x: u64| -> f64 { (x as f64) * (x as f64 - 1.0) / 2.0 };
    let index: f64 = contingency.iter().map(|&x| choose2(x)).sum();
    let sum_rows: f64 = row_sums.iter().map(|&x| choose2(x)).sum();
    let sum_cols: f64 = col_sums.iter().map(|&x| choose2(x)).sum();
    let total_pairs = choose2(n as u64);
    let expected = sum_rows * sum_cols / total_pairs;
    let max_index = 0.5 * (sum_rows + sum_cols);
    if (max_index - expected).abs() < f64::EPSILON {
        return 0.0;
    }
    (index - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (VectorSet, Vec<usize>, VectorSet) {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.4, 0.1],
            vec![0.1, 0.4],
            vec![10.0, 10.0],
            vec![10.4, 10.1],
            vec![10.1, 10.4],
        ])
        .unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let centroids =
            VectorSet::from_rows(vec![vec![0.1667, 0.1667], vec![10.1667, 10.1667]]).unwrap();
        (data, labels, centroids)
    }

    #[test]
    fn silhouette_is_high_for_well_separated_clusters() {
        let (data, labels, _) = two_blobs();
        let s = sampled_silhouette(&data, &labels, 6, 1);
        assert!(s > 0.9, "silhouette {s}");
    }

    #[test]
    fn silhouette_is_poor_for_shuffled_labels() {
        let (data, _, _) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = sampled_silhouette(&data, &bad, 6, 2);
        assert!(s < 0.2, "shuffled-label silhouette should be low, got {s}");
    }

    #[test]
    fn silhouette_degenerate_inputs_are_zero() {
        let (data, labels, _) = two_blobs();
        assert_eq!(sampled_silhouette(&data, &[0; 6], 6, 3), 0.0);
        let one = VectorSet::from_rows(vec![vec![1.0, 1.0]]).unwrap();
        assert_eq!(sampled_silhouette(&one, &[0], 1, 3), 0.0);
        let _ = labels;
    }

    #[test]
    fn davies_bouldin_prefers_the_true_partition() {
        let (data, labels, centroids) = two_blobs();
        let good = davies_bouldin(&data, &labels, &centroids);
        let bad_labels = vec![0, 1, 0, 1, 0, 1];
        let mut bad_centroids = VectorSet::zeros(2, 2).unwrap();
        // means of the shuffled partition
        for (c, rows) in [(0usize, [0usize, 2, 4]), (1usize, [1, 3, 5])] {
            let mut acc = [0.0f32; 2];
            for &i in &rows {
                acc[0] += data.row(i)[0];
                acc[1] += data.row(i)[1];
            }
            bad_centroids
                .row_mut(c)
                .copy_from_slice(&[acc[0] / 3.0, acc[1] / 3.0]);
        }
        let bad = davies_bouldin(&data, &bad_labels, &bad_centroids);
        assert!(good < bad, "good {good} vs bad {bad}");
        assert!(good >= 0.0);
    }

    #[test]
    fn davies_bouldin_degenerate_cases() {
        let (data, _, centroids) = two_blobs();
        // single populated cluster → 0
        assert_eq!(davies_bouldin(&data, &[0; 6], &centroids), 0.0);
    }

    #[test]
    fn ari_identical_and_independent() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
        // renamed clusters are still a perfect match
        let renamed = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &renamed) - 1.0).abs() < 1e-12);
        // a constant labelling carries no information
        let constant = vec![0; 6];
        assert!(adjusted_rand_index(&a, &constant).abs() < 1e-12);
        // tiny inputs
        assert_eq!(adjusted_rand_index(&[0], &[0]), 0.0);
    }

    #[test]
    fn ari_partial_agreement_is_between_zero_and_one() {
        let a = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let b = vec![0, 0, 1, 1, 1, 2, 2, 2, 0];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ari {ari}");
    }
}
