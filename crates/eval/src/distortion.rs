//! Clustering-quality measures (Sec. 5.1, Eqn. 4).

use vecstore::distance::l2_sq;
use vecstore::VectorSet;

/// Average distortion `E = Σ_i ‖C_{q(x_i)} − x_i‖² / n` (Eqn. 4).
///
/// # Panics
///
/// Panics when `labels.len() != data.len()` or when a label is out of range
/// for `centroids`.
pub fn average_distortion(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    within_cluster_ssd(data, labels, centroids) / data.len() as f64
}

/// Within-cluster sum of squared distortions (WCSSD), the un-normalised form
/// used by the closure-k-means paper the evaluation section references.
pub fn within_cluster_ssd(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    let mut sum = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < centroids.len(), "label {label} out of range");
        sum += f64::from(l2_sq(data.row(i), centroids.row(label)));
    }
    sum
}

/// Distortion of the *best possible* assignment to the given centroids
/// (every sample charged to its closest centroid, regardless of `labels`).
/// Useful to quantify how far a restricted assignment (GK-means, closure
/// k-means) is from the unconstrained one for the same centroids.
pub fn assignment_gap(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    if data.is_empty() {
        return 0.0;
    }
    let mut assigned = 0.0f64;
    let mut optimal = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        let x = data.row(i);
        assigned += f64::from(l2_sq(x, centroids.row(label)));
        let best = (0..centroids.len())
            .map(|c| l2_sq(x, centroids.row(c)))
            .fold(f32::INFINITY, f32::min);
        optimal += f64::from(best);
    }
    (assigned - optimal) / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (VectorSet, Vec<usize>, VectorSet) {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![10.0, 0.0],
            vec![12.0, 0.0],
        ])
        .unwrap();
        let labels = vec![0, 0, 1, 1];
        let centroids = VectorSet::from_rows(vec![vec![1.0, 0.0], vec![11.0, 0.0]]).unwrap();
        (data, labels, centroids)
    }

    #[test]
    fn hand_checked_distortion() {
        let (data, labels, centroids) = fixture();
        // every sample is exactly 1 away from its centroid → squared 1 each
        assert_eq!(within_cluster_ssd(&data, &labels, &centroids), 4.0);
        assert_eq!(average_distortion(&data, &labels, &centroids), 1.0);
    }

    #[test]
    fn empty_data_gives_zero() {
        let data = VectorSet::zeros(0, 2).unwrap();
        let centroids = VectorSet::zeros(1, 2).unwrap();
        assert_eq!(average_distortion(&data, &[], &centroids), 0.0);
        assert_eq!(assignment_gap(&data, &[], &centroids), 0.0);
    }

    #[test]
    fn assignment_gap_zero_for_optimal_labels() {
        let (data, labels, centroids) = fixture();
        assert_eq!(assignment_gap(&data, &labels, &centroids), 0.0);
    }

    #[test]
    fn assignment_gap_positive_for_suboptimal_labels() {
        let (data, _, centroids) = fixture();
        let bad = vec![1, 0, 1, 0];
        let gap = assignment_gap(&data, &bad, &centroids);
        assert!(gap > 0.0);
        // distortion with bad labels exceeds distortion with optimal labels by the gap
        let bad_e = average_distortion(&data, &bad, &centroids);
        let good_e = average_distortion(&data, &[0, 0, 1, 1], &centroids);
        assert!((bad_e - good_e - gap).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_labels_panic() {
        let (data, _, centroids) = fixture();
        let _ = average_distortion(&data, &[0], &centroids);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let (data, _, centroids) = fixture();
        let _ = average_distortion(&data, &[0, 0, 1, 9], &centroids);
    }
}
