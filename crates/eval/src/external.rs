//! External clustering-quality measures against reference labels.
//!
//! The paper evaluates purely with internal distortion (Eqn. 4) because its
//! real datasets have no ground-truth partition.  The synthetic surrogates in
//! this reproduction *do* carry latent component labels, so the harness can
//! additionally sanity-check a clustering against them with purity and
//! normalised mutual information (NMI).  These measures are never used to
//! tune anything — they only validate that the synthetic workloads behave
//! like clustered data.

/// Cluster purity: the fraction of samples whose cluster's majority reference
/// label matches their own reference label.  `1.0` means every cluster is
/// pure; `≈ max class frequency` means the clustering is uninformative.
///
/// # Panics
///
/// Panics when the two label vectors differ in length.
pub fn purity(labels: &[usize], reference: &[usize]) -> f64 {
    assert_eq!(labels.len(), reference.len(), "label count mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let r = reference.iter().copied().max().unwrap_or(0) + 1;
    let mut contingency = vec![0usize; k * r];
    for (&c, &g) in labels.iter().zip(reference) {
        contingency[c * r + g] += 1;
    }
    let majority_sum: usize = (0..k)
        .map(|c| {
            contingency[c * r..(c + 1) * r]
                .iter()
                .copied()
                .max()
                .unwrap_or(0)
        })
        .sum();
    majority_sum as f64 / labels.len() as f64
}

/// Normalised mutual information between a clustering and reference labels,
/// normalised by the arithmetic mean of the two entropies.  Returns a value
/// in `[0, 1]`; `0` for independent labelings, `1` for identical partitions
/// (up to renaming).
///
/// # Panics
///
/// Panics when the two label vectors differ in length.
pub fn normalized_mutual_information(labels: &[usize], reference: &[usize]) -> f64 {
    assert_eq!(labels.len(), reference.len(), "label count mismatch");
    let n = labels.len();
    if n == 0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let r = reference.iter().copied().max().unwrap_or(0) + 1;
    let mut joint = vec![0f64; k * r];
    let mut pc = vec![0f64; k];
    let mut pg = vec![0f64; r];
    let inv_n = 1.0 / n as f64;
    for (&c, &g) in labels.iter().zip(reference) {
        joint[c * r + g] += inv_n;
        pc[c] += inv_n;
        pg[g] += inv_n;
    }
    let mut mi = 0.0f64;
    for c in 0..k {
        for g in 0..r {
            let p = joint[c * r + g];
            if p > 0.0 {
                mi += p * (p / (pc[c] * pg[g])).ln();
            }
        }
    }
    let entropy = |p: &[f64]| -> f64 {
        -p.iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| x * x.ln())
            .sum::<f64>()
    };
    let hc = entropy(&pc);
    let hg = entropy(&pg);
    let denom = 0.5 * (hc + hg);
    if denom <= 0.0 {
        // both partitions are single-cluster: identical by convention
        return 1.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let labels = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(purity(&labels, &labels), 1.0);
        assert!((normalized_mutual_information(&labels, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_partitions_still_score_one() {
        let a = vec![0, 0, 1, 1, 2, 2];
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(purity(&a, &b), 1.0);
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_low() {
        // clustering splits evens/odds; reference splits halves — independent
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let reference: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let nmi = normalized_mutual_information(&labels, &reference);
        assert!(nmi < 0.05, "nmi {nmi}");
        assert!((purity(&labels, &reference) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn purity_handles_impure_clusters() {
        // one cluster mixes two reference groups 3:1
        let labels = vec![0, 0, 0, 0, 1, 1];
        let reference = vec![0, 0, 0, 1, 1, 1];
        assert!((purity(&labels, &reference) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(purity(&[], &[]), 0.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 0.0);
        // single-cluster vs single-cluster
        let ones = vec![0usize; 5];
        assert_eq!(purity(&ones, &ones), 1.0);
        assert_eq!(normalized_mutual_information(&ones, &ones), 1.0);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_lengths_panic() {
        let _ = purity(&[0, 1], &[0]);
    }
}
