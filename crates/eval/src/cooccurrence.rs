//! The co-occurrence statistic of Fig. 1.
//!
//! For every sample, the paper asks: given a clustering, what is the
//! probability that the sample's rank-`r` nearest neighbour lives in the same
//! cluster?  On SIFT100K with clusters of size 50 the probability is ≈0.45
//! for the rank-1 neighbour and decays with rank, but stays orders of
//! magnitude above the random-collision probability `cluster_size / n` —
//! which is the observation that motivates GK-means.

use knn_graph::KnnGraph;

/// `result[r]` = fraction of samples whose rank-`(r+1)` exact nearest
/// neighbour shares their cluster, for ranks `1..=max_rank`.
///
/// `exact` must be an exact (ground-truth) KNN graph with at least `max_rank`
/// neighbours per sample; samples with shorter lists contribute only to the
/// ranks they cover.
///
/// # Panics
///
/// Panics when `labels.len() != exact.len()` or when `max_rank == 0`.
pub fn cooccurrence_by_rank(exact: &KnnGraph, labels: &[usize], max_rank: usize) -> Vec<f64> {
    assert_eq!(exact.len(), labels.len(), "label count mismatch");
    assert!(max_rank > 0, "max_rank must be positive");
    let mut hits = vec![0usize; max_rank];
    let mut totals = vec![0usize; max_rank];
    for (i, list) in exact.iter() {
        for (rank, nb) in list.as_slice().iter().take(max_rank).enumerate() {
            totals[rank] += 1;
            if labels[nb.id as usize] == labels[i] {
                hits[rank] += 1;
            }
        }
    }
    hits.into_iter()
        .zip(totals)
        .map(|(h, t)| if t == 0 { 0.0 } else { h as f64 / t as f64 })
        .collect()
}

/// The random-collision baseline the paper quotes (`0.0005` for SIFT100K
/// with clusters of 50): the probability that two uniformly random samples
/// fall into the same cluster, computed from the actual cluster sizes.
pub fn random_collision_probability(labels: &[usize], k: usize) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    let n = labels.len() as f64;
    sizes.iter().map(|&s| (s as f64 / n).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::exact_graph;
    use vecstore::VectorSet;

    /// Two tight groups; neighbours always co-occur when labels follow groups.
    fn grouped_data() -> (VectorSet, Vec<usize>) {
        let mut rows = Vec::new();
        for g in 0..2 {
            for i in 0..10 {
                rows.push(vec![g as f32 * 100.0 + i as f32 * 0.01, 0.0]);
            }
        }
        let labels = (0..20).map(|i| usize::from(i >= 10)).collect();
        (VectorSet::from_rows(rows).unwrap(), labels)
    }

    #[test]
    fn perfect_cooccurrence_for_group_respecting_labels() {
        let (data, labels) = grouped_data();
        let exact = exact_graph(&data, 5);
        let probs = cooccurrence_by_rank(&exact, &labels, 5);
        assert_eq!(probs.len(), 5);
        assert!(probs.iter().all(|&p| (p - 1.0).abs() < 1e-12), "{probs:?}");
    }

    #[test]
    fn zero_cooccurrence_for_adversarial_labels() {
        let (data, _) = grouped_data();
        // alternate labels so immediate neighbours (adjacent on the line) are
        // always in the other cluster
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let exact = exact_graph(&data, 1);
        let probs = cooccurrence_by_rank(&exact, &labels, 1);
        assert!(probs[0] < 0.2, "{probs:?}");
    }

    #[test]
    fn probability_decays_with_rank_on_mixed_data() {
        // group-respecting labels but only the first half of each group
        // labelled together: ranks beyond the sub-group boundary miss.
        let (data, _) = grouped_data();
        let labels: Vec<usize> = (0..20)
            .map(|i| match i {
                0..=4 => 0,
                5..=9 => 1,
                10..=14 => 2,
                _ => 3,
            })
            .collect();
        let exact = exact_graph(&data, 9);
        let probs = cooccurrence_by_rank(&exact, &labels, 9);
        // early ranks co-occur more than late ranks
        assert!(probs[0] > probs[8], "{probs:?}");
    }

    #[test]
    fn random_collision_matches_formula() {
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let p = random_collision_probability(&labels, 2);
        assert!((p - 0.5).abs() < 1e-12);
        let skewed = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let p = random_collision_probability(&skewed, 2);
        assert!((p - (0.75f64.powi(2) + 0.25f64.powi(2))).abs() < 1e-12);
        assert_eq!(random_collision_probability(&[], 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatch_panics() {
        let (data, _) = grouped_data();
        let exact = exact_graph(&data, 2);
        let _ = cooccurrence_by_rank(&exact, &[0, 1], 2);
    }
}
