//! Phase stopwatch for the experiment harness.
//!
//! Tab. 2 reports initialisation time, iteration time and total time per
//! method; the harness wraps each phase with [`PhaseTimer::phase`] and prints
//! the accumulated table.

use std::time::{Duration, Instant};

/// Accumulates named phase durations in insertion order.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a closure and records it under `name`, returning its output.
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((name.to_string(), start.elapsed()));
        out
    }

    /// Records an externally measured duration under `name`.
    pub fn record(&mut self, name: &str, duration: Duration) {
        self.phases.push((name.to_string(), duration));
    }

    /// Duration of the first phase recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Sum of all recorded phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// All phases in insertion order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_in_order_with_outputs() {
        let mut timer = PhaseTimer::new();
        let x = timer.phase("init", || 41 + 1);
        assert_eq!(x, 42);
        timer.record("iter", Duration::from_millis(120));
        assert_eq!(timer.phases().len(), 2);
        assert_eq!(timer.phases()[0].0, "init");
        assert_eq!(timer.get("iter"), Some(Duration::from_millis(120)));
        assert_eq!(timer.get("missing"), None);
        assert!(timer.total() >= Duration::from_millis(120));
    }

    #[test]
    fn default_is_empty() {
        let timer = PhaseTimer::default();
        assert!(timer.phases().is_empty());
        assert_eq!(timer.total(), Duration::ZERO);
    }
}
