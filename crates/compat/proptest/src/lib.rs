//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], the [`proptest!`] macro and the
//! `prop_assert*` macros.  Each test runs `ProptestConfig::cases` random
//! cases seeded deterministically from the test name and case index; there is
//! no shrinking — a failing case panics with the ordinary assertion message,
//! and the deterministic seeding makes the failure reproducible.

#![warn(missing_docs)]

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash = (hash ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
        Self {
            state: hash ^ (u64::from(case) << 32) ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == end { start } else { (start..end + 1).generate(rng) }
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a [`VecStrategy`] with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.min..=self.size.max).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes an ordinary test running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
        let rows = Strategy::generate(
            &crate::collection::vec(crate::collection::vec(0.0f32..1.0, 4..=4), 2..6),
            &mut rng,
        );
        assert!((2..6).contains(&rows.len()));
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_strategies_to_args(a in 0usize..10, b in 0u64..5) {
            prop_assert!(a < 10);
            prop_assert!(b < 5);
        }

        #[test]
        fn flat_map_and_map_compose(rows in (1usize..4).prop_flat_map(|dim| {
            crate::collection::vec(crate::collection::vec(0.0f32..1.0, dim..=dim), 1..5)
                .prop_map(|v| v)
        })) {
            let dim = rows[0].len();
            prop_assert!(rows.iter().all(|r| r.len() == dim));
        }
    }
}
