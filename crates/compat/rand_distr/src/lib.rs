//! Offline stand-in for the subset of `rand_distr` this workspace uses: the
//! [`Distribution`] trait and the [`Normal`] distribution (sampled with the
//! Box–Muller transform).  See the `rand` compat crate for why this exists.

#![warn(missing_docs)]

use rand::{Rng, RngCore, Standard};

/// Types that can be sampled given a random source.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for non-finite or negative scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution with the given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Floating-point types [`Normal`] can produce.
pub trait NormalFloat: Copy {
    /// `true` when the value is a valid (finite, non-negative) scale.
    fn valid_scale(self) -> bool;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// `mean + std_dev * z`.
    fn scale_shift(self, std_dev: Self, z: f64) -> Self;
}

impl NormalFloat for f32 {
    fn valid_scale(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn scale_shift(self, std_dev: Self, z: f64) -> Self {
        self + std_dev * z as f32
    }
}

impl NormalFloat for f64 {
    fn valid_scale(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn scale_shift(self, std_dev: Self, z: f64) -> Self {
        self + std_dev * z
    }
}

impl<F: NormalFloat> Normal<F> {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] when `std_dev` is negative or not finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !std_dev.valid_scale() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller: two uniforms in (0, 1] -> one standard normal.
        let u1: f64 = (1.0 - rng.gen::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = Standard::standard_sample(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean.scale_shift(self.std_dev, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_scale() {
        assert!(Normal::<f32>::new(0.0, -1.0).is_err());
        assert!(Normal::<f64>::new(0.0, f64::NAN).is_err());
        assert!(Normal::<f32>::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Normal::<f64>::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
