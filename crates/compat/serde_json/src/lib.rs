//! Offline stand-in for the subset of `serde_json` this workspace uses: a
//! JSON [`Value`] tree, the [`json!`] macro for flat object literals, and the
//! [`to_string`] / [`to_string_pretty`] writers.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (unsigned, signed or floating point).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// JSON number, keeping integers exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point.
    F(f64),
}

/// Serialization error (never produced by this implementation; kept for
/// call-site signature compatibility).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::U(v as u64))
            }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::I(v as i64))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F(f64::from(v)))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from a flat object literal or a single expression.
///
/// Supported forms: `json!(null)`, `json!({ "key": expr, ... })` and
/// `json!(expr)` — the subset the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        // JSON has no NaN/Inf; serde_json writes null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_close) = match indent {
        Some(width) => (
            "\n",
            " ".repeat(width * (level + 1)),
            " ".repeat(width * level),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(out, item, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                escape_into(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

/// Serializes compactly.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    Ok(out)
}

/// Serializes with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the upstream signature.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_compact_output() {
        let v = json!({
            "name": "gk-means",
            "n": 100usize,
            "ratio": 0.5f64,
            "ok": true,
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"gk-means","n":100,"ratio":0.5,"ok":true}"#
        );
    }

    #[test]
    fn pretty_output_is_indented_and_ordered() {
        let v = json!({ "b": 1u32, "a": 2u32 });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"b\": 1,\n  \"a\": 2\n}");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "msg": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"msg":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }
}
