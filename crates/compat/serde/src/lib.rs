//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on configuration
//! types for forward compatibility; nothing routes those types through a
//! generic serializer (the single JSON emitter builds its document from
//! primitives via `serde_json::json!`).  The traits are therefore markers,
//! and the derive macros (re-exported from the `serde_derive` compat crate)
//! emit empty impls.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
