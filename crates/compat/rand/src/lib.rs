//! Offline, dependency-free stand-in for the subset of the `rand` crate API
//! this workspace uses.
//!
//! The build environment for this repository is fully air-gapped, so the real
//! `rand` crate cannot be fetched from a registry.  This crate provides a
//! compatible implementation of exactly the surface the workspace exercises:
//!
//! * [`Rng`] with `gen_range` (half-open and inclusive ranges over the common
//!   integer and float types), `gen::<T>()` and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`];
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — a high-quality, well-studied PRNG.  The *stream* differs from
//! upstream `rand`'s ChaCha-based `StdRng`, which is fine for this workspace:
//! every reproducibility contract here is "same seed ⇒ same result within this
//! codebase", never "bit-compatible with another library".

#![warn(missing_docs)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the full value domain via
/// [`Rng::gen`] (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws a value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                // Debiased multiply-shift (Lemire); span is always < 2^63 here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                start.wrapping_add((m >> 64) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample from empty range");
                if start == end {
                    return start;
                }
                // `end < MAX` in every workspace call; extend by one.
                Self::sample_half_open(start, end + 1, rng)
            }
        }
    )*};
}

int_sample_uniform!(usize, u8, u16, u32, u64, i32, i64);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample from empty range");
                let unit = <$t as Standard>::standard_sample(rng);
                start + (end - start) * unit
            }

            fn sample_inclusive<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::standard_sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random number generation methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws a value from the type's full domain (`Standard` distribution).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace-standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(0.9f32..=1.1);
            assert!((0.9..=1.1).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
