//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements a real (if simple) measurement loop: each benchmark is warmed
//! up for `warm_up_time`, then timed in batches until `measurement_time`
//! elapses, and the mean ns/iteration is printed in a criterion-like format.
//! No statistics beyond the mean, no HTML reports, no baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 0,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let group = self.benchmark_group("");
        let name = name.into();
        let mut bencher = Bencher {
            warm_up: group.warm_up,
            measurement: group.measurement,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        group.report(&name, &bencher);
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered through `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates the id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Accepted for compatibility; this implementation sizes batches by time,
    /// so the value only marks intent.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input` under the given id.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher, input);
        let id_text = id.text.clone();
        self.report(&id_text, &bencher);
        self
    }

    /// Benchmarks `f` under a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let name = name.into();
        self.report(&name, &bencher);
        self
    }

    /// Finishes the group (printing happens per benchmark; nothing to do).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        println!(
            "{full:<50} time: [{:>12.2} ns/iter]  ({} iterations)",
            bencher.result_ns, bencher.iters
        );
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` under the timing loop, recording mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also calibrating the batch size to ~1 ms per batch.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
            if elapsed < Duration::from_millis(1) && batch < 1 << 40 {
                batch *= 2;
            }
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.result_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Declares a function that runs each benchmark in sequence.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_a_positive_estimate() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        let mut measured = 0.0;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
            measured = b.result_ns;
        });
        group.finish();
        assert!(measured > 0.0);
    }
}
