//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Parallelism is real: work is split into contiguous chunks, one per worker
//! thread (`std::thread::scope`), and results are re-assembled in input order
//! so callers observe the same ordering guarantees as rayon's indexed
//! parallel iterators.  On a single-core host (or for tiny inputs) execution
//! simply stays on the calling thread.
//!
//! Supported surface: `par_iter()` on slices/`Vec`s, `into_par_iter()` on
//! `Range<usize>`, then `.map(...)` followed by `.collect()` or `.sum()`.

#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The common prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to use for `len` items.
fn workers_for(len: usize) -> usize {
    if len < 2 {
        return 1;
    }
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len)
}

/// Maps `f` over `items`, preserving order, using up to one thread per core.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers_for(items.len());
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            results.push(handle.join().expect("worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A materialized parallel iterator over `T` items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` (executed in parallel at the sink).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]: a pending parallel map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Runs the map and collects the results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map and sums the results.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<S>,
        F: Fn(T) -> S + Sync,
    {
        parallel_map(self.items, &self.f).into_iter().sum()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send + 'a;

    /// Returns a parallel iterator over shared references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter_sums() {
        let s: usize = (0..101usize).into_par_iter().map(|x| x).sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn slice_par_iter_works_through_vec_deref() {
        let nested: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![]];
        let lens: Vec<usize> = nested.par_iter().map(|v| v.len()).collect();
        assert_eq!(lens, vec![2, 1, 0]);
    }
}
