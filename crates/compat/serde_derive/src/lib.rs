//! Offline stand-in for `serde_derive`: derive macros that emit the marker
//! impls expected by the compat `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain configuration
//! structs and enums but never feeds them to a generic serializer (the only
//! JSON produced is built through `serde_json::json!` from primitive values),
//! so marker impls are sufficient.  The macro extracts the type name by
//! scanning the token stream — the derived types in this workspace carry no
//! generic parameters, which keeps that extraction trivial.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct` / `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tok in input {
        if let TokenTree::Ident(ident) = tok {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name");
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
