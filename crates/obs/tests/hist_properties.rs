//! Histogram correctness properties (ISSUE 10 satellite):
//!
//! * **merge equivalence** — `merge(snapshot_a, snapshot_b)` equals
//!   recording both sample streams into one histogram, for arbitrary
//!   streams spanning the full `u64` range;
//! * **bucket-boundary edge cases** — 0, `u64::MAX` and exact powers of
//!   two land in stable buckets whose bounds contain them;
//! * **concurrent-recorder consistency** — total count is conserved with
//!   8 threads hammering one histogram.

use obs::hist::{bucket_hi, bucket_index, bucket_lo, Histogram, N_BUCKETS};
use obs::HistogramSnapshot;
use proptest::prelude::*;

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Full-spread `u64` samples: uniform high bits shifted down a random
/// number of octaves, so every bucket of the log-linear layout gets
/// exercised (a plain uniform draw would live in the top few octaves).
fn wide_u64() -> impl Strategy<Value = u64> {
    (0u64..u64::MAX, 0usize..64).prop_map(|(v, s)| v >> s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Merging two snapshots is exactly recording both streams into one
    /// histogram: same buckets, same sum, same min/max — hence identical
    /// quantiles.
    #[test]
    fn merge_equals_recording_both_streams(
        a in proptest::collection::vec(wide_u64(), 0..200),
        b in proptest::collection::vec(wide_u64(), 0..200),
    ) {
        let mut merged = record_all(&a).snapshot();
        merged.merge(&record_all(&b).snapshot());

        let mut both = a.clone();
        both.extend_from_slice(&b);
        let combined = record_all(&both).snapshot();

        prop_assert_eq!(&merged, &combined);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), combined.quantile(q));
        }
    }

    /// Every value lands in a bucket whose `[lo, hi)` bound contains it
    /// (with `u64::MAX` allowed to sit on the last bucket's inclusive cap).
    #[test]
    fn bucket_bounds_contain_their_values(v in wide_u64()) {
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        prop_assert!(bucket_lo(i) <= v, "lo({}) must not exceed {}", i, v);
        if i + 1 < N_BUCKETS {
            prop_assert!(v < bucket_hi(i), "{} must fall below hi({})", v, i);
        } else {
            prop_assert!(v <= bucket_hi(i));
        }
    }

    /// Quantiles never step outside the recorded [min, max].
    #[test]
    fn quantiles_stay_inside_recorded_range(
        values in proptest::collection::vec(wide_u64(), 1..200),
        q in 0.0f64..1.0,
    ) {
        let s = record_all(&values).snapshot();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        for q in [q, 0.0, 1.0] {
            let got = s.quantile(q);
            prop_assert!(
                got >= min && got <= max,
                "quantile({}) = {} outside [{}, {}]", q, got, min, max
            );
        }
    }
}

#[test]
fn boundary_values_bucket_stably() {
    // 0 is exact; u64::MAX is the last bucket; each power of two ≥ 8 starts
    // a fresh bucket and its predecessor ends the previous one.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_lo(bucket_index(0)), 0);
    assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    for e in 3..64u32 {
        let p = 1u64 << e;
        assert_eq!(bucket_lo(bucket_index(p)), p, "2^{e} starts its bucket");
        assert_eq!(
            bucket_index(p - 1) + 1,
            bucket_index(p),
            "2^{e} − 1 ends the previous bucket"
        );
    }
}

#[test]
fn merging_with_empty_is_identity() {
    let values = [0u64, 1, 7, 8, 9, 1_000_000, u64::MAX];
    let mut s = record_all(&values).snapshot();
    let before = s.clone();
    s.merge(&HistogramSnapshot::empty());
    assert_eq!(s, before);

    let mut e = HistogramSnapshot::empty();
    e.merge(&before);
    assert_eq!(e, before);
}

#[test]
fn concurrent_recorders_conserve_total_count_at_8_threads() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    const THREADS: usize = 8;
    let h = Arc::new(Histogram::new());
    let recorded = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            let recorded = Arc::clone(&recorded);
            std::thread::spawn(move || {
                let mut x = (t as u64 + 1).wrapping_mul(0x2545_f491_4f6c_dd1d);
                let mut n = 0u64;
                for _ in 0..50_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    h.record(x >> (x % 64));
                    n += 1;
                }
                recorded.fetch_add(n, Ordering::SeqCst);
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(
        snap.count(),
        recorded.load(std::sync::atomic::Ordering::SeqCst),
        "total sample count must be conserved across 8 concurrent recorders"
    );
}
