//! Named instrument catalogue and its exposition renderers.
//!
//! The [`Registry`] holds `Arc`s to every registered instrument keyed by
//! name.  Its mutex guards **registration and snapshotting only** — the hot
//! path records through the `Arc`s it was handed at start-up and never
//! touches the lock, which is what keeps the instrumentation off the search
//! path's lock graph entirely.
//!
//! A [`RegistrySnapshot`] is plain data rendered three ways: Prometheus
//! text exposition (served by `serve --metrics-addr`), JSON (CLI
//! `stats --json`) and a human table (CLI `stats`).  All three render the
//! same snapshot, so the numbers can never disagree across surfaces.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::SlowQuery;

/// A monotonic counter (relaxed atomic increments).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A point-in-time signed gauge (relaxed atomic set/add).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    help: String,
    instrument: Instrument,
}

/// Named catalogue of instruments.  Lock taken only to register/snapshot.
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        // A panic while holding this lock cannot corrupt the map (inserts
        // are the only mutation); keep serving stats after one.
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers (or finds) a counter under `name`.  Registering the same
    /// name twice aliases one underlying counter; a kind clash panics — it
    /// is a programming error caught at start-up, never on the record path.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Counter(Arc::new(Counter::default())),
        });
        match &e.instrument {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or finds) a gauge under `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Gauge(Arc::new(Gauge::default())),
        });
        match &e.instrument {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or finds) a histogram under `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut entries = self.lock();
        let e = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            instrument: Instrument::Histogram(Arc::new(Histogram::new())),
        });
        match &e.instrument {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.lock();
        RegistrySnapshot {
            entries: entries
                .iter()
                .map(|(name, e)| SnapshotEntry {
                    name: name.clone(),
                    help: e.help.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One instrument's value inside a snapshot.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One named instrument inside a snapshot.
#[derive(Clone, Debug)]
pub struct SnapshotEntry {
    /// Metric name (`snake_case`, Prometheus-compatible).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// The captured value.
    pub value: MetricValue,
}

/// Point-in-time copy of a whole [`Registry`], ready to render.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Entries sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// Finds an entry by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Convenience: the value of a counter entry, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: the snapshot of a histogram entry, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition format (0.0.4).  Histograms render as
    /// summaries — `{quantile="…"}` series plus `_sum`/`_count`/`_max` —
    /// because fixed quantiles are what the latency gates consume.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                    out.push_str(&format!("# TYPE {} counter\n", e.name));
                    out.push_str(&format!("{} {}\n", e.name, v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                    out.push_str(&format!("# TYPE {} gauge\n", e.name));
                    out.push_str(&format!("{} {}\n", e.name, v));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                    out.push_str(&format!("# TYPE {} summary\n", e.name));
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{}{{quantile=\"{}\"}} {}\n",
                            e.name,
                            label,
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{}_sum {}\n", e.name, h.sum));
                    out.push_str(&format!("{}_count {}\n", e.name, h.count()));
                    out.push_str(&format!(
                        "{}_max {}\n",
                        e.name,
                        if h.count() == 0 { 0 } else { h.max }
                    ));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name.  Counters/gauges are numbers;
    /// histograms are objects with count/sum/min/max/p50/p90/p99.
    pub fn render_json(&self, slow: &[SlowQuery]) -> String {
        let mut out = String::from("{\n  \"metrics\": {");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": ", json_escape(&e.name)));
            match &e.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    let n = h.count();
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        n,
                        h.sum,
                        if n == 0 { 0 } else { h.min },
                        if n == 0 { 0 } else { h.max },
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                    ));
                }
            }
        }
        out.push_str("\n  },\n  \"slow_queries\": [");
        for (i, q) in slow.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"trace_id\": {}, \"queries\": {}, \"dim\": {}, \"r\": {}, \
                 \"nprobe\": {}, \"deadline_slack_nanos\": {}, \"queue_wait_nanos\": {}, \
                 \"route_nanos\": {}, \"scan_nanos\": {}, \"rerank_nanos\": {}, \
                 \"total_nanos\": {}}}",
                q.trace_id,
                q.queries,
                q.dim,
                q.r,
                q.nprobe,
                q.deadline_slack_nanos,
                q.timings.queue_wait_nanos,
                q.timings.route_nanos,
                q.timings.scan_nanos,
                q.timings.rerank_nanos,
                q.timings.total_nanos,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human-readable table: counters and gauges first, then histograms
    /// with their quantiles, then the slow-query log.
    pub fn render_human(&self, slow: &[SlowQuery]) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:width$}  {}\n", e.name, v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:width$}  {}\n", e.name, v));
                }
                MetricValue::Histogram(h) => {
                    let n = h.count();
                    out.push_str(&format!(
                        "{:width$}  count {}  p50 {}  p90 {}  p99 {}  max {}\n",
                        e.name,
                        n,
                        h.quantile(0.5),
                        h.quantile(0.9),
                        h.quantile(0.99),
                        if n == 0 { 0 } else { h.max },
                    ));
                }
            }
        }
        if slow.is_empty() {
            out.push_str("slow queries: none\n");
        } else {
            out.push_str(&format!("slow queries ({} most recent):\n", slow.len()));
            for q in slow {
                out.push_str(&format!(
                    "  trace {:#018x}: {} quer{} dim {} r {} nprobe {} — total {} ns \
                     (queue {} + route {} + scan {} + rerank {}), deadline slack {} ns\n",
                    q.trace_id,
                    q.queries,
                    if q.queries == 1 { "y" } else { "ies" },
                    q.dim,
                    q.r,
                    q.nprobe,
                    q.timings.total_nanos,
                    q.timings.queue_wait_nanos,
                    q.timings.route_nanos,
                    q.timings.scan_nanos,
                    q.timings.rerank_nanos,
                    q.deadline_slack_nanos,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StageTimings;

    #[test]
    fn registration_aliases_and_snapshot_reports() {
        let r = Registry::new();
        let c = r.counter("frames_total", "frames");
        c.add(5);
        r.counter("frames_total", "frames").inc();
        let g = r.gauge("depth", "queue depth");
        g.set(-3);
        let h = r.histogram("lat_nanos", "latency");
        h.record(10);
        h.record(20);

        let snap = r.snapshot();
        assert_eq!(snap.counter("frames_total"), Some(6));
        assert!(matches!(
            snap.get("depth").unwrap().value,
            MetricValue::Gauge(-3)
        ));
        assert_eq!(snap.histogram("lat_nanos").unwrap().count(), 2);
        // Sorted by name.
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics_at_registration() {
        let r = Registry::new();
        r.counter("x", "x");
        r.gauge("x", "x");
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let r = Registry::new();
        r.counter("a_total", "a counter").add(7);
        r.gauge("b", "a gauge").set(2);
        let h = r.histogram("c_nanos", "a histogram");
        for v in [5u64, 5, 5, 100] {
            h.record(v);
        }
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE a_total counter\na_total 7\n"));
        assert!(text.contains("# TYPE b gauge\nb 2\n"));
        assert!(text.contains("# TYPE c_nanos summary\n"));
        assert!(text.contains("c_nanos{quantile=\"0.5\"} 5\n"));
        assert!(text.contains("c_nanos_count 4\n"));
        assert!(text.contains("c_nanos_sum 115\n"));
        assert!(text.contains("c_nanos_max 100\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let r = Registry::new();
        r.counter("n_total", "n").add(3);
        r.histogram("h_nanos", "h").record(42);
        let slow = vec![SlowQuery {
            trace_id: 1,
            queries: 2,
            dim: 4,
            r: 10,
            nprobe: 3,
            deadline_slack_nanos: -5,
            timings: StageTimings {
                queue_wait_nanos: 1,
                route_nanos: 2,
                scan_nanos: 3,
                rerank_nanos: 4,
                total_nanos: 10,
            },
        }];
        let json = r.snapshot().render_json(&slow);
        assert!(json.contains("\"n_total\": 3"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"deadline_slack_nanos\": -5"));
        // Balanced braces/brackets (cheap structural check, no parser here).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn human_rendering_mentions_every_metric() {
        let r = Registry::new();
        r.counter("served_total", "served").add(1);
        r.histogram("lat", "lat").record(9);
        let text = r.snapshot().render_human(&[]);
        assert!(text.contains("served_total"));
        assert!(text.contains("lat"));
        assert!(text.contains("slow queries: none"));
    }
}
