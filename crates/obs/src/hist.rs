//! Log-linear bucketed histogram (HDR-style) over `u64` samples.
//!
//! Layout: values below 8 get one exact bucket each; every power-of-two
//! octave above that is split into 8 sub-buckets keyed by the top three
//! mantissa bits.  That bounds the relative quantile error at 12.5% across
//! the full `u64` range with a fixed 496-slot array — no allocation or
//! resizing on the record path, ever.
//!
//! Recording is four `Relaxed` atomic RMWs (bucket, sum, min, max).
//! Snapshots read the buckets without stopping writers, so a snapshot taken
//! mid-record may be a few samples behind a racing thread — but every sample
//! lands in exactly one bucket, so counts are conserved: the CI
//! concurrent-recorder test pins `count == samples recorded` after joining
//! the writers.
//!
//! [`HistogramSnapshot`]s are plain data and **mergeable**: merging two
//! snapshots is exactly equivalent to having recorded both sample streams
//! into one histogram (bucketing is deterministic per value), which is what
//! lets per-block search stats fold into one serving-level histogram without
//! any cross-thread coordination.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-buckets per power-of-two octave (8 ⇒ ≤ 12.5% relative error).
const SUB: usize = 8;
/// log2(SUB); values below `SUB` are bucketed exactly.
const SUB_BITS: u32 = 3;
/// Total bucket count: 8 exact + (63 − 3) octaves × 8 sub-buckets + the
/// final octave's 8 (indices for exponents 3..=63).
pub const N_BUCKETS: usize = SUB + (63 - SUB_BITS as usize) * SUB + SUB;

/// Maps a sample to its bucket index.  Total and deterministic: every `u64`
/// (including 0 and `u64::MAX`) lands in exactly one of the `N_BUCKETS`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (exp - SUB_BITS) as usize * SUB + sub
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    debug_assert!(i < N_BUCKETS);
    if i < SUB {
        i as u64
    } else {
        let octave = (i - SUB) / SUB;
        let sub = ((i - SUB) % SUB) as u64;
        (SUB as u64 + sub) << octave
    }
}

/// Exclusive upper bound of bucket `i` (`u64::MAX` for the last bucket,
/// whose single unrepresentable successor is irrelevant for quantiles).
pub fn bucket_hi(i: usize) -> u64 {
    if i + 1 < N_BUCKETS {
        bucket_lo(i + 1)
    } else {
        u64::MAX
    }
}

/// Representative value reported for samples in bucket `i`: exact below
/// `SUB`, the bucket midpoint above (halving the 12.5% width bound).
fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lo(i);
    if i < SUB {
        lo
    } else {
        lo + (bucket_hi(i) - lo) / 2
    }
}

/// Fixed-size concurrent histogram.  See the module docs for the layout and
/// cost model.
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; N_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is N_BUCKETS by construction"));
        Self {
            buckets,
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: four relaxed RMWs, no locking, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        // The sum wraps after ~584 years of nanosecond samples; quantiles
        // come from the buckets, so a wrapped mean is cosmetic.
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// A point-in-time copy of the bucket counts.  Concurrent writers keep
    /// going: the snapshot may lag racing records but never invents or loses
    /// a settled sample.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; N_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, and the source of every
/// quantile this crate reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`N_BUCKETS` entries).
    pub counts: Vec<u64>,
    /// Sum of all recorded samples (wrapping).
    pub sum: u64,
    /// Smallest recorded sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Folds `other` into `self`.  Equivalent to having recorded both
    /// streams into one histogram (the merge-equivalence proptest pins
    /// this).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`: exact for samples below 8,
    /// within ±6.25% above (bucket midpoint) and clamped into the recorded
    /// `[min, max]`; the extreme ranks report the recorded min/max exactly.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank of the q-th sample, 1-based, at least 1, at most total
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank >= total {
            return self.max;
        }
        if rank <= 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0 when empty; wraps with `sum`).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_monotone_and_self_consistent() {
        // Exact buckets below SUB.
        for v in 0..SUB as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
        // Boundaries: every bucket's lower bound maps back to that bucket,
        // and lower bounds strictly increase.
        for i in 0..N_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            if i + 1 < N_BUCKETS {
                assert!(bucket_lo(i) < bucket_lo(i + 1), "monotone at {i}");
                assert_eq!(bucket_index(bucket_lo(i + 1) - 1), i, "hi−1 of {i}");
            }
        }
        // Extremes.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        // Exact powers of two land on a sub-bucket boundary.
        for e in 3..64u32 {
            let v = 1u64 << e;
            assert_eq!(bucket_lo(bucket_index(v)), v, "2^{e} must start a bucket");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Midpoint reporting keeps any value within 1/16 of its bucket's
        // representative (above the exact range).
        for &v in &[8u64, 100, 1_000, 123_456_789, 1 << 40, u64::MAX / 3] {
            let m = bucket_mid(bucket_index(v)) as f64;
            let rel = (m - v as f64).abs() / v as f64;
            assert!(rel <= 1.0 / 16.0 + 1e-12, "v = {v}: rel err {rel}");
        }
    }

    #[test]
    fn quantiles_of_a_known_stream() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        assert!((450..=550).contains(&p50), "p50 = {p50}");
        let p99 = s.quantile(0.99);
        assert!((920..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000, "p100 clamps to the true max");
        assert_eq!(s.quantile(0.0), 1, "p0 clamps to the true min");
        assert_eq!(s.mean(), (1000 * 1001 / 2) / 1000);
    }

    #[test]
    fn empty_snapshot_is_harmless() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn extreme_values_record_and_report() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_recorders_conserve_every_sample() {
        use std::sync::Arc;
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    // Deterministic per-thread stream spanning many octaves.
                    let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..PER_THREAD {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        h.record(x >> (x % 50));
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(
            s.count(),
            THREADS as u64 * PER_THREAD,
            "every sample lands in exactly one bucket"
        );
    }
}
