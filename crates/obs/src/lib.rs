//! Hand-rolled, zero-dependency observability for the serving stack.
//!
//! The offline build environment rules out `prometheus` / `tracing` /
//! `metrics` crates (same constraint that produced `vecstore::checksum`), so
//! this crate provides the minimal production surface the ROADMAP's north
//! star needs, with the cost model the serving hot path demands:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — plain atomics, `Relaxed`
//!   ordering, fixed allocation.  Recording a histogram sample is four
//!   relaxed RMW operations on pre-allocated cache lines; no locking, no
//!   allocation, ever.
//! * [`Registry`] — a named catalogue of instruments.  The registry lock is
//!   taken **only at registration time** (server start-up) and at snapshot
//!   time (a stats request); the handles it returns are `Arc`s recorded into
//!   lock-free.
//! * [`ObsHandle`] — the pay-for-what-you-touch switch.  Components accept
//!   an `ObsHandle` and pre-register their instruments; when the handle is
//!   disabled every instrument handle is `None` and the record calls inline
//!   to a branch on a `None` — near-zero cost, verified by the CI
//!   instrumentation-overhead gate (`serve_latency` p50 within 5%).
//! * [`trace`] — cheap `u64` request trace IDs, per-stage timing carriers
//!   and a fixed-capacity ring buffer of slow queries
//!   ([`trace::SlowQueryLog`]).
//!
//! Metrics are a **side channel**: nothing in this crate feeds back into
//! search results, so the workspace's bit-identical-at-any-thread-count
//! guarantee is untouched by enabling them.

#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricValue, Registry, RegistrySnapshot};
pub use trace::{SlowQuery, SlowQueryLog, StageTimings};

use std::sync::Arc;

/// Default slow-query threshold: queries slower than this end-to-end land in
/// the slow-query ring buffer (25 ms — an order of magnitude above the
/// serving p99 in the benchmarks).
pub const DEFAULT_SLOW_QUERY_NANOS: u64 = 25_000_000;

/// Shared observability state: one registry of instruments plus the
/// slow-query ring buffer.  Wrapped in [`ObsHandle`] for distribution.
pub struct Obs {
    registry: Registry,
    slow_log: SlowQueryLog,
}

impl Obs {
    /// The instrument catalogue.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-query ring buffer.
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slow_log
    }
}

/// Cheaply-cloneable handle to the observability state, or a no-op stub.
///
/// Every instrumented component takes one of these at construction and
/// pre-registers the instruments it will record into.  A disabled handle
/// hands out `None` instrument handles whose record methods compile to a
/// single branch, so untouched deployments pay (almost) nothing.
#[derive(Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<Obs>>,
}

impl ObsHandle {
    /// A no-op handle: every instrument it hands out discards its samples.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle with a fresh registry and the default slow-query
    /// threshold.
    pub fn enabled() -> Self {
        Self::with_slow_threshold(DEFAULT_SLOW_QUERY_NANOS)
    }

    /// A live handle whose slow-query ring buffer admits queries slower than
    /// `threshold_nanos` end-to-end.
    pub fn with_slow_threshold(threshold_nanos: u64) -> Self {
        Self {
            inner: Some(Arc::new(Obs {
                registry: Registry::new(),
                slow_log: SlowQueryLog::new(trace::SLOW_LOG_CAPACITY, threshold_nanos),
            })),
        }
    }

    /// `true` when instruments actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying state, when enabled.
    pub fn obs(&self) -> Option<&Arc<Obs>> {
        self.inner.as_ref()
    }

    /// Registers (or finds) a monotonic counter.  Disabled handles return a
    /// no-op counter handle.
    pub fn counter(&self, name: &str, help: &str) -> CounterHandle {
        CounterHandle(self.inner.as_ref().map(|o| o.registry.counter(name, help)))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeHandle {
        GaugeHandle(self.inner.as_ref().map(|o| o.registry.gauge(name, help)))
    }

    /// Registers (or finds) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramHandle {
        HistogramHandle(
            self.inner
                .as_ref()
                .map(|o| o.registry.histogram(name, help)),
        )
    }

    /// Offers a completed query to the slow-query ring buffer (admitted when
    /// its total latency crosses the configured threshold).
    pub fn observe_slow(&self, q: SlowQuery) {
        if let Some(o) = &self.inner {
            o.slow_log.observe(q);
        }
    }

    /// A point-in-time snapshot of every registered instrument, or `None`
    /// when disabled.
    pub fn snapshot(&self) -> Option<RegistrySnapshot> {
        self.inner.as_ref().map(|o| o.registry.snapshot())
    }
}

/// A pre-registered counter, or a no-op when observability is disabled.
#[derive(Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.get())
    }
}

/// A pre-registered gauge, or a no-op when observability is disabled.
#[derive(Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.add(delta);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// A pre-registered histogram, or a no-op when observability is disabled.
#[derive(Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        if let Some(h) = &self.0 {
            h.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// `true` when samples actually land somewhere — lets callers skip the
    /// `Instant::now()` pair entirely on the disabled path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// A snapshot of the underlying histogram (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |h| h.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter("x_total", "x");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 0);
        let g = obs.gauge("g", "g");
        g.set(9);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = obs.histogram("h_nanos", "h");
        assert!(!h.is_enabled());
        h.record(123);
        assert_eq!(h.snapshot().count(), 0);
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn enabled_handles_record_and_share_state() {
        let obs = ObsHandle::enabled();
        let c1 = obs.counter("req_total", "requests");
        let c2 = obs.counter("req_total", "requests");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4, "same name must alias the same counter");

        let h = obs.histogram("lat_nanos", "latency");
        assert!(h.is_enabled());
        h.record(1000);
        h.record_duration(std::time::Duration::from_nanos(2000));
        let snap = obs.snapshot().unwrap();
        let hist = snap
            .entries
            .iter()
            .find(|e| e.name == "lat_nanos")
            .expect("registered");
        match &hist.value {
            MetricValue::Histogram(s) => assert_eq!(s.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn slow_queries_respect_the_threshold() {
        let obs = ObsHandle::with_slow_threshold(1_000);
        let mut q = SlowQuery {
            trace_id: 7,
            queries: 1,
            dim: 8,
            r: 10,
            nprobe: 4,
            deadline_slack_nanos: 500,
            timings: StageTimings::default(),
        };
        q.timings.total_nanos = 999;
        obs.observe_slow(q.clone());
        q.timings.total_nanos = 1_000;
        obs.observe_slow(q);
        let log = obs.obs().unwrap().slow_log();
        assert_eq!(log.recent().len(), 1, "only the at-threshold query lands");
        assert_eq!(log.recent()[0].trace_id, 7);
    }
}
