//! Request tracing: cheap `u64` trace IDs, per-stage timing carriers and
//! the slow-query ring buffer.
//!
//! A trace ID is minted by the **client** (or the CLI) and carried through
//! the GKSQ `TracedSearch` frame, the batcher's pending entry and back in
//! the `TracedResponse` — the server never allocates per-request trace
//! state, it just copies eight bytes along the existing path.  Stage
//! timings are measured where each stage already lives (queue-wait in the
//! batcher, route/scan/re-rank inside the IVF search via
//! `IvfSearchStats`), so tracing adds no new synchronization.
//!
//! The slow-query log is a fixed-capacity ring under a mutex.  That mutex
//! is **off the search path**: it is taken only after a batch completes and
//! only for queries that crossed the slowness threshold — by construction a
//! rare event, or the threshold is misconfigured.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Capacity of the slow-query ring buffer.
pub const SLOW_LOG_CAPACITY: usize = 64;

/// Process-wide trace-ID source: unique within a process, cheap, and
/// mixed so consecutive IDs don't collide across restarts in logs.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(0);

/// Mints a fresh non-zero trace ID (0 is reserved for "untraced").
pub fn next_trace_id() -> u64 {
    // SplitMix64 over a process-unique counter seeded from the clock once:
    // IDs stay unique per process and unlikely to collide across processes.
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Relaxed);
    if seed == 0 {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        // First writer wins; a race just means both used the same seed,
        // which is fine — the counter below still disambiguates.
        let _ = SEED.compare_exchange(0, t | 1, Relaxed, Relaxed);
        seed = SEED.load(Relaxed);
    }
    loop {
        let n = NEXT_TRACE.fetch_add(1, Relaxed);
        let mut z = n.wrapping_add(seed).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

/// Per-stage wall-clock nanoseconds for one traced request.
///
/// `queue_wait` is measured by the batcher (enqueue → dequeue); `route`,
/// `scan` and `rerank` come from the IVF search stats of the batch the
/// request rode in (batch-level, attributed to every traced request in the
/// batch); `total` is enqueue → reply.  For a lone request in its batch the
/// stage sum approximates the total (the e2e trace test pins this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Enqueue → dequeue in the batcher.
    pub queue_wait_nanos: u64,
    /// Coarse routing: query-to-centroid distances + probe selection.
    pub route_nanos: u64,
    /// Inverted-list scan (f32 panels or SQ8 codes + append regions).
    pub scan_nanos: u64,
    /// Exact re-rank of SQ8 survivors (0 on the f32 path).
    pub rerank_nanos: u64,
    /// Enqueue → reply, as observed by the batcher.
    pub total_nanos: u64,
}

impl StageTimings {
    /// Sum of the measured stages (everything but `total_nanos`).
    pub fn stage_sum(&self) -> u64 {
        self.queue_wait_nanos
            .saturating_add(self.route_nanos)
            .saturating_add(self.scan_nanos)
            .saturating_add(self.rerank_nanos)
    }
}

/// One slow query captured by the ring buffer: its shape, search knobs,
/// deadline slack at completion (negative ⇒ the deadline had passed) and
/// stage timings.
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The request's trace ID (0 when the client did not trace it).
    pub trace_id: u64,
    /// Number of query vectors in the request.
    pub queries: u32,
    /// Vector dimensionality.
    pub dim: u32,
    /// Neighbours requested.
    pub r: u16,
    /// Probe width used.
    pub nprobe: u16,
    /// Deadline minus completion time, nanoseconds (negative ⇒ late).
    pub deadline_slack_nanos: i64,
    /// Where the time went.
    pub timings: StageTimings,
}

/// Fixed-capacity ring of the most recent slow queries.
pub struct SlowQueryLog {
    capacity: usize,
    threshold_nanos: u64,
    ring: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A ring holding at most `capacity` entries, admitting queries whose
    /// total latency is ≥ `threshold_nanos`.
    pub fn new(capacity: usize, threshold_nanos: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            threshold_nanos,
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// The admission threshold in nanoseconds.
    pub fn threshold_nanos(&self) -> u64 {
        self.threshold_nanos
    }

    /// Offers a completed query; admitted (evicting the oldest entry at
    /// capacity) when `timings.total_nanos >= threshold`.
    pub fn observe(&self, q: SlowQuery) {
        if q.timings.total_nanos < self.threshold_nanos {
            return;
        }
        let mut ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(q);
    }

    /// The retained entries, oldest first.
    pub fn recent(&self) -> Vec<SlowQuery> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id:#x}");
        }
    }

    fn slow(total: u64) -> SlowQuery {
        SlowQuery {
            trace_id: total,
            queries: 1,
            dim: 1,
            r: 1,
            nprobe: 1,
            deadline_slack_nanos: 0,
            timings: StageTimings {
                total_nanos: total,
                ..StageTimings::default()
            },
        }
    }

    #[test]
    fn ring_admits_by_threshold_and_evicts_oldest() {
        let log = SlowQueryLog::new(3, 100);
        log.observe(slow(99)); // below threshold: dropped
        for t in [100, 200, 300, 400] {
            log.observe(slow(t));
        }
        let got: Vec<u64> = log.recent().iter().map(|q| q.trace_id).collect();
        assert_eq!(got, vec![200, 300, 400], "oldest evicted, order kept");
        assert_eq!(log.threshold_nanos(), 100);
    }

    #[test]
    fn stage_sum_saturates() {
        let t = StageTimings {
            queue_wait_nanos: u64::MAX,
            route_nanos: 1,
            scan_nanos: 1,
            rerank_nanos: 1,
            total_nanos: 0,
        };
        assert_eq!(t.stage_sum(), u64::MAX);
    }
}
