//! Online (incremental) GK-means — the paper's future-work direction.
//!
//! The conclusion of the paper frames the intertwined graph/clustering
//! evolution as a general unsupervised-learning loop it intends to extend.
//! This module implements the natural incremental version of that loop: after
//! an initial [`crate::pipeline::GkMeansPipeline`] run, new samples can be
//! inserted one at a time —
//!
//! 1. the existing graph is searched greedily for the new sample's κ nearest
//!    neighbours (the same "neighbours tell you the candidate clusters" idea
//!    as Alg. 2, applied at insertion time);
//! 2. the sample joins the candidate cluster with the highest `ΔI` gain
//!    (Eqn. 3 with an empty removal term, since the sample is new);
//! 3. the graph gains a node linked to the discovered neighbours, so later
//!    insertions and refinement passes see it.
//!
//! Periodically calling [`OnlineGkMeans::refine`] runs ordinary graph-guided
//! boost-k-means epochs over everything inserted so far, which keeps the
//! partition close to what a batch re-run would produce (the test below
//! checks exactly that).

use rand::Rng;

use knn_graph::{KnnGraph, Neighbor};
use vecstore::distance::l2_sq;
use vecstore::sample::{rng_from_seed, shuffled_order};
use vecstore::VectorSet;

use baselines::common::average_distortion;

use crate::params::GkParams;
use crate::pipeline::GkMeansPipeline;
use crate::state::ClusterState;

/// Incrementally maintained GK-means clustering: owned data, cluster state
/// and KNN graph that grow together as samples are inserted.
#[derive(Clone, Debug)]
pub struct OnlineGkMeans {
    params: GkParams,
    data: VectorSet,
    state: ClusterState,
    graph: KnnGraph,
    rng_seed: u64,
    inserted_since_refine: usize,
}

impl OnlineGkMeans {
    /// Bootstraps the online clustering from an initial batch: runs the
    /// two-phase pipeline (Alg. 3 + Alg. 2) on `initial` and keeps the data,
    /// labels and graph for incremental growth.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid for `(initial.len(), k)`.
    pub fn initialize(initial: VectorSet, k: usize, params: GkParams) -> Self {
        let outcome = GkMeansPipeline::new(params).cluster(&initial, k);
        let state = ClusterState::from_labels(&initial, outcome.clustering.labels, k);
        Self {
            params,
            data: initial,
            state,
            graph: outcome.graph,
            // fixed salt so the online RNG stream never collides with the
            // batch pipeline's derived seeds
            rng_seed: params.seed ^ 0x_051a_17e5_u64,
            inserted_since_refine: 0,
        }
    }

    /// Number of samples currently tracked.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no samples are tracked (never the case after
    /// [`OnlineGkMeans::initialize`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.state.k()
    }

    /// Current cluster label of every sample, in insertion order.
    pub fn labels(&self) -> &[usize] {
        self.state.labels()
    }

    /// Current centroids (`k × d`).
    pub fn centroids(&self) -> VectorSet {
        self.state.centroids()
    }

    /// The maintained KNN graph (grows with every insertion).
    pub fn graph(&self) -> &KnnGraph {
        &self.graph
    }

    /// Average distortion of the current partition (Eqn. 4).
    pub fn distortion(&self) -> f64 {
        average_distortion(&self.data, self.state.labels(), &self.state.centroids())
    }

    /// Inserts one sample and returns its assigned cluster.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not match the dataset's dimensionality.
    pub fn insert(&mut self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.data.dim(), "sample dimensionality mismatch");
        let kappa = self.params.kappa.max(1);
        let neighbours = self.greedy_knn(x, kappa);

        // Candidate clusters = clusters of the discovered neighbours (Alg. 2
        // line 7–11, applied to a brand-new sample whose removal term is 0).
        let mut best_cluster = None;
        let mut best_gain = f64::NEG_INFINITY;
        let mut seen: Vec<usize> = Vec::with_capacity(kappa);
        for nb in &neighbours {
            let c = self.state.label(nb.id as usize);
            if seen.contains(&c) {
                continue;
            }
            seen.push(c);
            let gain = self.state.addition_part(x, c);
            if gain > best_gain {
                best_gain = gain;
                best_cluster = Some(c);
            }
        }
        // Fallback (empty graph neighbourhood, e.g. κ larger than the data):
        // nearest centroid over all clusters.
        let cluster = best_cluster.unwrap_or_else(|| {
            let centroids = self.state.centroids();
            (0..self.state.k())
                .min_by(|&a, &b| {
                    l2_sq(x, centroids.row(a))
                        .partial_cmp(&l2_sq(x, centroids.row(b)))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0)
        });

        // Grow data, state and graph.
        self.data
            .push_row(x)
            .expect("dimensionality already checked");
        let new_id = self.state.push_sample(x, cluster);
        let node = self.graph.add_node();
        debug_assert_eq!(node, new_id);
        for nb in &neighbours {
            self.graph.update_pair(node, nb.id as usize, nb.dist);
        }
        self.inserted_since_refine += 1;
        cluster
    }

    /// Inserts a batch of samples, returning their assigned clusters.
    pub fn insert_batch(&mut self, batch: &VectorSet) -> Vec<usize> {
        (0..batch.len())
            .map(|i| self.insert(batch.row(i)))
            .collect()
    }

    /// Number of samples inserted since the last [`OnlineGkMeans::refine`]
    /// call (a convenient trigger for periodic refinement).
    pub fn pending_refinement(&self) -> usize {
        self.inserted_since_refine
    }

    /// Runs `epochs` graph-guided boost-k-means epochs over the full dataset
    /// (Alg. 2 with the maintained graph), returning the number of moves
    /// applied.  This is the periodic "catch-up" pass that keeps the online
    /// partition close to a batch re-clustering.
    pub fn refine(&mut self, epochs: usize) -> usize {
        let mut rng = rng_from_seed(self.rng_seed ^ self.data.len() as u64);
        let kappa = self.params.kappa.min(self.graph.k().max(1));
        let mut total_moves = 0usize;
        let mut candidates: Vec<usize> = Vec::with_capacity(kappa + 1);
        for _ in 0..epochs {
            let order = shuffled_order(&mut rng, self.data.len());
            let mut moves = 0usize;
            for &i in &order {
                let u = self.state.label(i);
                if self.state.size(u) <= 1 {
                    continue;
                }
                candidates.clear();
                for nb in self.graph.neighbors(i).as_slice().iter().take(kappa) {
                    let c = self.state.label(nb.id as usize);
                    if c != u && !candidates.contains(&c) {
                        candidates.push(c);
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let x = self.data.row(i).to_vec();
                let removal = self.state.removal_part(i, &x);
                let mut best_v = u;
                let mut best_delta = 0.0f64;
                for &v in &candidates {
                    let delta = removal + self.state.addition_part(&x, v);
                    if delta > best_delta {
                        best_delta = delta;
                        best_v = v;
                    }
                }
                if best_v != u && best_delta > 0.0 {
                    self.state.apply_move(i, &x, best_v);
                    moves += 1;
                }
            }
            total_moves += moves;
            if moves == 0 {
                break;
            }
        }
        self.inserted_since_refine = 0;
        total_moves
    }

    /// Greedy best-first search over the maintained graph for the κ nearest
    /// existing samples of `x`.
    fn greedy_knn(&self, x: &[f32], kappa: usize) -> Vec<Neighbor> {
        let n = self.data.len();
        if n == 0 {
            return Vec::new();
        }
        let ef = (kappa * 4).max(16).min(n);
        let mut rng = rng_from_seed(self.rng_seed ^ (n as u64).rotate_left(17));
        let mut pool: Vec<Neighbor> = Vec::with_capacity(ef + 1);
        let mut visited = vec![false; n];
        // A generous number of random entry points: the Alg. 3 graph of a
        // strongly clustered dataset can be disconnected across clusters, and
        // greedy expansion never leaves the component an entry landed in, so
        // the seeds must cover the components.  64 extra distance evaluations
        // per insertion are negligible next to the search itself.
        let entries = 64usize.clamp(1, n);
        for _ in 0..entries {
            let id = rng.gen_range(0..n);
            if visited[id] {
                continue;
            }
            visited[id] = true;
            insert_bounded(
                &mut pool,
                Neighbor::new(id as u32, l2_sq(x, self.data.row(id))),
                ef,
            );
        }
        let mut expanded: Vec<u32> = Vec::with_capacity(ef);
        loop {
            let next = pool.iter().find(|c| !expanded.contains(&c.id)).copied();
            let Some(candidate) = next else { break };
            expanded.push(candidate.id);
            if pool.len() >= ef && candidate.dist > pool[pool.len() - 1].dist {
                break;
            }
            for nb in self.graph.neighbors(candidate.id as usize).as_slice() {
                let id = nb.id as usize;
                if visited[id] {
                    continue;
                }
                visited[id] = true;
                insert_bounded(
                    &mut pool,
                    Neighbor::new(nb.id, l2_sq(x, self.data.row(id))),
                    ef,
                );
            }
        }
        pool.truncate(kappa);
        pool
    }
}

/// Inserts into an ascending-by-distance pool bounded to `cap` entries.
fn insert_bounded(pool: &mut Vec<Neighbor>, cand: Neighbor, cap: usize) {
    if pool.iter().any(|n| n.id == cand.id) {
        return;
    }
    if pool.len() >= cap {
        if let Some(worst) = pool.last() {
            if cand.dist >= worst.dist {
                return;
            }
        }
    }
    let pos = pool.partition_point(|n| (n.dist, n.id) < (cand.dist, cand.id));
    pool.insert(pos, cand);
    if pool.len() > cap {
        pool.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blobs(per: usize, groups: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(per * groups);
        for g in 0..groups {
            for _ in 0..per {
                let mut row = Vec::with_capacity(dim);
                for d in 0..dim {
                    row.push(((g * 3 + d) % 7) as f32 * 10.0 + rng.gen_range(-0.5..0.5));
                }
                rows.push(row);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    fn params() -> GkParams {
        GkParams::default()
            .kappa(8)
            .xi(20)
            .tau(4)
            .iterations(8)
            .seed(3)
            .record_trace(false)
    }

    #[test]
    fn initialize_matches_batch_pipeline_output_shape() {
        let data = blobs(60, 5, 4, 1);
        let online = OnlineGkMeans::initialize(data.clone(), 5, params());
        assert_eq!(online.len(), data.len());
        assert_eq!(online.k(), 5);
        assert_eq!(online.labels().len(), data.len());
        assert_eq!(online.graph().len(), data.len());
        assert!(online.distortion().is_finite());
    }

    #[test]
    fn inserted_samples_join_the_right_blob() {
        let data = blobs(60, 4, 4, 2);
        let mut online = OnlineGkMeans::initialize(data, 4, params());
        let before = online.len();

        // Insert points that sit exactly on the latent blob centres; each must
        // join the cluster that already dominates that blob.
        let probe = blobs(1, 4, 4, 99);
        let assigned = online.insert_batch(&probe);
        assert_eq!(online.len(), before + 4);
        assert_eq!(assigned.len(), 4);
        for (g, &cluster) in assigned.iter().enumerate() {
            // the assigned cluster's centroid must be closer to this probe
            // than the average inter-blob distance
            let centroids = online.centroids();
            let d = l2_sq(probe.row(g), centroids.row(cluster));
            assert!(d < 50.0, "probe {g} landed {d} away from its centroid");
        }
        // graph gained nodes with neighbours
        assert!(!online.graph().neighbors(before).is_empty());
        assert_eq!(online.pending_refinement(), 4);
    }

    #[test]
    fn refine_after_inserts_recovers_batch_quality() {
        let initial = blobs(50, 5, 4, 3);
        let extra = blobs(20, 5, 4, 4);
        let mut online = OnlineGkMeans::initialize(initial.clone(), 5, params());
        online.insert_batch(&extra);
        let before = online.distortion();
        online.refine(6);
        let after = online.distortion();
        assert!(after <= before + 1e-9, "refine must not worsen distortion");
        assert_eq!(online.pending_refinement(), 0);

        // Compare with a batch run over the union: the online result should be
        // in the same ballpark (within 25%) after refinement.
        let mut union = initial;
        for i in 0..extra.len() {
            union.push_row(extra.row(i)).unwrap();
        }
        let batch = GkMeansPipeline::new(params()).cluster(&union, 5);
        let batch_e = average_distortion(
            &union,
            &batch.clustering.labels,
            &batch.clustering.centroids,
        );
        assert!(
            after <= batch_e * 1.25 + 1e-9,
            "online {after} vs batch {batch_e}"
        );
    }

    #[test]
    fn labels_stay_valid_after_many_single_inserts() {
        let data = blobs(40, 3, 3, 5);
        let mut online = OnlineGkMeans::initialize(data, 3, params());
        let mut rng = rng_from_seed(7);
        for _ in 0..50 {
            let x: Vec<f32> = (0..3).map(|_| rng.gen_range(-5.0..25.0)).collect();
            let c = online.insert(&x);
            assert!(c < online.k());
        }
        assert_eq!(online.labels().len(), 40 * 3 + 50);
        assert_eq!(online.graph().len(), online.len());
        let sizes: Vec<usize> = {
            let mut s = vec![0usize; online.k()];
            for &l in online.labels() {
                s[l] += 1;
            }
            s
        };
        assert_eq!(sizes.iter().sum::<usize>(), online.len());
    }

    #[test]
    #[should_panic(expected = "sample dimensionality mismatch")]
    fn wrong_dimensionality_panics() {
        let data = blobs(30, 3, 3, 9);
        let mut online = OnlineGkMeans::initialize(data, 3, params());
        let _ = online.insert(&[1.0, 2.0]);
    }
}
