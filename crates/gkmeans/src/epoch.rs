//! Threaded epoch engine for the GK-means iteration (Alg. 2).
//!
//! The paper's measured loop is single-threaded and order-dependent: boost
//! moves are applied one sample at a time, and every decision reads state
//! (composite vectors, sizes, labels) left behind by the previous one.  This
//! module parallelises both optimisation modes **without changing a single
//! output bit**, FastGraph-style (see PAPERS.md): the expensive part of each
//! decision is computed ahead of time as a *message*, and a cheap sequential
//! phase replays the paper's exact visit order, committing messages that are
//! still valid and recomputing the few that are not.
//!
//! Concretely, an epoch is cut into **delta-batched rounds**:
//!
//! 1. *Parallel scoring* — row blocks of the next `threads ×
//!    BATCH_PER_THREAD` samples in the (shuffled, for boost) visit order
//!    score their κ-candidate gains against a state snapshot through the
//!    existing indexed-gather kernels, emitting one decomposed `ΔI` message
//!    per sample: the folded decision plus its removal part and
//!    per-candidate addition gains.
//! 2. *Sequential conflict-resolving apply* — samples are visited in the
//!    same order the single-threaded loop would use, with three tiers.
//!    When nothing an earlier move of the *same round* modified can reach
//!    the decision (own cluster and all candidate clusters untouched, no κ
//!    graph neighbour moved), the folded decision commits untouched — its
//!    inputs equal what the sequential loop would have read, so the values
//!    are bit-equal.  When some candidate clusters were modified but the
//!    candidate set itself is intact (no neighbour moved), only those
//!    clusters' gains (and the removal part, if the own cluster changed) are
//!    re-scored and the fold is replayed over the repaired components.  Only
//!    when a κ-neighbour moved within the round — the candidate set may
//!    differ — is the full sequential decision redone from current state.
//!
//! Because staleness is detected (cluster/sample generation stamps) rather
//! than assumed away, the result is bit-identical to the sequential loop *by
//! construction* — for any batch size and any thread count — and
//! `distance_evals` counts only the apply-phase decisions, i.e. exactly what
//! the paper's cost model counts.  Moves are rare after the first epochs, so
//! in steady state ~all distance work runs in the parallel phase and the
//! apply phase degenerates to generation-stamp probes.
//!
//! The traditional mode (GK-means⁻) batches the same way against the epoch's
//! fixed centroids and additionally **fuses the centroid update** into the
//! apply phase: each sample's row is accumulated into its winning cluster's
//! `f64` sum the moment it is assigned, so the batch update at the end of the
//! epoch is a division, not a second pass over the data.

use knn_graph::KnnGraph;
use vecstore::kernels;
use vecstore::parallel::run_blocks;
use vecstore::VectorSet;

use baselines::common::CentroidAccumulator;

use crate::state::ClusterState;

/// Epochs between [`ClusterState::refresh_norm_cache`] calls in long boost
/// runs.  The cached `‖D_r‖²` values drift by accumulated rounding across
/// millions of incremental `O(d)` updates; recomputing them from the `f64`
/// composite vectors every fixed number of epochs bounds that drift without
/// measurable cost (one `O(k·d)` pass per interval).  The schedule is fixed,
/// so it is identical at every thread count.
pub const NORM_REFRESH_INTERVAL: usize = 16;

/// Samples scored per delta-batched round and worker thread.  Each round is
/// one wake/park cycle of the resident worker pool
/// ([`vecstore::parallel::WorkerPool`]), so this is the main overhead lever:
/// larger rounds amortise the round barrier further but let more moves
/// accumulate against the snapshot.  Staleness is repaired per *component*
/// (only the touched candidates' gains are re-scored), so larger rounds cost
/// little rework; determinism is unaffected either way.
const BATCH_PER_THREAD: usize = 1024;

/// Samples per parallel scoring work item (block of the round's batch).
const SCORE_BLOCK: usize = 64;

/// One sample's message from the parallel scoring phase of a boost round:
/// the folded decision, its `ΔI` decomposition (removal part plus, in the
/// round's shared flat buffers, the snapshot candidate set and per-candidate
/// addition gains).  The apply phase commits the folded decision untouched
/// when nothing this round's earlier moves modified can reach it, repairs
/// individual components when they can, and falls back to the full
/// sequential decision only when the candidate set itself may have changed —
/// every reused value provably equals what the sequential loop would have
/// computed, so the committed decision is bit-identical.
#[derive(Clone, Copy)]
struct Proposal {
    /// `false` when the snapshot skipped the sample (singleton cluster or no
    /// foreign candidate clusters).
    scored: bool,
    /// Best destination cluster of the snapshot fold.
    best_v: u32,
    /// `ΔI` of the snapshot fold (`0.0` when staying is best).
    best_delta: f64,
    /// Removal part of `ΔI` (valid when `scored`).
    removal: f64,
    /// Offset of the candidate/gain run in the round's flat buffers.
    offset: u32,
    /// Number of candidates scored.
    len: u32,
}

const SKIPPED: Proposal = Proposal {
    scored: false,
    best_v: 0,
    best_delta: 0.0,
    removal: 0.0,
    offset: 0,
    len: 0,
};

/// One scoring block's output: proposals with block-local offsets into the
/// block's own candidate/gain buffers (rebased when blocks are concatenated
/// in batch order).
struct BlockScore {
    proposals: Vec<Proposal>,
    candidates: Vec<u32>,
    gains: Vec<f64>,
}

/// Scores one block of the round's batch against the snapshot state: Alg. 2
/// lines 7–12 per sample, emitting the decomposed `ΔI` message.
fn score_boost_block(
    data: &VectorSet,
    graph: &KnnGraph,
    kappa: usize,
    state: &ClusterState,
    batch: &[usize],
) -> BlockScore {
    let mut out = BlockScore {
        proposals: Vec::with_capacity(batch.len()),
        candidates: Vec::new(),
        gains: Vec::new(),
    };
    let mut scratch: Vec<usize> = Vec::with_capacity(kappa + 1);
    let mut gains: Vec<f64> = Vec::with_capacity(kappa + 1);
    for &i in batch {
        let u = state.label(i);
        if state.size(u) <= 1 {
            out.proposals.push(SKIPPED);
            continue;
        }
        scratch.clear();
        for nb in graph.neighbors(i).as_slice().iter().take(kappa) {
            let c = state.label(nb.id as usize);
            if c != u && !scratch.contains(&c) {
                scratch.push(c);
            }
        }
        if scratch.is_empty() {
            out.proposals.push(SKIPPED);
            continue;
        }
        let x = data.row(i);
        let removal = state.removal_part(i, x);
        gains.resize(scratch.len(), 0.0);
        state.addition_parts(x, &scratch, &mut gains);
        let mut best_v = u;
        let mut best_delta = 0.0f64;
        for (&v, &gain) in scratch.iter().zip(gains.iter()) {
            let delta = removal + gain;
            if delta > best_delta {
                best_delta = delta;
                best_v = v;
            }
        }
        out.proposals.push(Proposal {
            scored: true,
            best_v: best_v as u32,
            best_delta,
            removal,
            offset: out.candidates.len() as u32,
            len: scratch.len() as u32,
        });
        out.candidates.extend(scratch.iter().map(|&c| c as u32));
        out.gains.extend_from_slice(&gains[..scratch.len()]);
    }
    out
}

/// Boost-mode epoch engine (Alg. 2 with incremental `ΔI` moves).
///
/// Owns the cross-epoch scratch (proposals, generation stamps) so an entire
/// `fit` run allocates it once.  `threads <= 1` runs the paper's sequential
/// loop directly; `threads > 1` runs the delta-batched rounds described in
/// the [module docs](self) — both produce bit-identical labels, centroids,
/// trace and `distance_evals`.
pub struct BoostEpochEngine<'a> {
    data: &'a VectorSet,
    graph: &'a KnnGraph,
    kappa: usize,
    threads: usize,
    /// Generation stamp of the last round that modified each cluster.
    touched: Vec<u64>,
    /// Generation stamp of the last round in which each sample moved.
    moved: Vec<u64>,
    generation: u64,
    proposals: Vec<Proposal>,
    /// Flat candidate runs of the current round's proposals.
    round_candidates: Vec<u32>,
    /// Flat addition-gain runs matching `round_candidates`.
    round_gains: Vec<f64>,
    candidates: Vec<usize>,
    gains: Vec<f64>,
}

impl<'a> BoostEpochEngine<'a> {
    /// Creates an engine for clustering `data` into `k` clusters guided by
    /// `graph`, consulting `kappa` neighbours per sample, on `threads`
    /// workers (1 = the paper's sequential loop).
    pub fn new(
        data: &'a VectorSet,
        graph: &'a KnnGraph,
        kappa: usize,
        threads: usize,
        k: usize,
    ) -> Self {
        Self {
            data,
            graph,
            kappa,
            threads,
            touched: vec![0; k],
            moved: vec![0; data.len()],
            generation: 0,
            proposals: Vec::new(),
            round_candidates: Vec::new(),
            round_gains: Vec::new(),
            candidates: Vec::with_capacity(kappa + 1),
            gains: Vec::with_capacity(kappa + 1),
        }
    }

    /// Runs one epoch over `order` (the epoch's shuffled visit order),
    /// applying moves to `state` and counting the paper's cost model into
    /// `distance_evals`.  Returns the number of moves applied.
    pub fn run_epoch(
        &mut self,
        state: &mut ClusterState,
        order: &[usize],
        distance_evals: &mut u64,
    ) -> usize {
        if self.threads <= 1 {
            self.run_epoch_sequential(state, order, distance_evals)
        } else {
            self.run_epoch_batched(state, order, distance_evals)
        }
    }

    /// The full Alg. 2 per-sample decision against the *current* state
    /// (lines 7–12): singleton guard, candidate collection, `ΔI` scoring and
    /// fold.  Returns `None` when the sample is skipped (singleton cluster or
    /// no foreign candidates), otherwise `(best_v, best_delta, candidates)` —
    /// the candidate count is what the paper's cost model charges.
    ///
    /// This is the single source of truth for the decision: the sequential
    /// loop and the batched slow path both call it, and the batched fast
    /// paths must reproduce it value-for-value (which the invariance property
    /// tests pin).
    fn decide_current(&mut self, state: &ClusterState, i: usize) -> Option<(usize, f64, usize)> {
        let u = state.label(i);
        if state.size(u) <= 1 {
            return None;
        }
        self.candidates.clear();
        for nb in self.graph.neighbors(i).as_slice().iter().take(self.kappa) {
            let c = state.label(nb.id as usize);
            if c != u && !self.candidates.contains(&c) {
                self.candidates.push(c);
            }
        }
        if self.candidates.is_empty() {
            return None;
        }
        let x = self.data.row(i);
        let removal = state.removal_part(i, x);
        self.gains.resize(self.candidates.len(), 0.0);
        state.addition_parts(x, &self.candidates, &mut self.gains);
        let mut best_v = u;
        let mut best_delta = 0.0f64;
        for (&v, &gain) in self.candidates.iter().zip(self.gains.iter()) {
            let delta = removal + gain;
            if delta > best_delta {
                best_delta = delta;
                best_v = v;
            }
        }
        Some((best_v, best_delta, self.candidates.len()))
    }

    /// The paper's single-threaded loop (Alg. 2 lines 5–15), verbatim.
    fn run_epoch_sequential(
        &mut self,
        state: &mut ClusterState,
        order: &[usize],
        distance_evals: &mut u64,
    ) -> usize {
        let mut moves = 0usize;
        for &i in order {
            let Some((best_v, best_delta, scored)) = self.decide_current(state, i) else {
                continue;
            };
            *distance_evals += scored as u64;
            let u = state.label(i);
            if best_v != u && best_delta > 0.0 {
                state.apply_move(i, self.data.row(i), best_v);
                moves += 1;
            }
        }
        moves
    }

    /// Delta-batched rounds: parallel snapshot scoring, sequential
    /// conflict-resolving apply in the same shuffled order.
    fn run_epoch_batched(
        &mut self,
        state: &mut ClusterState,
        order: &[usize],
        distance_evals: &mut u64,
    ) -> usize {
        let mut moves = 0usize;
        let round_len = self.threads * BATCH_PER_THREAD;
        let mut pos = 0usize;
        while pos < order.len() {
            let end = (pos + round_len).min(order.len());
            let batch = &order[pos..end];
            self.generation += 1;
            let gen = self.generation;

            // Parallel scoring against the round-start snapshot.  The blocks
            // only *read* the state; proposals come back in batch order, with
            // each block's candidate/gain runs rebased into the round's flat
            // buffers.
            let (data, graph, kappa) = (self.data, self.graph, self.kappa);
            let snapshot: &ClusterState = state;
            let n_blocks = batch.len().div_ceil(SCORE_BLOCK);
            let per_block: Vec<BlockScore> = run_blocks(self.threads, n_blocks, |b| {
                let lo = b * SCORE_BLOCK;
                let hi = ((b + 1) * SCORE_BLOCK).min(batch.len());
                score_boost_block(data, graph, kappa, snapshot, &batch[lo..hi])
            });
            self.proposals.clear();
            self.round_candidates.clear();
            self.round_gains.clear();
            for block in per_block {
                let base = self.round_candidates.len() as u32;
                self.proposals
                    .extend(block.proposals.iter().map(|p| Proposal {
                        offset: p.offset + base,
                        ..*p
                    }));
                self.round_candidates.extend_from_slice(&block.candidates);
                self.round_gains.extend_from_slice(&block.gains);
            }

            // Sequential conflict-resolving apply in the paper's visit order.
            for (pos_in_batch, &i) in batch.iter().enumerate() {
                let prop = self.proposals[pos_in_batch];
                let u = state.label(i);
                // Did any κ-neighbour of `i` move earlier this round?  If
                // not, the current candidate set is the snapshot's (same
                // entries, same order) and never needs re-collecting.
                let mut neighbor_moved = false;
                for nb in self.graph.neighbors(i).as_slice().iter().take(self.kappa) {
                    if self.moved[nb.id as usize] == gen {
                        neighbor_moved = true;
                        break;
                    }
                }
                if !neighbor_moved {
                    if !prop.scored {
                        if self.touched[u] != gen {
                            // The snapshot's skip conditions (singleton
                            // cluster / no foreign candidates) still hold.
                            continue;
                        }
                        // u was modified this round: the sequential loop
                        // might now score this sample — fall through to the
                        // full decision below.
                    } else {
                        // The sequential loop's singleton guard runs before
                        // anything else.  When u is untouched this round its
                        // size equals the snapshot's (where `scored` proves it
                        // was > 1); when u *was* modified — e.g. another
                        // member left it — the guard must be re-evaluated, or
                        // this sample would be scored (and possibly moved,
                        // emptying u) where the sequential loop skips it.
                        if self.touched[u] == gen && state.size(u) <= 1 {
                            continue;
                        }
                        let off = prop.offset as usize;
                        let len = prop.len as usize;
                        let mut any_touched = self.touched[u] == gen;
                        if !any_touched {
                            for j in 0..len {
                                if self.touched[self.round_candidates[off + j] as usize] == gen {
                                    any_touched = true;
                                    break;
                                }
                            }
                        }
                        // The paper's cost model: one evaluation per
                        // candidate of the decision actually taken (the
                        // parallel phase's discarded stale work is
                        // implementation overhead, not algorithm cost).
                        *distance_evals += len as u64;
                        let (best_v, best_delta) = if !any_touched {
                            // Nothing the decision reads changed: the
                            // snapshot fold IS the sequential decision.
                            (prop.best_v as usize, prop.best_delta)
                        } else {
                            // Repair per component: reuse the removal part
                            // and every gain whose cluster is unmodified
                            // (equal inputs ⇒ bit-equal values), re-score
                            // only what earlier moves of this round touched.
                            let x = self.data.row(i);
                            let removal = if self.touched[u] == gen {
                                state.removal_part(i, x)
                            } else {
                                prop.removal
                            };
                            let mut best_v = u;
                            let mut best_delta = 0.0f64;
                            for j in 0..len {
                                let v = self.round_candidates[off + j] as usize;
                                let gain = if self.touched[v] == gen {
                                    state.addition_part(x, v)
                                } else {
                                    self.round_gains[off + j]
                                };
                                let delta = removal + gain;
                                if delta > best_delta {
                                    best_delta = delta;
                                    best_v = v;
                                }
                            }
                            (best_v, best_delta)
                        };
                        if best_v != u && best_delta > 0.0 {
                            state.apply_move(i, self.data.row(i), best_v);
                            self.touched[u] = gen;
                            self.touched[best_v] = gen;
                            self.moved[i] = gen;
                            moves += 1;
                        }
                        continue;
                    }
                }
                // Slow path — a neighbour moved (candidate set may differ
                // from the snapshot's) or a skipped sample's cluster was
                // modified: redo the exact sequential decision.
                let Some((best_v, best_delta, scored)) = self.decide_current(state, i) else {
                    continue;
                };
                *distance_evals += scored as u64;
                if best_v != u && best_delta > 0.0 {
                    state.apply_move(i, self.data.row(i), best_v);
                    self.touched[u] = gen;
                    self.touched[best_v] = gen;
                    self.moved[i] = gen;
                    moves += 1;
                }
            }
            pos = end;
        }
        moves
    }
}

/// Traditional-mode (GK-means⁻) epoch engine: closest-candidate-centroid
/// assignment against the epoch's fixed centroids, with the centroid update
/// fused into the sweep.
///
/// The sequential apply phase accumulates every sample into its winning
/// cluster's `f64` sum (ascending sample order) as it is assigned, so the
/// end-of-epoch "batch centroid update" is just
/// [`CentroidAccumulator::write_centroids`] — the data is streamed **once**
/// per epoch.  Threading follows the same delta-batched scheme as
/// [`BoostEpochEngine`]; since centroids are fixed within an epoch, a
/// proposal is stale only when a κ-neighbour changed label during the same
/// round (the candidate set is the only moving part).
pub struct TraditionalEpochEngine<'a> {
    data: &'a VectorSet,
    graph: &'a KnnGraph,
    kappa: usize,
    threads: usize,
    moved: Vec<u64>,
    generation: u64,
    proposals: Vec<TraditionalProposal>,
    candidates: Vec<usize>,
    dists: Vec<f32>,
}

/// One sample's message from a traditional-mode scoring block: the winning
/// cluster plus the snapshot candidate count.  Storing the count lets the
/// apply phase charge the paper's cost model and commit the winner with only
/// an `O(κ)` moved-stamp probe — the `O(κ²)` dedup of candidate collection
/// reruns only on the stale (neighbour-moved) path.
#[derive(Clone, Copy)]
struct TraditionalProposal {
    best: u32,
    scored: u32,
}

impl<'a> TraditionalEpochEngine<'a> {
    /// Creates an engine (see [`BoostEpochEngine::new`] for the parameters).
    pub fn new(data: &'a VectorSet, graph: &'a KnnGraph, kappa: usize, threads: usize) -> Self {
        Self {
            data,
            graph,
            kappa,
            threads,
            moved: vec![0; data.len()],
            generation: 0,
            proposals: Vec::new(),
            candidates: Vec::with_capacity(kappa + 1),
            dists: Vec::with_capacity(kappa + 1),
        }
    }

    /// Runs one epoch: assigns every sample (in ascending index order, as the
    /// paper's loop does) to the closest of its candidate centroids,
    /// accumulating the fused centroid update into `accum` (reset at entry).
    /// Returns the number of label changes.
    pub fn run_epoch(
        &mut self,
        labels: &mut [usize],
        centroids: &VectorSet,
        accum: &mut CentroidAccumulator,
        distance_evals: &mut u64,
    ) -> usize {
        accum.reset();
        if self.threads <= 1 {
            self.run_epoch_sequential(labels, centroids, accum, distance_evals)
        } else {
            self.run_epoch_batched(labels, centroids, accum, distance_evals)
        }
    }

    /// Collects the current candidate clusters of sample `i` (its own label
    /// first, then the labels of its κ neighbours, deduplicated) into the
    /// scratch.
    fn collect_candidates(&mut self, labels: &[usize], i: usize) {
        let u = labels[i];
        self.candidates.clear();
        self.candidates.push(u);
        for nb in self.graph.neighbors(i).as_slice().iter().take(self.kappa) {
            let c = labels[nb.id as usize];
            if !self.candidates.contains(&c) {
                self.candidates.push(c);
            }
        }
    }

    /// Whether any κ-neighbour of `i` moved in round `gen` — the staleness
    /// probe of the apply phase, deliberately free of the candidate
    /// collection's dedup scans.
    fn any_neighbor_moved(&self, i: usize, gen: u64) -> bool {
        self.graph
            .neighbors(i)
            .as_slice()
            .iter()
            .take(self.kappa)
            .any(|nb| self.moved[nb.id as usize] == gen)
    }

    /// Scores the scratch candidate set against the centroids, returning the
    /// winner (first-best, so the sample's own cluster wins exact ties).
    fn score_candidates(&mut self, centroids: &VectorSet, i: usize) -> usize {
        let x = self.data.row(i);
        self.dists.resize(self.candidates.len(), 0.0);
        kernels::l2_sq_one_to_many_indexed(
            x,
            centroids.as_flat(),
            centroids.dim(),
            &self.candidates,
            &mut self.dists,
        );
        let mut best = self.candidates[0];
        let mut best_d = f32::INFINITY;
        for (&c, &d) in self.candidates.iter().zip(self.dists.iter()) {
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    fn run_epoch_sequential(
        &mut self,
        labels: &mut [usize],
        centroids: &VectorSet,
        accum: &mut CentroidAccumulator,
        distance_evals: &mut u64,
    ) -> usize {
        let mut changes = 0usize;
        for i in 0..labels.len() {
            let u = labels[i];
            self.collect_candidates(labels, i);
            let best = self.score_candidates(centroids, i);
            *distance_evals += self.candidates.len() as u64;
            if best != u {
                labels[i] = best;
                changes += 1;
            }
            accum.add_sample(best, self.data.row(i));
        }
        changes
    }

    fn run_epoch_batched(
        &mut self,
        labels: &mut [usize],
        centroids: &VectorSet,
        accum: &mut CentroidAccumulator,
        distance_evals: &mut u64,
    ) -> usize {
        let mut changes = 0usize;
        let n = labels.len();
        let round_len = self.threads * BATCH_PER_THREAD;
        let mut pos = 0usize;
        while pos < n {
            let end = (pos + round_len).min(n);
            self.generation += 1;
            let gen = self.generation;

            // Parallel scoring against the round-start label snapshot.
            let (data, graph, kappa) = (self.data, self.graph, self.kappa);
            let snapshot: &[usize] = labels;
            let c_flat = centroids.as_flat();
            let dim = centroids.dim();
            let n_blocks = (end - pos).div_ceil(SCORE_BLOCK);
            let per_block: Vec<Vec<TraditionalProposal>> =
                run_blocks(self.threads, n_blocks, |b| {
                    let lo = pos + b * SCORE_BLOCK;
                    let hi = (lo + SCORE_BLOCK).min(end);
                    let mut candidates: Vec<usize> = Vec::with_capacity(kappa + 1);
                    let mut dists: Vec<f32> = Vec::with_capacity(kappa + 1);
                    (lo..hi)
                        .map(|i| {
                            let u = snapshot[i];
                            candidates.clear();
                            candidates.push(u);
                            for nb in graph.neighbors(i).as_slice().iter().take(kappa) {
                                let c = snapshot[nb.id as usize];
                                if !candidates.contains(&c) {
                                    candidates.push(c);
                                }
                            }
                            dists.resize(candidates.len(), 0.0);
                            kernels::l2_sq_one_to_many_indexed(
                                data.row(i),
                                c_flat,
                                dim,
                                &candidates,
                                &mut dists,
                            );
                            let mut best = u;
                            let mut best_d = f32::INFINITY;
                            for (&c, &d) in candidates.iter().zip(dists.iter()) {
                                if d < best_d {
                                    best_d = d;
                                    best = c;
                                }
                            }
                            TraditionalProposal {
                                best: best as u32,
                                scored: candidates.len() as u32,
                            }
                        })
                        .collect()
                });
            self.proposals.clear();
            for block in per_block {
                self.proposals.extend(block);
            }

            // Sequential apply in ascending index order with fused
            // accumulation.  Centroids are fixed within the epoch, so a
            // proposal is stale only when the candidate set changed this
            // round; the fresh path commits with just the O(κ) moved-stamp
            // probe (the snapshot candidate set — and therefore the cost
            // charged — provably equals the current one).
            for i in pos..end {
                let u = labels[i];
                let (best, scored) = if self.any_neighbor_moved(i, gen) {
                    self.collect_candidates(labels, i);
                    let best = self.score_candidates(centroids, i);
                    (best, self.candidates.len())
                } else {
                    let prop = self.proposals[i - pos];
                    (prop.best as usize, prop.scored as usize)
                };
                *distance_evals += scored as u64;
                if best != u {
                    labels[i] = best;
                    self.moved[i] = gen;
                    changes += 1;
                }
                accum.add_sample(best, self.data.row(i));
            }
            pos = end;
        }
        changes
    }
}
