//! The complete two-phase GK-means pipeline (Sec. 4.3, last paragraph):
//!
//! 1. **Phase 1 — graph construction**: Alg. 3 builds an approximate KNN
//!    graph by repeatedly calling the fast k-means on fixed-size clusters.
//! 2. **Phase 2 — clustering**: Alg. 2 produces the requested `k` clusters
//!    guided by that graph.
//!
//! The phase split matches the "Init." / "Iter." time columns of Tab. 2: the
//! initialisation time of GK-means covers graph construction plus the 2M-tree
//! partition, the iteration time covers the graph-guided optimisation.

use std::time::Duration;

use knn_graph::KnnGraph;
use vecstore::VectorSet;

use baselines::common::Clustering;

use crate::construct::{GraphBuildStats, KnnGraphBuilder};
use crate::gk::GkMeans;
use crate::params::GkParams;

/// Everything the pipeline produces: the clustering, the graph it used, and
/// the per-phase costs the paper reports.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// The final clustering (labels, centroids, per-iteration trace, times).
    pub clustering: Clustering,
    /// The KNN graph built in phase 1 (kept because the paper reuses it for
    /// ANN search, Sec. 4.3).
    pub graph: KnnGraph,
    /// Cost statistics of phase 1.
    pub graph_stats: GraphBuildStats,
    /// Wall-clock time of phase 1 (graph construction).
    pub graph_time: Duration,
}

impl PipelineOutcome {
    /// Total initialisation time in the sense of Tab. 2: graph construction
    /// plus the clustering initialisation (2M tree).
    pub fn init_time(&self) -> Duration {
        self.graph_time + self.clustering.init_time
    }

    /// Iteration time in the sense of Tab. 2.
    pub fn iter_time(&self) -> Duration {
        self.clustering.iter_time
    }

    /// Total wall-clock time of both phases.
    pub fn total_time(&self) -> Duration {
        self.graph_time + self.clustering.total_time()
    }
}

/// Two-phase GK-means driver.
#[derive(Clone, Debug)]
pub struct GkMeansPipeline {
    /// Shared parameters for both phases.
    pub params: GkParams,
}

impl GkMeansPipeline {
    /// Creates the pipeline.
    pub fn new(params: GkParams) -> Self {
        Self { params }
    }

    /// Clusters `data` into `k` clusters: builds the graph (Alg. 3), then runs
    /// GK-means (Alg. 2) on top of it.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid for `(data.len(), k)`.
    pub fn cluster(&self, data: &VectorSet, k: usize) -> PipelineOutcome {
        if let Err(msg) = self.params.validate(data.len(), k) {
            panic!("invalid GK-means parameters: {msg}");
        }
        let (graph, graph_stats) = KnnGraphBuilder::new(self.params).build(data);
        let graph_time = graph_stats.elapsed;
        let clustering = GkMeans::new(self.params).fit(data, k, &graph);
        PipelineOutcome {
            clustering,
            graph,
            graph_stats,
            graph_time,
        }
    }

    /// Clusters `data` with a caller-supplied graph (the "KGraph+GK-means"
    /// configuration of Fig. 4 / Tab. 2, where the graph comes from
    /// NN-Descent).  `graph_time` should be the time spent building that graph
    /// so the outcome's init/iter split stays comparable.
    pub fn cluster_with_graph(
        &self,
        data: &VectorSet,
        k: usize,
        graph: KnnGraph,
        graph_time: Duration,
    ) -> PipelineOutcome {
        if let Err(msg) = self.params.validate(data.len(), k) {
            panic!("invalid GK-means parameters: {msg}");
        }
        let clustering = GkMeans::new(self.params).fit(data, k, &graph);
        PipelineOutcome {
            clustering,
            graph,
            graph_stats: GraphBuildStats::default(),
            graph_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::nn_descent::{nn_descent, NnDescentParams};
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    fn clustered(n: usize, dim: usize, groups: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % groups;
            let mut row = Vec::with_capacity(dim);
            for d in 0..dim {
                let centre = ((g * 5 + d) % 11) as f32 * 6.0;
                row.push(centre + rng.gen_range(-0.6..0.6));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn end_to_end_pipeline_produces_sensible_clusters() {
        let data = clustered(400, 8, 8, 1);
        let params = GkParams::default()
            .kappa(8)
            .xi(20)
            .tau(4)
            .iterations(10)
            .seed(2);
        let outcome = GkMeansPipeline::new(params).cluster(&data, 8);
        assert_eq!(outcome.clustering.labels.len(), 400);
        assert_eq!(outcome.clustering.k(), 8);
        assert!(outcome.clustering.non_empty_clusters() >= 7);
        // clusters are tight: every latent group has diameter ~1.2, groups are ≥6 apart
        assert!(outcome.clustering.distortion(&data) < 5.0);
        assert!(outcome.graph.len() == 400);
        assert!(outcome.graph_stats.rounds == 4);
        assert!(outcome.total_time() >= outcome.iter_time());
        assert!(outcome.init_time() >= outcome.graph_time);
    }

    #[test]
    fn pipeline_with_external_graph_matches_interface() {
        let data = clustered(250, 6, 5, 3);
        let graph = nn_descent(&data, &NnDescentParams::with_k(6));
        let params = GkParams::default().kappa(6).iterations(8).seed(4);
        let outcome = GkMeansPipeline::new(params).cluster_with_graph(
            &data,
            5,
            graph,
            Duration::from_millis(1),
        );
        assert_eq!(outcome.clustering.k(), 5);
        assert_eq!(outcome.graph_time, Duration::from_millis(1));
        assert!(outcome.clustering.distortion(&data) < 10.0);
    }

    #[test]
    fn trace_is_available_for_figure5_style_plots() {
        let data = clustered(200, 6, 4, 5);
        let params = GkParams::default()
            .kappa(6)
            .xi(20)
            .tau(3)
            .iterations(6)
            .seed(6);
        let outcome = GkMeansPipeline::new(params).cluster(&data, 4);
        assert!(!outcome.clustering.trace.is_empty());
        assert!(outcome.clustering.trace.len() <= 6);
        // elapsed times recorded in the trace are monotone
        let times: Vec<f64> = outcome
            .clustering
            .trace
            .iter()
            .map(|t| t.elapsed_secs)
            .collect();
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "invalid GK-means parameters")]
    fn invalid_k_panics() {
        let data = clustered(50, 4, 2, 7);
        let _ = GkMeansPipeline::new(GkParams::default()).cluster(&data, 0);
    }
}
