//! GK-means: graph-based fast k-means — the contribution of
//! *Fast k-means based on KNN Graph* (Deng & Zhao, ICDE 2018).
//!
//! The crate implements the complete pipeline of the paper:
//!
//! 1. [`state`] / [`objective`] — the composite-vector cluster state and the
//!    explicit objective `I = Σ_r D_r'·D_r / n_r` (Eqn. 2) with the
//!    incremental move gain `ΔI` (Eqn. 3);
//! 2. [`boost`] — **boost k-means** (BKM, Sec. 3.1): stochastic incremental
//!    optimisation of `I`, the quality backbone GK-means is built on;
//! 3. [`two_means`] — the **two-means tree** (Alg. 1, Sec. 3.2): hierarchical
//!    bisection with equal-size adjustment, used to produce the initial `k`
//!    partition in `O(d·n·log k)`; its loops ride the same worker pool as
//!    the epochs, bit-identical at any thread count;
//! 4. [`gk`] — **GK-means** (Alg. 2): the BKM iteration restricted, for every
//!    sample, to the clusters where its κ graph neighbours live, plus the
//!    traditional-k-means variant "GK-means⁻" evaluated in Fig. 4, both
//!    driven by [`epoch`] — the threaded epoch engine whose delta-batched
//!    rounds parallelise the iteration behind the opt-in `threads` knob with
//!    bit-identical output at any thread count;
//! 5. [`construct`] — **KNN-graph construction by fast k-means** (Alg. 3):
//!    the intertwined process that alternately clusters the data into
//!    fixed-size groups and refines the graph by exhaustive in-cluster
//!    comparison;
//! 6. [`pipeline`] — the two-phase driver used in the experiments: build the
//!    graph with Alg. 3, then cluster with Alg. 2, reporting the same
//!    initialisation / iteration time split as Tab. 2;
//! 7. [`parallel`] — a rayon-parallel variant of the Alg. 3 refinement step
//!    that produces a bit-identical graph (deployment convenience; every
//!    *measured* path in the benches stays single-threaded like the paper's);
//! 8. [`online`] — the paper's future-work direction: incremental insertion
//!    into an existing clustering + graph, with periodic graph-guided
//!    refinement passes.
//!
//! # Quickstart
//!
//! ```
//! use gkmeans::{GkMeansPipeline, GkParams};
//! use vecstore::VectorSet;
//!
//! // a tiny clustered dataset: two groups on a line
//! let rows: Vec<Vec<f32>> = (0..60)
//!     .map(|i| vec![if i < 30 { i as f32 * 0.01 } else { 10.0 + (i - 30) as f32 * 0.01 }])
//!     .collect();
//! let data = VectorSet::from_rows(rows).unwrap();
//!
//! let params = GkParams::default().kappa(5).xi(10).tau(3).iterations(5);
//! let outcome = GkMeansPipeline::new(params).cluster(&data, 2);
//! assert_eq!(outcome.clustering.labels.len(), 60);
//! assert_eq!(outcome.clustering.k(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boost;
pub mod construct;
pub mod epoch;
pub mod gk;
pub mod objective;
pub mod online;
pub mod parallel;
pub mod params;
pub mod pipeline;
pub mod state;
pub mod two_means;

pub use boost::BoostKMeans;
pub use construct::{GraphBuildStats, KnnGraphBuilder};
pub use epoch::{BoostEpochEngine, TraditionalEpochEngine, NORM_REFRESH_INTERVAL};
pub use gk::{GkMeans, GkMode};
pub use online::OnlineGkMeans;
pub use parallel::ParallelKnnGraphBuilder;
pub use params::GkParams;
pub use pipeline::{GkMeansPipeline, PipelineOutcome};
pub use state::ClusterState;
