//! Incremental cluster state: labels, composite vectors, sizes and cached
//! composite norms.
//!
//! Boost k-means and GK-means move one sample at a time, so the state keeps
//! `D_r` (composite vector), `n_r` (size) and `D_r'·D_r` (cached norm²) per
//! cluster and updates them in `O(d)` per move.  Centroids are derived as
//! `C_r = D_r / n_r` only when requested.

use vecstore::distance::{dot, dot_f64_f32};
use vecstore::kernels;
use vecstore::VectorSet;

use crate::objective::{addition_gain, cluster_term, removal_gain};

/// Mutable cluster state shared by boost k-means and GK-means.
#[derive(Clone, Debug)]
pub struct ClusterState {
    labels: Vec<usize>,
    /// Composite vectors, `k × d`, stored in `f64` for numerical stability
    /// across millions of incremental updates.
    composite: Vec<f64>,
    /// Cached `D_r'·D_r`.
    composite_norm_sq: Vec<f64>,
    sizes: Vec<usize>,
    k: usize,
    dim: usize,
}

impl ClusterState {
    /// Builds the state from an initial labelling.
    ///
    /// # Panics
    ///
    /// Panics when a label is `>= k` or when `labels.len() != data.len()`.
    pub fn from_labels(data: &VectorSet, labels: Vec<usize>, k: usize) -> Self {
        assert_eq!(data.len(), labels.len(), "label count mismatch");
        assert!(k > 0, "k must be positive");
        let dim = data.dim();
        let mut composite = vec![0.0f64; k * dim];
        let mut sizes = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            assert!(l < k, "label {l} out of range for k={k}");
            sizes[l] += 1;
            let row = data.row(i);
            let acc = &mut composite[l * dim..(l + 1) * dim];
            for (a, &x) in acc.iter_mut().zip(row) {
                *a += f64::from(x);
            }
        }
        let composite_norm_sq = (0..k)
            .map(|r| {
                composite[r * dim..(r + 1) * dim]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        Self {
            labels,
            composite,
            composite_norm_sq,
            sizes,
            k,
            dim,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the state tracks no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Current label of sample `i`.
    #[inline]
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    #[inline]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Size of cluster `r`.
    #[inline]
    pub fn size(&self, r: usize) -> usize {
        self.sizes[r]
    }

    /// Composite vector of cluster `r`.
    #[inline]
    pub fn composite(&self, r: usize) -> &[f64] {
        &self.composite[r * self.dim..(r + 1) * self.dim]
    }

    /// The boost-k-means objective `I = Σ_r D_r'·D_r / n_r` (Eqn. 2).
    pub fn objective(&self) -> f64 {
        (0..self.k)
            .map(|r| cluster_term(self.composite_norm_sq[r], self.sizes[r]))
            .sum()
    }

    /// Move gain `ΔI` (Eqn. 3) for moving sample `i` (with row `x`) from its
    /// current cluster to cluster `v`.  Returns `0.0` when `v` is already the
    /// sample's cluster.
    ///
    /// The evaluation costs two `d`-dimensional dot products (`D_u·x` and
    /// `D_v·x`) — the same order as one sample↔centroid distance, which is how
    /// the paper argues BKM has the same complexity as Lloyd's k-means.
    pub fn delta_move(&self, i: usize, x: &[f32], v: usize) -> f64 {
        let u = self.labels[i];
        if u == v {
            return 0.0;
        }
        let x_norm_sq = f64::from(dot(x, x));
        let du_dot_x = dot_f64_f32(self.composite(u), x);
        let dv_dot_x = dot_f64_f32(self.composite(v), x);
        removal_gain(
            self.composite_norm_sq[u],
            du_dot_x,
            x_norm_sq,
            self.sizes[u],
        ) + addition_gain(
            self.composite_norm_sq[v],
            dv_dot_x,
            x_norm_sq,
            self.sizes[v],
        )
    }

    /// Split of [`ClusterState::delta_move`] used when one sample is checked
    /// against many candidate clusters: the removal part depends only on the
    /// source cluster and is computed once.
    pub fn removal_part(&self, i: usize, x: &[f32]) -> f64 {
        let u = self.labels[i];
        let x_norm_sq = f64::from(dot(x, x));
        let du_dot_x = dot_f64_f32(self.composite(u), x);
        removal_gain(
            self.composite_norm_sq[u],
            du_dot_x,
            x_norm_sq,
            self.sizes[u],
        )
    }

    /// Addition part of `ΔI` for candidate cluster `v` (see
    /// [`ClusterState::removal_part`]).
    pub fn addition_part(&self, x: &[f32], v: usize) -> f64 {
        let x_norm_sq = f64::from(dot(x, x));
        let dv_dot_x = dot_f64_f32(self.composite(v), x);
        addition_gain(
            self.composite_norm_sq[v],
            dv_dot_x,
            x_norm_sq,
            self.sizes[v],
        )
    }

    /// Batched addition parts for a whole candidate set: `out[j]` receives the
    /// addition gain of moving `x` into `candidates[j]`.
    ///
    /// This is the GK-means inner loop (Alg. 2 line 12).  Compared to calling
    /// [`ClusterState::addition_part`] per candidate it computes `‖x‖²` once
    /// and streams the composite·sample dot products through the prefetching
    /// mixed-precision gather kernel — the candidate clusters are
    /// data-dependent, so the next composite row is software-prefetched while
    /// the current one is scored.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != candidates.len()`.
    pub fn addition_parts(&self, x: &[f32], candidates: &[usize], out: &mut [f64]) {
        assert_eq!(candidates.len(), out.len(), "candidate/output length");
        let x_norm_sq = f64::from(dot(x, x));
        kernels::dot_f64_f32_one_to_many_indexed(x, &self.composite, self.dim, candidates, out);
        for (slot, &v) in out.iter_mut().zip(candidates) {
            *slot = addition_gain(self.composite_norm_sq[v], *slot, x_norm_sq, self.sizes[v]);
        }
    }

    /// Applies the move of sample `i` (row `x`) to cluster `v`, updating
    /// composites, sizes and cached norms in `O(d)`.
    ///
    /// # Panics
    ///
    /// Panics when moving would empty a singleton *and* `v == u` (no-op moves
    /// are ignored instead).
    pub fn apply_move(&mut self, i: usize, x: &[f32], v: usize) {
        let u = self.labels[i];
        if u == v {
            return;
        }
        debug_assert!(self.sizes[u] >= 1);
        // update cached norms using ‖D ± x‖² = ‖D‖² ± 2 D·x + ‖x‖²
        // ‖x‖² is accumulated in f64 so the cached norm stays consistent with
        // the f64 composite vectors even when a cluster's composite cancels to
        // (near) zero — an f32-computed ‖x‖² leaves a residue that the drift
        // diagnostic (and, over millions of moves, the objective) would see.
        let x_norm_sq = norm_sq_f64(x);
        let du_dot_x = dot_f64_f32(self.composite(u), x);
        let dv_dot_x = dot_f64_f32(self.composite(v), x);
        self.composite_norm_sq[u] += -2.0 * du_dot_x + x_norm_sq;
        self.composite_norm_sq[v] += 2.0 * dv_dot_x + x_norm_sq;
        let dim = self.dim;
        {
            let cu = &mut self.composite[u * dim..(u + 1) * dim];
            for (c, &xv) in cu.iter_mut().zip(x) {
                *c -= f64::from(xv);
            }
        }
        {
            let cv = &mut self.composite[v * dim..(v + 1) * dim];
            for (c, &xv) in cv.iter_mut().zip(x) {
                *c += f64::from(xv);
            }
        }
        self.sizes[u] -= 1;
        self.sizes[v] += 1;
        self.labels[i] = v;
        if self.sizes[u] == 0 {
            // avoid drift: an empty cluster has an exactly-zero composite
            self.composite_norm_sq[u] = 0.0;
            for c in &mut self.composite[u * dim..(u + 1) * dim] {
                *c = 0.0;
            }
        }
    }

    /// Appends a *new* sample (row `x`) directly into cluster `v`, updating
    /// the composite vector, cached norm and size in `O(d)`.  The sample gets
    /// index `len()` (append order), mirroring how the online extension grows
    /// the dataset.
    ///
    /// # Panics
    ///
    /// Panics when `v >= k` or when `x` has the wrong dimensionality.
    pub fn push_sample(&mut self, x: &[f32], v: usize) -> usize {
        assert!(v < self.k, "cluster {v} out of range for k={}", self.k);
        assert_eq!(x.len(), self.dim, "sample dimensionality mismatch");
        let x_norm_sq = norm_sq_f64(x);
        let dv_dot_x = dot_f64_f32(self.composite(v), x);
        self.composite_norm_sq[v] += 2.0 * dv_dot_x + x_norm_sq;
        let dim = self.dim;
        let cv = &mut self.composite[v * dim..(v + 1) * dim];
        for (c, &xv) in cv.iter_mut().zip(x) {
            *c += f64::from(xv);
        }
        self.sizes[v] += 1;
        self.labels.push(v);
        self.labels.len() - 1
    }

    /// Derives the centroid matrix `C_r = D_r / n_r`.  Empty clusters get a
    /// zero centroid.
    pub fn centroids(&self) -> VectorSet {
        let mut out = VectorSet::zeros(self.k, self.dim).expect("non-zero dim");
        for r in 0..self.k {
            if self.sizes[r] == 0 {
                continue;
            }
            let inv = 1.0 / self.sizes[r] as f64;
            let src = self.composite(r).to_vec();
            for (t, v) in out.row_mut(r).iter_mut().zip(src) {
                *t = (v * inv) as f32;
            }
        }
        out
    }

    /// Average distortion `E` (Eqn. 4) derived from the objective without a
    /// pass over the data: `E = (Σ_i ‖x_i‖² − I) / n`.
    ///
    /// `sum_sq_norms` is `Σ_i ‖x_i‖²`, which is constant for a dataset and can
    /// be computed once by the caller.
    pub fn distortion_from_objective(&self, sum_sq_norms: f64) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        ((sum_sq_norms - self.objective()) / self.labels.len() as f64).max(0.0)
    }

    /// Recomputes the cached norms from the composite vectors (used by tests
    /// and occasionally by long-running loops to squash floating-point drift).
    pub fn refresh_norm_cache(&mut self) {
        for r in 0..self.k {
            self.composite_norm_sq[r] = self.composite(r).iter().map(|v| v * v).sum();
        }
    }

    /// Maximum relative deviation between the cached norms and the norms
    /// recomputed from the composite vectors — a drift diagnostic used by
    /// property tests.
    pub fn norm_cache_drift(&self) -> f64 {
        (0..self.k)
            .map(|r| {
                let fresh: f64 = self.composite(r).iter().map(|v| v * v).sum();
                let cached = self.composite_norm_sq[r];
                if fresh.abs() < 1e-12 {
                    (cached - fresh).abs()
                } else {
                    ((cached - fresh) / fresh).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

/// ‖x‖² accumulated in `f64`, matching the precision of the composite
/// vectors (see [`ClusterState::apply_move`]).
#[inline]
fn norm_sq_f64(x: &[f32]) -> f64 {
    x.iter()
        .map(|&v| {
            let v = f64::from(v);
            v * v
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecstore::distance::l2_sq;

    fn data() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![10.0, 10.0],
            vec![11.0, 10.0],
            vec![10.0, 11.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_labels_builds_consistent_state() {
        let d = data();
        let st = ClusterState::from_labels(&d, vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(st.k(), 2);
        assert_eq!(st.len(), 6);
        assert!(!st.is_empty());
        assert_eq!(st.size(0), 3);
        assert_eq!(st.size(1), 3);
        assert_eq!(st.composite(0), &[1.0, 1.0]);
        assert_eq!(st.composite(1), &[31.0, 31.0]);
        assert_eq!(st.labels(), &[0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn objective_equals_sum_norm_minus_distortion() {
        let d = data();
        let labels = vec![0usize, 0, 0, 1, 1, 1];
        let st = ClusterState::from_labels(&d, labels.clone(), 2);
        let centroids = st.centroids();
        let sum_sq: f64 = d.rows().map(|r| f64::from(dot(r, r))).sum();
        let distortion: f64 = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| f64::from(l2_sq(d.row(i), centroids.row(l))))
            .sum::<f64>()
            / d.len() as f64;
        let derived = st.distortion_from_objective(sum_sq);
        assert!(
            (derived - distortion).abs() < 1e-6,
            "{derived} vs {distortion}"
        );
    }

    #[test]
    fn delta_move_matches_objective_difference() {
        let d = data();
        let mut st = ClusterState::from_labels(&d, vec![0, 0, 1, 1, 1, 0], 2);
        for i in 0..d.len() {
            for v in 0..2 {
                let delta = st.delta_move(i, d.row(i), v);
                if v == st.label(i) {
                    assert_eq!(delta, 0.0);
                    continue;
                }
                let before = st.objective();
                let mut trial = st.clone();
                trial.apply_move(i, d.row(i), v);
                let after = trial.objective();
                assert!(
                    (delta - (after - before)).abs() < 1e-6,
                    "sample {i} to {v}: {delta} vs {}",
                    after - before
                );
            }
        }
        // also check the split form
        let i = 2;
        let v = 0;
        let split = st.removal_part(i, d.row(i)) + st.addition_part(d.row(i), v);
        assert!((split - st.delta_move(i, d.row(i), v)).abs() < 1e-9);
        st.apply_move(i, d.row(i), v);
        assert_eq!(st.label(i), v);
    }

    #[test]
    fn apply_move_keeps_cache_in_sync() {
        let d = data();
        let mut st = ClusterState::from_labels(&d, vec![0, 1, 0, 1, 0, 1], 2);
        for (i, v) in [(0usize, 1usize), (3, 0), (5, 0), (1, 0), (2, 1)] {
            st.apply_move(i, d.row(i), v);
            assert!(st.norm_cache_drift() < 1e-9, "drift after move {i}->{v}");
        }
        let sizes: usize = (0..2).map(|r| st.size(r)).sum();
        assert_eq!(sizes, 6);
    }

    #[test]
    fn emptied_cluster_is_zeroed() {
        let d = data();
        let mut st = ClusterState::from_labels(&d, vec![0, 1, 1, 1, 1, 1], 2);
        st.apply_move(0, d.row(0), 1);
        assert_eq!(st.size(0), 0);
        assert_eq!(st.composite(0), &[0.0, 0.0]);
        assert_eq!(st.objective(), st.objective()); // finite, no NaN
        assert!(st.objective().is_finite());
        let c = st.centroids();
        assert_eq!(c.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn centroids_are_means() {
        let d = data();
        let st = ClusterState::from_labels(&d, vec![0, 0, 0, 1, 1, 1], 2);
        let c = st.centroids();
        assert!((c.row(0)[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((c.row(1)[0] - 31.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn moving_improves_objective_for_obvious_outlier() {
        // sample 3 (10,10) wrongly placed in cluster 0 with the origin points
        let d = data();
        let st = ClusterState::from_labels(&d, vec![0, 0, 0, 0, 1, 1], 2);
        let delta = st.delta_move(3, d.row(3), 1);
        assert!(
            delta > 0.0,
            "moving the outlier home must increase I, got {delta}"
        );
    }

    #[test]
    fn refresh_norm_cache_is_idempotent() {
        let d = data();
        let mut st = ClusterState::from_labels(&d, vec![0, 1, 0, 1, 0, 1], 2);
        let before = st.objective();
        st.refresh_norm_cache();
        assert!((st.objective() - before).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn mismatched_labels_panic() {
        let d = data();
        let _ = ClusterState::from_labels(&d, vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_label_panics() {
        let d = data();
        let _ = ClusterState::from_labels(&d, vec![0, 0, 0, 0, 0, 7], 2);
    }
}
