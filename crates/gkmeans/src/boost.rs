//! Boost k-means (BKM) — Zhao, Deng & Ngo, arXiv 2016 (ref. \[16\] of the
//! paper, reviewed in Sec. 3.1).
//!
//! The "egg-chicken" loop of Lloyd's k-means is replaced by a stochastic
//! incremental optimisation of the explicit objective `I` (Eqn. 2): samples
//! are visited in random order and each is immediately moved to the cluster
//! that maximises `ΔI` (Eqn. 3) whenever that gain is positive.  Checking a
//! candidate cluster costs one dot product with the cluster's composite
//! vector, so an epoch over all samples costs the same `O(n·d·k)` as one
//! Lloyd iteration — but converges to considerably lower distortion, which is
//! why GK-means is built on top of it (Sec. 3.1, Fig. 5).

use std::time::Instant;

use vecstore::distance::dot;
use vecstore::sample::{rng_from_seed, shuffled_order};
use vecstore::VectorSet;

use baselines::common::{Clustering, IterationStat, KMeansConfig};

use crate::state::ClusterState;
use crate::two_means::TwoMeansTree;

/// How the initial partition of BKM is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoostInit {
    /// Uniformly random labels (the original BKM initialisation).
    Random,
    /// Two-means tree (Alg. 1) — the initialisation GK-means uses; also
    /// useful for plain BKM on large `k`.
    TwoMeansTree,
}

/// Boost k-means driver.
#[derive(Clone, Debug)]
pub struct BoostKMeans {
    /// Shared convergence configuration (`max_iters` counts epochs over the
    /// data).
    pub config: KMeansConfig,
    /// Initial-partition strategy.
    pub init: BoostInit,
}

impl BoostKMeans {
    /// Creates a BKM with random initial labels.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            init: BoostInit::Random,
        }
    }

    /// Selects the initialisation strategy.
    #[must_use]
    pub fn with_init(mut self, init: BoostInit) -> Self {
        self.init = init;
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid boost k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let k = cfg.k;
        let mut rng = rng_from_seed(cfg.seed);

        let start = Instant::now();
        let initial_labels = match self.init {
            BoostInit::Random => {
                // round-robin over a shuffled order guarantees no empty cluster
                let order = shuffled_order(&mut rng, n);
                let mut labels = vec![0usize; n];
                for (rank, &i) in order.iter().enumerate() {
                    labels[i] = rank % k;
                }
                labels
            }
            BoostInit::TwoMeansTree => TwoMeansTree::new(cfg.seed)
                .threads(vecstore::parallel::effective_threads(cfg.threads))
                .partition(data, k),
        };
        let mut state = ClusterState::from_labels(data, initial_labels, k);
        let init_time = start.elapsed();

        let sum_sq_norms: f64 = data.rows().map(|r| f64::from(dot(r, r))).sum();
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;
        let mut prev_distortion = f64::INFINITY;

        for epoch in 0..cfg.max_iters {
            iterations = epoch + 1;
            let order = shuffled_order(&mut rng, n);
            let mut moves = 0usize;
            for &i in &order {
                let x = data.row(i);
                let u = state.label(i);
                // Never empty the source cluster entirely: boost k-means keeps
                // k non-trivial clusters alive.
                if state.size(u) <= 1 {
                    continue;
                }
                let removal = state.removal_part(i, x);
                let mut best_v = u;
                let mut best_delta = 0.0f64;
                for v in 0..k {
                    if v == u {
                        continue;
                    }
                    let delta = removal + state.addition_part(x, v);
                    distance_evals += 1;
                    if delta > best_delta {
                        best_delta = delta;
                        best_v = v;
                    }
                }
                if best_v != u && best_delta > 0.0 {
                    state.apply_move(i, x, best_v);
                    moves += 1;
                }
            }

            if cfg.record_trace {
                let distortion = state.distortion_from_objective(sum_sq_norms);
                trace.push(IterationStat {
                    iteration: epoch,
                    distortion,
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
                if cfg.tol > 0.0
                    && prev_distortion.is_finite()
                    && prev_distortion - distortion <= cfg.tol * prev_distortion
                {
                    break;
                }
                prev_distortion = distortion;
            }
            if moves == 0 {
                break;
            }
        }

        Clustering {
            labels: state.labels().to_vec(),
            centroids: state.centroids(),
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::lloyd::LloydKMeans;

    fn blobs(per: usize, k: usize, spread: f32) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 20.0;
                rows.push(vec![
                    base + (i % 9) as f32 * spread,
                    base - (i % 5) as f32 * spread,
                    (i % 7) as f32 * spread * 0.5,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn recovers_separable_blobs() {
        let data = blobs(40, 4, 0.3);
        let result = BoostKMeans::new(KMeansConfig::with_k(4).max_iters(30).seed(1)).fit(&data);
        assert_eq!(result.labels.len(), data.len());
        assert_eq!(result.non_empty_clusters(), 4);
        assert!(
            result.distortion(&data) < 3.0,
            "distortion {}",
            result.distortion(&data)
        );
    }

    #[test]
    fn objective_trace_is_non_increasing_distortion() {
        let data = blobs(30, 3, 0.5);
        let result = BoostKMeans::new(KMeansConfig::with_k(3).max_iters(20).seed(2)).fit(&data);
        let d: Vec<f64> = result.trace.iter().map(|t| t.distortion).collect();
        assert!(!d.is_empty());
        for w in d.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "distortion increased {w:?}");
        }
    }

    #[test]
    fn derived_distortion_matches_direct_computation() {
        let data = blobs(25, 3, 0.4);
        let result = BoostKMeans::new(KMeansConfig::with_k(3).max_iters(15).seed(3)).fit(&data);
        let direct = result.distortion(&data);
        let traced = result.trace.last().unwrap().distortion;
        assert!(
            (direct - traced).abs() < 1e-3 * direct.max(1.0),
            "direct {direct} vs traced {traced}"
        );
    }

    #[test]
    fn at_least_as_good_as_lloyd_on_harder_data() {
        // The headline property of BKM (Sec. 3.1): better local optima than
        // traditional k-means.  Use overlapping blobs so the optimisation
        // actually matters, and identical seeding.
        let data = blobs(50, 6, 3.0);
        let cfg = KMeansConfig::with_k(6).max_iters(40).seed(4);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let bkm = BoostKMeans::new(cfg).fit(&data);
        assert!(
            bkm.distortion(&data) <= lloyd.distortion(&data) * 1.05,
            "bkm {} vs lloyd {}",
            bkm.distortion(&data),
            lloyd.distortion(&data)
        );
    }

    #[test]
    fn two_means_tree_init_works() {
        let data = blobs(30, 4, 0.5);
        let result = BoostKMeans::new(KMeansConfig::with_k(4).max_iters(15).seed(5))
            .with_init(BoostInit::TwoMeansTree)
            .fit(&data);
        assert_eq!(result.non_empty_clusters(), 4);
        assert!(result.distortion(&data) < 3.0);
    }

    #[test]
    fn clusters_never_become_empty() {
        let data = blobs(10, 5, 1.0);
        let result = BoostKMeans::new(KMeansConfig::with_k(5).max_iters(25).seed(6)).fit(&data);
        assert_eq!(result.non_empty_clusters(), 5);
        assert!(result.cluster_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(20, 3, 0.8);
        let a = BoostKMeans::new(KMeansConfig::with_k(3).max_iters(10).seed(7)).fit(&data);
        let b = BoostKMeans::new(KMeansConfig::with_k(3).max_iters(10).seed(7)).fit(&data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "invalid boost k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(3, 1, 0.1);
        let _ = BoostKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
