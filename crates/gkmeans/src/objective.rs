//! The boost-k-means objective (Eqn. 2) and move gain (Eqn. 3).
//!
//! Given clusters `S_1 … S_k` with composite vectors `D_r = Σ_{x∈S_r} x` and
//! sizes `n_r`, the objective is
//!
//! ```text
//!     I = Σ_r  D_r'·D_r / n_r                               (Eqn. 2)
//! ```
//!
//! Maximising `I` is equivalent to minimising the k-means distortion (Eqn. 1):
//! `Σ_i ‖x_i‖²` is constant, and `Σ_r Σ_{x∈S_r} ‖x − C_r‖² = Σ_i ‖x_i‖² − I`.
//!
//! Moving a sample `x` from cluster `u` to cluster `v` changes the objective
//! by
//!
//! ```text
//!     ΔI(x) = (D_v + x)'(D_v + x)/(n_v + 1) + (D_u − x)'(D_u − x)/(n_u − 1)
//!           −  D_v'D_v/n_v − D_u'D_u/n_u                     (Eqn. 3)
//! ```
//!
//! with the convention that an emptied cluster contributes `0` (the
//! `(n_u − 1)`-denominator term vanishes when `n_u = 1`).
//!
//! The functions in this module operate on raw slices so they can be used both
//! by [`crate::state::ClusterState`] (which caches `D_r'·D_r`) and by tests
//! that verify the incremental arithmetic against recomputation from scratch.

use vecstore::distance::dot;

/// Contribution of a single cluster to the objective: `D'·D / n`, or `0` for
/// an empty cluster.
#[inline]
pub fn cluster_term(composite_norm_sq: f64, size: usize) -> f64 {
    if size == 0 {
        0.0
    } else {
        composite_norm_sq / size as f64
    }
}

/// Gain of removing sample `x` from a cluster with composite norm²
/// `d_norm_sq`, composite·x dot product `d_dot_x`, sample norm² `x_norm_sq`
/// and current size `n`:
/// `(D − x)'(D − x)/(n − 1) − D'D/n`.
#[inline]
pub fn removal_gain(d_norm_sq: f64, d_dot_x: f64, x_norm_sq: f64, n: usize) -> f64 {
    debug_assert!(n >= 1, "cannot remove from an empty cluster");
    let after = d_norm_sq - 2.0 * d_dot_x + x_norm_sq;
    let after_term = if n == 1 { 0.0 } else { after / (n - 1) as f64 };
    after_term - cluster_term(d_norm_sq, n)
}

/// Gain of adding sample `x` to a cluster with composite norm² `d_norm_sq`,
/// composite·x dot product `d_dot_x`, sample norm² `x_norm_sq` and current
/// size `n`: `(D + x)'(D + x)/(n + 1) − D'D/n`.
#[inline]
pub fn addition_gain(d_norm_sq: f64, d_dot_x: f64, x_norm_sq: f64, n: usize) -> f64 {
    let after = d_norm_sq + 2.0 * d_dot_x + x_norm_sq;
    after / (n + 1) as f64 - cluster_term(d_norm_sq, n)
}

/// Full Eqn. 3 evaluated from explicit composite vectors — the reference
/// implementation used by tests and by callers that do not maintain cached
/// norms.  `du`/`dv` are the composite vectors of the source and destination
/// clusters, `nu`/`nv` their sizes, and `x` the sample being moved.
pub fn delta_i_reference(du: &[f32], nu: usize, dv: &[f32], nv: usize, x: &[f32]) -> f64 {
    assert!(nu >= 1, "source cluster must contain the sample");
    let x_norm_sq = f64::from(dot(x, x));
    let du_norm_sq = f64::from(dot(du, du));
    let dv_norm_sq = f64::from(dot(dv, dv));
    let du_dot_x = f64::from(dot(du, x));
    let dv_dot_x = f64::from(dot(dv, x));
    removal_gain(du_norm_sq, du_dot_x, x_norm_sq, nu)
        + addition_gain(dv_norm_sq, dv_dot_x, x_norm_sq, nv)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force objective from explicit memberships.
    fn objective_from_scratch(points: &[Vec<f32>], labels: &[usize], k: usize) -> f64 {
        let d = points[0].len();
        let mut composites = vec![vec![0.0f64; d]; k];
        let mut sizes = vec![0usize; k];
        for (p, &l) in points.iter().zip(labels) {
            sizes[l] += 1;
            for (c, &v) in composites[l].iter_mut().zip(p) {
                *c += f64::from(v);
            }
        }
        (0..k)
            .map(|r| {
                if sizes[r] == 0 {
                    0.0
                } else {
                    composites[r].iter().map(|v| v * v).sum::<f64>() / sizes[r] as f64
                }
            })
            .sum()
    }

    fn sample_points() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0],
            vec![2.0, 1.0],
            vec![0.5, -1.0],
            vec![10.0, 10.0],
            vec![11.0, 9.0],
            vec![-3.0, 4.0],
        ]
    }

    #[test]
    fn cluster_term_handles_empty() {
        assert_eq!(cluster_term(25.0, 0), 0.0);
        assert_eq!(cluster_term(25.0, 5), 5.0);
    }

    #[test]
    fn delta_matches_recomputed_objective_difference() {
        let points = sample_points();
        let k = 2;
        let labels = vec![0, 0, 0, 1, 1, 0];
        // move sample 2 from cluster 0 to cluster 1
        let before = objective_from_scratch(&points, &labels, k);
        let mut after_labels = labels.clone();
        after_labels[2] = 1;
        let after = objective_from_scratch(&points, &after_labels, k);

        // composite vectors before the move
        let d = points[0].len();
        let mut composites = vec![vec![0.0f32; d]; k];
        let mut sizes = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            sizes[l] += 1;
            for (c, &v) in composites[l].iter_mut().zip(p) {
                *c += v;
            }
        }
        let delta = delta_i_reference(
            &composites[0],
            sizes[0],
            &composites[1],
            sizes[1],
            &points[2],
        );
        assert!(
            (delta - (after - before)).abs() < 1e-6,
            "delta {delta} vs recomputed {}",
            after - before
        );
    }

    #[test]
    fn delta_for_every_possible_move_matches_recomputation() {
        let points = sample_points();
        let k = 3;
        let labels = vec![0, 1, 0, 2, 2, 1];
        let d = points[0].len();
        let mut composites = vec![vec![0.0f32; d]; k];
        let mut sizes = vec![0usize; k];
        for (p, &l) in points.iter().zip(&labels) {
            sizes[l] += 1;
            for (c, &v) in composites[l].iter_mut().zip(p) {
                *c += v;
            }
        }
        let before = objective_from_scratch(&points, &labels, k);
        for i in 0..points.len() {
            let u = labels[i];
            for v in 0..k {
                if v == u {
                    continue;
                }
                let mut after_labels = labels.clone();
                after_labels[i] = v;
                let after = objective_from_scratch(&points, &after_labels, k);
                let delta = delta_i_reference(
                    &composites[u],
                    sizes[u],
                    &composites[v],
                    sizes[v],
                    &points[i],
                );
                assert!(
                    (delta - (after - before)).abs() < 1e-6,
                    "sample {i}: {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn emptying_a_singleton_cluster_is_well_defined() {
        let points = vec![vec![5.0f32, 5.0], vec![0.0, 0.0], vec![0.5, 0.0]];
        let labels = vec![0usize, 1, 1];
        // cluster 0 holds only sample 0; moving it to cluster 1 empties cluster 0
        let composites = [vec![5.0f32, 5.0], vec![0.5f32, 0.0]];
        let delta = delta_i_reference(&composites[0], 1, &composites[1], 2, &points[0]);
        let before = objective_from_scratch(&points, &labels, 2);
        let after = objective_from_scratch(&points, &[1, 1, 1], 2);
        assert!((delta - (after - before)).abs() < 1e-6);
    }

    #[test]
    fn moving_towards_identical_points_increases_objective() {
        // sample identical to the members of cluster v should want to join it
        let x = vec![2.0f32, 2.0];
        let du = vec![2.0f32 + 7.0, 2.0 + 7.0]; // cluster u: x plus an outlier at (7,7)
        let dv = vec![4.0f32, 4.0]; // cluster v: two copies of (2,2)
        let delta = delta_i_reference(&du, 2, &dv, 2, &x);
        assert!(delta > 0.0, "expected positive gain, got {delta}");
    }

    #[test]
    fn gains_are_antisymmetric_for_a_round_trip() {
        // Moving x from u to v and then back must sum to ~0.
        let x = vec![1.0f32, -2.0, 0.5];
        let du = vec![3.0f32, 1.0, 0.0];
        let dv = vec![-1.0f32, 2.0, 2.0];
        let forward = delta_i_reference(&du, 3, &dv, 2, &x);
        // after the move: du' = du - x (size 2), dv' = dv + x (size 3)
        let du2: Vec<f32> = du.iter().zip(&x).map(|(a, b)| a - b).collect();
        let dv2: Vec<f32> = dv.iter().zip(&x).map(|(a, b)| a + b).collect();
        let backward = delta_i_reference(&dv2, 3, &du2, 2, &x);
        assert!((forward + backward).abs() < 1e-6);
    }
}
