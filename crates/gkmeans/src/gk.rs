//! GK-means (Alg. 2): k-means iteration driven by a KNN graph.
//!
//! With an approximate KNN graph `G` available, each sample only needs to be
//! checked against the clusters in which its κ nearest neighbours currently
//! reside (Sec. 4.2).  The candidate set `Q` is therefore at most κ (usually
//! much smaller, because neighbours share clusters), which makes the
//! per-iteration cost `O(n·d·κ)` — independent of `k`.  That is the paper's
//! central speed-up.
//!
//! Two optimisation modes are provided, matching the configuration study of
//! Fig. 4:
//!
//! * [`GkMode::Boost`] — the standard GK-means: boost-k-means incremental
//!   moves maximising `ΔI` (Eqn. 3) restricted to `Q`;
//! * [`GkMode::Traditional`] — "GK-means⁻": the classic assign-to-closest-
//!   centroid rule restricted to `Q`, with batch centroid updates.  Same
//!   speed-up, inferior quality (as the paper observes).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use knn_graph::KnnGraph;
use vecstore::distance::dot;
use vecstore::parallel::effective_threads;
use vecstore::sample::{rng_from_seed, shuffled_order};
use vecstore::VectorSet;

use baselines::common::{
    average_distortion, recompute_centroids, CentroidAccumulator, Clustering, IterationStat,
};

use crate::epoch::{BoostEpochEngine, TraditionalEpochEngine, NORM_REFRESH_INTERVAL};
use crate::params::GkParams;
use crate::state::ClusterState;
use crate::two_means::TwoMeansTree;

/// Optimisation mode of GK-means (Fig. 4's configuration study).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GkMode {
    /// Boost-k-means incremental moves (the paper's standard configuration).
    #[default]
    Boost,
    /// Traditional closest-centroid assignment ("GK-means⁻").
    Traditional,
}

/// GK-means driver (Alg. 2).  The KNN graph is supplied by the caller, which
/// is how the paper separates the clustering algorithm from the graph
/// supplier (Alg. 3, NN-Descent, or an exact graph).
#[derive(Clone, Debug)]
pub struct GkMeans {
    /// Pipeline parameters; the fields used here are `kappa`, `iterations`,
    /// `mode`, `seed` and `record_trace`.
    pub params: GkParams,
}

impl GkMeans {
    /// Creates a GK-means driver.
    pub fn new(params: GkParams) -> Self {
        Self { params }
    }

    /// Clusters `data` into `k` clusters guided by `graph`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters are invalid for `(data.len(), k)` or when
    /// the graph does not cover the dataset.
    pub fn fit(&self, data: &VectorSet, k: usize, graph: &KnnGraph) -> Clustering {
        if let Err(msg) = self.params.validate(data.len(), k) {
            panic!("invalid GK-means parameters: {msg}");
        }
        assert_eq!(
            graph.len(),
            data.len(),
            "KNN graph covers {} samples but the dataset holds {}",
            graph.len(),
            data.len()
        );
        match self.params.mode {
            GkMode::Boost => self.fit_boost(data, k, graph),
            GkMode::Traditional => self.fit_traditional(data, k, graph),
        }
    }

    /// Standard GK-means: incremental boost-k-means moves restricted to the
    /// clusters of the κ graph neighbours.
    fn fit_boost(&self, data: &VectorSet, k: usize, graph: &KnnGraph) -> Clustering {
        let p = &self.params;
        let n = data.len();
        let mut rng = rng_from_seed(p.seed);

        // Alg. 2 line 3: initial clusters from the two-means tree, on the
        // same worker pool as the epochs (bit-identical at any thread count).
        let start = Instant::now();
        let labels = TwoMeansTree::new(p.seed)
            .threads(effective_threads(p.threads))
            .partition(data, k);
        let mut state = ClusterState::from_labels(data, labels, k);
        let init_time = start.elapsed();

        let sum_sq_norms: f64 = data.rows().map(|r| f64::from(dot(r, r))).sum();
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;
        let kappa = p.kappa.min(graph.k().max(1));
        // Alg. 2 lines 5–15 live in the epoch engine: the sequential loop at
        // threads <= 1, delta-batched rounds (bit-identical by construction)
        // above that.
        let mut engine = BoostEpochEngine::new(data, graph, kappa, effective_threads(p.threads), k);

        for epoch in 0..p.iterations {
            iterations = epoch + 1;
            let order = shuffled_order(&mut rng, n);
            let moves = engine.run_epoch(&mut state, &order, &mut distance_evals);
            if iterations % NORM_REFRESH_INTERVAL == 0 {
                // Bound f64 drift of the cached composite norms in long runs;
                // the schedule is fixed, so every thread count sees it at the
                // same epochs.
                state.refresh_norm_cache();
            }

            if p.record_trace {
                trace.push(IterationStat {
                    iteration: epoch,
                    distortion: state.distortion_from_objective(sum_sq_norms),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
            if moves == 0 {
                break;
            }
        }

        Clustering {
            labels: state.labels().to_vec(),
            centroids: state.centroids(),
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }

    /// "GK-means⁻": closest-centroid assignment restricted to the candidate
    /// clusters, batch centroid update per epoch.
    fn fit_traditional(&self, data: &VectorSet, k: usize, graph: &KnnGraph) -> Clustering {
        let p = &self.params;

        let start = Instant::now();
        let mut labels = TwoMeansTree::new(p.seed)
            .threads(effective_threads(p.threads))
            .partition(data, k);
        let mut centroids = VectorSet::zeros(k, data.dim()).expect("non-zero dim");
        recompute_centroids(data, &labels, &mut centroids);
        let init_time = start.elapsed();

        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;
        let kappa = p.kappa.min(graph.k().max(1));
        // The epoch engine assigns each sample to the closest candidate
        // centroid and fuses the batch centroid update into the sweep (the
        // accumulator below holds the epoch's sums), so the data streams once
        // per epoch.
        let mut engine =
            TraditionalEpochEngine::new(data, graph, kappa, effective_threads(p.threads));
        let mut accum = CentroidAccumulator::zero(k, data.dim());

        for epoch in 0..p.iterations {
            iterations = epoch + 1;
            let changes =
                engine.run_epoch(&mut labels, &centroids, &mut accum, &mut distance_evals);
            // Batch update from the fused sums; empty clusters keep their
            // previous centroid, as recompute_centroids would.
            accum.write_centroids(&mut centroids);

            if p.record_trace {
                trace.push(IterationStat {
                    iteration: epoch,
                    distortion: average_distortion(data, &labels, &centroids),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
            if changes == 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::common::KMeansConfig;
    use baselines::lloyd::LloydKMeans;
    use knn_graph::brute::exact_graph;

    fn blobs(per: usize, k: usize, spread: f32) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 25.0;
                rows.push(vec![
                    base + (i % 9) as f32 * spread,
                    base - (i % 5) as f32 * spread,
                    (i % 4) as f32 * spread,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn boost_mode_recovers_blobs_with_exact_graph() {
        let data = blobs(40, 4, 0.4);
        let graph = exact_graph(&data, 8);
        let params = GkParams::default().kappa(8).iterations(15).seed(1);
        let result = GkMeans::new(params).fit(&data, 4, &graph);
        assert_eq!(result.labels.len(), data.len());
        assert_eq!(result.non_empty_clusters(), 4);
        assert!(
            result.distortion(&data) < 3.0,
            "distortion {}",
            result.distortion(&data)
        );
    }

    #[test]
    fn traditional_mode_also_works_but_is_not_better() {
        let data = blobs(40, 4, 2.0);
        let graph = exact_graph(&data, 8);
        let boost =
            GkMeans::new(GkParams::default().kappa(8).iterations(20).seed(2)).fit(&data, 4, &graph);
        let trad = GkMeans::new(
            GkParams::default()
                .kappa(8)
                .iterations(20)
                .seed(2)
                .mode(GkMode::Traditional),
        )
        .fit(&data, 4, &graph);
        assert_eq!(trad.labels.len(), data.len());
        // The paper's Fig. 4 finding: the boost-based configuration reaches
        // distortion at least as low as the traditional one.
        assert!(boost.distortion(&data) <= trad.distortion(&data) * 1.05);
    }

    #[test]
    fn distance_evals_do_not_scale_with_k() {
        // The core claim: per-iteration cost depends on κ, not on k.
        let data = blobs(20, 16, 0.5); // 320 samples
        let graph = exact_graph(&data, 6);
        let small_k = GkMeans::new(
            GkParams::default()
                .kappa(6)
                .iterations(5)
                .seed(3)
                .record_trace(false),
        )
        .fit(&data, 4, &graph);
        let large_k = GkMeans::new(
            GkParams::default()
                .kappa(6)
                .iterations(5)
                .seed(3)
                .record_trace(false),
        )
        .fit(&data, 64, &graph);
        let per_iter_small = small_k.distance_evals as f64 / small_k.iterations as f64;
        let per_iter_large = large_k.distance_evals as f64 / large_k.iterations as f64;
        // The candidate set per sample is bounded by κ regardless of k, so the
        // per-iteration cost is at most n·κ for both runs…
        let kappa_bound = (data.len() * 6) as f64;
        assert!(per_iter_small <= kappa_bound, "small {per_iter_small}");
        assert!(per_iter_large <= kappa_bound, "large {per_iter_large}");
        // …which is far below the exhaustive n·k cost of Lloyd at k = 64.
        assert!(per_iter_large < (data.len() * 64) as f64 / 4.0);
    }

    #[test]
    fn close_to_lloyd_quality_with_far_fewer_distance_evals_at_large_k() {
        let data = blobs(25, 12, 1.0); // 300 samples, k=12
        let graph = exact_graph(&data, 10);
        let lloyd = LloydKMeans::new(KMeansConfig::with_k(12).max_iters(15).seed(4)).fit(&data);
        let gk = GkMeans::new(GkParams::default().kappa(10).iterations(15).seed(4))
            .fit(&data, 12, &graph);
        assert!(gk.distance_evals < lloyd.distance_evals / 2);
        assert!(gk.distortion(&data) <= lloyd.distortion(&data) * 1.25 + 0.5);
    }

    #[test]
    fn trace_distortion_is_non_increasing_in_boost_mode() {
        let data = blobs(30, 3, 0.8);
        let graph = exact_graph(&data, 5);
        let result =
            GkMeans::new(GkParams::default().kappa(5).iterations(12).seed(5)).fit(&data, 3, &graph);
        let d: Vec<f64> = result.trace.iter().map(|t| t.distortion).collect();
        for w in d.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "{w:?}");
        }
    }

    #[test]
    fn kappa_larger_than_graph_degree_is_clamped() {
        let data = blobs(15, 3, 0.3);
        let graph = exact_graph(&data, 3);
        let result =
            GkMeans::new(GkParams::default().kappa(50).iterations(5).seed(6)).fit(&data, 3, &graph);
        assert_eq!(result.labels.len(), data.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(20, 3, 0.6);
        let graph = exact_graph(&data, 5);
        let a =
            GkMeans::new(GkParams::default().kappa(5).iterations(8).seed(7)).fit(&data, 3, &graph);
        let b =
            GkMeans::new(GkParams::default().kappa(5).iterations(8).seed(7)).fit(&data, 3, &graph);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "invalid GK-means parameters")]
    fn invalid_params_panic() {
        let data = blobs(5, 1, 0.1);
        let graph = exact_graph(&data, 2);
        let _ = GkMeans::new(GkParams::default()).fit(&data, 0, &graph);
    }

    #[test]
    #[should_panic(expected = "KNN graph covers")]
    fn graph_size_mismatch_panics() {
        let data = blobs(5, 2, 0.1);
        let other = blobs(3, 2, 0.1);
        let graph = exact_graph(&other, 2);
        let _ = GkMeans::new(GkParams::default().kappa(2)).fit(&data, 2, &graph);
    }
}
