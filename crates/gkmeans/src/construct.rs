//! KNN-graph construction by fast k-means (Alg. 3).
//!
//! The intertwined evolving process of Sec. 4.3 / Fig. 3:
//!
//! ```text
//!   G⁰ ← random lists
//!   repeat τ times:
//!       S ← GK-means(X, n/ξ, Gᵗ)          (one clustering pass guided by Gᵗ)
//!       for every cluster S_m ∈ S:
//!           exhaustively compare the pairs inside S_m
//!           and update Gᵗ with any closer pair found
//! ```
//!
//! Each round improves the graph, which improves the next round's clusters,
//! which improves the graph again (Fig. 2).  The per-round complexity is
//! `O(d·n·log(n/ξ) + d·n·κ + d·n·ξ)` (Sec. 4.5) and the graph it produces —
//! unlike NN-Descent's — carries the intermediate clustering structure, which
//! is why GK-means converges to slightly lower distortion with it (Fig. 4,
//! Tab. 2).

use std::time::{Duration, Instant};

use fxhash::FxHashSet;
use vecstore::kernels;
use vecstore::VectorSet;

use knn_graph::random::random_graph;
use knn_graph::KnnGraph;

use crate::gk::GkMeans;
use crate::params::GkParams;

/// Statistics of one construction run.
#[derive(Clone, Debug, Default)]
pub struct GraphBuildStats {
    /// Number of executed rounds (== τ unless the caller stopped early).
    pub rounds: usize,
    /// Total number of pairwise distance evaluations in the refinement steps.
    pub refine_distance_evals: u64,
    /// Total number of candidate-cluster evaluations inside the GK-means calls.
    pub clustering_distance_evals: u64,
    /// Number of graph-list updates that actually improved a list.
    pub graph_updates: u64,
    /// Wall-clock time of the whole construction.
    pub elapsed: Duration,
}

/// Per-round observation handed to [`KnnGraphBuilder::build_with_observer`];
/// Fig. 2 plots exactly these quantities against τ.
#[derive(Clone, Copy, Debug)]
pub struct RoundInfo {
    /// Round index (1-based, matching the τ axis of Fig. 2).
    pub round: usize,
    /// Average distortion of the clustering produced in this round.
    pub distortion: f64,
    /// Cumulative wall-clock seconds since construction started.
    pub elapsed_secs: f64,
}

/// Builder implementing Alg. 3.
#[derive(Clone, Debug)]
pub struct KnnGraphBuilder {
    /// Pipeline parameters; the fields used here are `xi`, `tau`, `kappa`,
    /// `seed`, `mode` and `dedup_pairs`.
    pub params: GkParams,
    /// Neighbour-list size of the produced graph; defaults to `params.kappa`.
    pub graph_k: usize,
}

impl KnnGraphBuilder {
    /// Creates a builder producing a graph with κ = `params.kappa` neighbours.
    pub fn new(params: GkParams) -> Self {
        Self {
            graph_k: params.kappa,
            params,
        }
    }

    /// Overrides the neighbour-list size of the produced graph.
    #[must_use]
    pub fn graph_k(mut self, graph_k: usize) -> Self {
        self.graph_k = graph_k.max(1);
        self
    }

    /// Number of construction clusters `k₀ = ⌊n/ξ⌋` (Alg. 3 line 5), clamped
    /// to at least 1 and at most `n`.
    pub fn construction_clusters(&self, n: usize) -> usize {
        (n / self.params.xi.max(2)).clamp(1, n.max(1))
    }

    /// Runs Alg. 3 and returns the graph plus cost statistics.
    pub fn build(&self, data: &VectorSet) -> (KnnGraph, GraphBuildStats) {
        self.build_with_observer(data, |_| {})
    }

    /// Runs Alg. 3, invoking `observer` after every round with the round's
    /// clustering distortion — the hook used to regenerate Fig. 2.
    pub fn build_with_observer(
        &self,
        data: &VectorSet,
        mut observer: impl FnMut(RoundInfo),
    ) -> (KnnGraph, GraphBuildStats) {
        let n = data.len();
        let mut stats = GraphBuildStats::default();
        let start = Instant::now();
        if n == 0 {
            return (KnnGraph::empty(0, self.graph_k), stats);
        }

        // Alg. 3 line 4: random initial graph.
        let mut graph = random_graph(
            data,
            self.graph_k.min(n.saturating_sub(1)),
            self.params.seed,
        );
        let k0 = self.construction_clusters(n);

        // The GK-means call inside the construction runs a single optimisation
        // pass (Sec. 4.5: "t is fixed to 1 in the KNN graph construction").
        let inner_params = self
            .params
            .iterations(1)
            .record_trace(false)
            .kappa(self.params.kappa.min(self.graph_k));

        // The visited-pair set sits inside the innermost refinement loop;
        // Fx hashing keeps the membership test far cheaper than SipHash.
        let mut visited: FxHashSet<u64> = FxHashSet::default();
        let mut partners: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        let dim = data.dim();
        for round in 0..self.params.tau {
            stats.rounds = round + 1;
            // Alg. 3 line 7: cluster the data guided by the current graph.
            let clustering = GkMeans::new(inner_params.seed(self.params.seed ^ (round as u64 + 1)))
                .fit(data, k0, &graph);
            stats.clustering_distance_evals += clustering.distance_evals;

            // Alg. 3 lines 8–14: exhaustive comparison inside every cluster.
            // For each anchor sample the non-deduplicated partners are scored
            // in one batched gather, then merged into the graph in the same
            // order the scalar loop used.
            let mut members: Vec<Vec<u32>> = vec![Vec::new(); k0];
            for (i, &label) in clustering.labels.iter().enumerate() {
                members[label].push(i as u32);
            }
            for cluster in &members {
                for (a_idx, &i) in cluster.iter().enumerate() {
                    partners.clear();
                    for &j in cluster.iter().skip(a_idx + 1) {
                        if self.params.dedup_pairs && !visited.insert(pair_key(i, j)) {
                            continue;
                        }
                        partners.push(j);
                    }
                    if partners.is_empty() {
                        continue;
                    }
                    dists.resize(partners.len(), 0.0);
                    kernels::l2_sq_one_to_many_indexed(
                        data.row(i as usize),
                        data.as_flat(),
                        dim,
                        &partners,
                        &mut dists,
                    );
                    stats.refine_distance_evals += partners.len() as u64;
                    for (&j, &d) in partners.iter().zip(&dists) {
                        stats.graph_updates += graph.update_pair(i as usize, j as usize, d) as u64;
                    }
                }
            }

            observer(RoundInfo {
                round: round + 1,
                distortion: clustering.distortion(data),
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }

        stats.elapsed = start.elapsed();
        (graph, stats)
    }
}

/// Canonical key of an unordered pair for the visited-set (Alg. 3 line 10).
#[inline]
fn pair_key(i: u32, j: u32) -> u64 {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    (u64::from(hi) << 32) | u64::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::exact_graph;
    use knn_graph::recall::graph_recall_at_1;
    use rand::Rng;
    use vecstore::distance::l2_sq;
    use vecstore::sample::rng_from_seed;

    fn clustered(n: usize, dim: usize, groups: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % groups;
            let mut row = Vec::with_capacity(dim);
            for d in 0..dim {
                let centre = ((g * 7 + d) % 13) as f32 * 4.0;
                row.push(centre + rng.gen_range(-0.5..0.5));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn pair_key_is_symmetric_and_unique() {
        assert_eq!(pair_key(3, 9), pair_key(9, 3));
        assert_ne!(pair_key(3, 9), pair_key(3, 10));
        assert_ne!(pair_key(0, 1), pair_key(1, 2));
    }

    #[test]
    fn construction_cluster_count_follows_xi() {
        let builder = KnnGraphBuilder::new(GkParams::default().xi(50));
        assert_eq!(builder.construction_clusters(5_000), 100);
        assert_eq!(builder.construction_clusters(49), 1);
        let builder = KnnGraphBuilder::new(GkParams::default().xi(10));
        assert_eq!(builder.construction_clusters(500), 50);
    }

    #[test]
    fn recall_improves_over_random_and_over_rounds() {
        let data = clustered(600, 8, 12, 1);
        let exact = exact_graph(&data, 5);
        let random = random_graph(&data, 5, 99);
        let random_recall = graph_recall_at_1(&random, &exact);

        let params = GkParams::default().xi(20).tau(6).kappa(5).seed(2);
        let mut per_round = Vec::new();
        let (graph, stats) = KnnGraphBuilder::new(params)
            .graph_k(5)
            .build_with_observer(&data, |info| per_round.push(info.distortion));
        let recall = graph_recall_at_1(&graph, &exact);
        assert!(stats.rounds == 6);
        assert!(stats.refine_distance_evals > 0);
        assert!(stats.graph_updates > 0);
        assert!(
            recall > random_recall + 0.3,
            "built {recall} vs random {random_recall}"
        );
        assert!(recall > 0.6, "expected decent recall, got {recall}");
        // Fig. 2's qualitative claim: clustering distortion drops as τ grows.
        assert_eq!(per_round.len(), 6);
        assert!(
            per_round.last().unwrap() <= per_round.first().unwrap(),
            "{per_round:?}"
        );
    }

    #[test]
    fn dedup_avoids_recomputing_pairs() {
        let data = clustered(300, 6, 6, 3);
        let params = GkParams::default().xi(15).tau(4).kappa(4).seed(5);
        let (_, with_dedup) = KnnGraphBuilder::new(params).graph_k(4).build(&data);
        let (_, without_dedup) = KnnGraphBuilder::new(params.dedup_pairs(false))
            .graph_k(4)
            .build(&data);
        assert!(
            with_dedup.refine_distance_evals < without_dedup.refine_distance_evals,
            "dedup {} vs no-dedup {}",
            with_dedup.refine_distance_evals,
            without_dedup.refine_distance_evals
        );
    }

    #[test]
    fn graphs_store_exact_distances_for_their_edges() {
        let data = clustered(200, 4, 5, 7);
        let (graph, _) = KnnGraphBuilder::new(GkParams::default().xi(10).tau(3).kappa(4).seed(7))
            .graph_k(4)
            .build(&data);
        for (i, list) in graph.iter() {
            for nb in list.as_slice() {
                let expect = l2_sq(data.row(i), data.row(nb.id as usize));
                assert!((nb.dist - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn handles_tiny_and_empty_datasets() {
        let empty = VectorSet::zeros(0, 4).unwrap();
        let (g, stats) = KnnGraphBuilder::new(GkParams::default().tau(2)).build(&empty);
        assert_eq!(g.len(), 0);
        assert_eq!(stats.rounds, 0);

        let tiny = clustered(8, 3, 2, 9);
        let (g, _) = KnnGraphBuilder::new(GkParams::default().xi(4).tau(2).kappa(3).seed(1))
            .graph_k(3)
            .build(&tiny);
        assert_eq!(g.len(), 8);
        assert!(g.mean_degree() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = clustered(150, 6, 5, 11);
        let params = GkParams::default().xi(15).tau(3).kappa(4).seed(21);
        let (a, _) = KnnGraphBuilder::new(params).graph_k(4).build(&data);
        let (b, _) = KnnGraphBuilder::new(params).graph_k(4).build(&data);
        for i in 0..data.len() {
            assert_eq!(
                a.neighbors(i).ids().collect::<Vec<_>>(),
                b.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
    }
}
