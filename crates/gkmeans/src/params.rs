//! Parameters of the GK-means pipeline (Sec. 4.4).
//!
//! Three parameters drive the proposed method besides `k`:
//!
//! * `τ` (tau) — number of graph-construction rounds in Alg. 3; 10 suffices
//!   for clustering, up to 32 when the graph is built for ANN search;
//! * `ξ` (xi) — target cluster size during graph construction (the
//!   recommended range is 40–100, the paper fixes 50);
//! * `κ` (kappa) — neighbours consulted per sample during GK-means
//!   iteration; quality stabilises for κ ≥ 40, the paper fixes 50.

use serde::{Deserialize, Serialize};

use crate::gk::GkMode;

/// Full parameter set of the GK-means pipeline.
///
/// Built fluently; unset fields keep the paper's defaults (κ = ξ = 50,
/// τ = 10, 30 iterations, boost mode, single thread):
///
/// ```
/// use gkmeans::{GkMode, GkParams};
///
/// let p = GkParams::default().kappa(20).tau(5).threads(4).mode(GkMode::Traditional);
/// assert_eq!(p.kappa, 20);
/// assert_eq!(p.xi, 50); // untouched fields keep the paper's values
/// assert_eq!(p.threads, Some(4)); // bit-identical output at any thread count
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GkParams {
    /// Number of neighbours κ consulted per sample during clustering.
    pub kappa: usize,
    /// Target cluster size ξ used during KNN-graph construction.
    pub xi: usize,
    /// Number of graph-construction rounds τ.
    pub tau: usize,
    /// Number of clustering iterations (epochs over the data) in the final
    /// GK-means run; the paper fixes 30 for the scalability tests.
    pub iterations: usize,
    /// Optimisation mode: boost-k-means moves (the standard "GK-means") or
    /// the traditional closest-centroid variant ("GK-means⁻", Fig. 4).
    pub mode: GkMode,
    /// RNG seed.
    pub seed: u64,
    /// Record the per-iteration distortion/time trace (costs an extra `O(n)`
    /// objective evaluation per iteration — cheap, but off for pure
    /// scalability timings).
    pub record_trace: bool,
    /// Deduplicate sample pairs across graph-construction rounds (Alg. 3
    /// line 10 "if <i,j> is NOT visited"); costs memory proportional to the
    /// number of compared pairs.
    pub dedup_pairs: bool,
    /// Worker threads for the GK-means pipeline, `None` (or `Some(0|1)`)
    /// meaning the paper-faithful single-threaded iteration ("simulations are
    /// conducted by single thread", Sec. 5).
    ///
    /// **Determinism guarantee:** labels, centroids, the distortion trace and
    /// `distance_evals` are bit-identical at every thread count.  Boost
    /// epochs are delta-batched — row blocks score their κ-candidate gains in
    /// parallel against a state snapshot, and a sequential conflict-resolving
    /// apply phase commits the moves in the exact shuffled order the
    /// single-threaded loop would, re-scoring any sample whose candidate
    /// clusters were touched by an earlier move of the same batch.
    /// Traditional (GK-means⁻) epochs batch the same way against the epoch's
    /// fixed centroids.  The two-means-tree initialisation rides the same
    /// worker pool (fixed-block merges plus delta-batched refinement rounds
    /// that re-snapshot after every committed move).  Threads change
    /// wall-clock time and nothing else.
    ///
    /// Defaults to the `GKM_THREADS` environment override when set (see
    /// [`vecstore::parallel::threads_from_env`]), which is how CI re-runs the
    /// whole suite threaded.
    pub threads: Option<usize>,
}

impl Default for GkParams {
    fn default() -> Self {
        Self {
            kappa: 50,
            xi: 50,
            tau: 10,
            iterations: 30,
            mode: GkMode::Boost,
            seed: 0,
            record_trace: true,
            dedup_pairs: true,
            threads: vecstore::parallel::threads_from_env(),
        }
    }
}

impl GkParams {
    /// Sets κ (neighbours consulted per sample).
    #[must_use]
    pub fn kappa(mut self, kappa: usize) -> Self {
        self.kappa = kappa;
        self
    }

    /// Sets ξ (graph-construction cluster size).
    #[must_use]
    pub fn xi(mut self, xi: usize) -> Self {
        self.xi = xi;
        self
    }

    /// Sets τ (graph-construction rounds).
    #[must_use]
    pub fn tau(mut self, tau: usize) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the number of clustering iterations.
    #[must_use]
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Selects the optimisation mode.
    #[must_use]
    pub fn mode(mut self, mode: GkMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables trace recording.
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Enables or disables cross-round pair deduplication during graph
    /// construction.
    #[must_use]
    pub fn dedup_pairs(mut self, dedup: bool) -> Self {
        self.dedup_pairs = dedup;
        self
    }

    /// Sets the worker thread count of the epoch engine (see
    /// [`GkParams::threads`] for the determinism guarantee; `0` and `1` both
    /// mean sequential).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validates the parameters against a dataset size and cluster count.
    pub fn validate(&self, n: usize, k: usize) -> Result<(), String> {
        if n == 0 {
            return Err("dataset is empty".into());
        }
        if k == 0 {
            return Err("k must be positive".into());
        }
        if k > n {
            return Err(format!("k ({k}) exceeds the number of samples ({n})"));
        }
        if self.kappa == 0 {
            return Err("kappa must be positive".into());
        }
        if self.xi < 2 {
            return Err("xi must be at least 2".into());
        }
        if self.tau == 0 {
            return Err("tau must be positive".into());
        }
        if self.iterations == 0 {
            return Err("iterations must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = GkParams::default();
        assert_eq!(p.kappa, 50);
        assert_eq!(p.xi, 50);
        assert_eq!(p.tau, 10);
        assert_eq!(p.iterations, 30);
        assert_eq!(p.mode, GkMode::Boost);
        assert!(p.record_trace);
        assert!(p.dedup_pairs);
        // the default honours the CI matrix override and is otherwise the
        // paper-faithful single thread
        assert_eq!(p.threads, vecstore::parallel::threads_from_env());
    }

    #[test]
    fn builder_round_trip() {
        let p = GkParams::default()
            .kappa(10)
            .xi(20)
            .tau(5)
            .iterations(7)
            .mode(GkMode::Traditional)
            .seed(99)
            .record_trace(false)
            .dedup_pairs(false)
            .threads(4);
        assert_eq!(p.kappa, 10);
        assert_eq!(p.xi, 20);
        assert_eq!(p.tau, 5);
        assert_eq!(p.iterations, 7);
        assert_eq!(p.mode, GkMode::Traditional);
        assert_eq!(p.seed, 99);
        assert!(!p.record_trace);
        assert!(!p.dedup_pairs);
        assert_eq!(p.threads, Some(4));
    }

    #[test]
    fn validation_catches_bad_params() {
        let ok = GkParams::default();
        assert!(ok.validate(1000, 10).is_ok());
        assert!(ok.validate(0, 10).is_err());
        assert!(ok.validate(1000, 0).is_err());
        assert!(ok.validate(5, 10).is_err());
        assert!(GkParams::default().kappa(0).validate(100, 5).is_err());
        assert!(GkParams::default().xi(1).validate(100, 5).is_err());
        assert!(GkParams::default().tau(0).validate(100, 5).is_err());
        assert!(GkParams::default().iterations(0).validate(100, 5).is_err());
    }
}
