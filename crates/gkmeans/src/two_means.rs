//! Two-means (2M) tree — Alg. 1 of the paper (after Verma, Kpotufe &
//! Dasgupta, UAI 2009).
//!
//! A hierarchical bisecting partitioner: repeatedly pop the largest cluster,
//! bisect it with 2-means, and **adjust the two halves to equal size** — the
//! adjustment is what distinguishes the 2M tree from plain bisecting k-means
//! and is essential for the graph-construction step of Alg. 3, where every
//! cluster must contain roughly ξ samples so the exhaustive in-cluster
//! comparison stays `O(n·ξ·d)`.
//!
//! Complexity `O(d·n·log k)` (Sec. 3.2): each level of the implicit tree
//! touches every sample a constant number of times.  Following the paper, the
//! bisection is refined with boost-k-means-style incremental moves before the
//! equal-size adjustment (Sec. 3.2: "the aforementioned boost k-means is
//! integrated in the bisecting operation").

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::objective::delta_i_reference;

/// Two-means tree partitioner.
#[derive(Clone, Debug)]
pub struct TwoMeansTree {
    seed: u64,
    /// Number of 2-means refinement iterations per bisection.
    refine_iters: usize,
    /// Whether to run the boost-k-means incremental refinement pass on each
    /// bisection before the equal-size adjustment.
    boost_refine: bool,
}

impl TwoMeansTree {
    /// Creates a partitioner with the workspace defaults (5 refinement
    /// iterations, boost refinement on).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            refine_iters: 5,
            boost_refine: true,
        }
    }

    /// Overrides the number of plain 2-means refinement iterations.
    #[must_use]
    pub fn refine_iters(mut self, iters: usize) -> Self {
        self.refine_iters = iters.max(1);
        self
    }

    /// Enables/disables the boost-k-means refinement inside each bisection.
    #[must_use]
    pub fn boost_refine(mut self, on: bool) -> Self {
        self.boost_refine = on;
        self
    }

    /// Partitions `data` into exactly `k` clusters and returns the label of
    /// every sample (Alg. 1's `cLabel`).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or `k > data.len()`.
    pub fn partition(&self, data: &VectorSet, k: usize) -> Vec<usize> {
        assert!(k > 0, "k must be positive");
        assert!(
            k <= data.len(),
            "k ({k}) exceeds the number of samples ({})",
            data.len()
        );
        let n = data.len();
        let mut rng = rng_from_seed(self.seed);
        // clusters as index lists; Alg. 1 maps labels → partition S up front
        let mut clusters: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        while clusters.len() < k {
            // Pop S_i with the largest size (Alg. 1 line 7).
            let (idx, _) = clusters
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.len())
                .expect("at least one cluster");
            let target = clusters.swap_remove(idx);
            let (su, sv) = self.bisect_equal(data, &target, &mut rng);
            clusters.push(su);
            clusters.push(sv);
        }
        // Map S back to labels (Alg. 1 line 13).
        let mut labels = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &s in members {
                labels[s as usize] = c;
            }
        }
        labels
    }

    /// Bisects `members` into two halves of (near-)equal size: 2-means,
    /// optional boost refinement, then the equal-size adjustment (Alg. 1
    /// line 8–9).  Exposed for the graph-construction unit tests.
    pub fn bisect_equal(
        &self,
        data: &VectorSet,
        members: &[u32],
        rng: &mut impl Rng,
    ) -> (Vec<u32>, Vec<u32>) {
        assert!(members.len() >= 2, "cannot bisect fewer than two samples");
        let dim = data.dim();

        // --- plain 2-means ----------------------------------------------------
        let a = members[rng.gen_range(0..members.len())] as usize;
        let mut b = members[rng.gen_range(0..members.len())] as usize;
        let mut tries = 0;
        while b == a && tries < 16 {
            b = members[rng.gen_range(0..members.len())] as usize;
            tries += 1;
        }
        let mut c0 = data.row(a).to_vec();
        let mut c1 = data.row(b).to_vec();
        let mut side = vec![false; members.len()]; // false → cluster 0
        for _ in 0..self.refine_iters {
            let mut changed = false;
            for (slot, &s) in members.iter().enumerate() {
                let x = data.row(s as usize);
                let to_one = l2_sq(x, &c1) < l2_sq(x, &c0);
                if to_one != side[slot] {
                    side[slot] = to_one;
                    changed = true;
                }
            }
            // recompute the two centroids
            let mut acc0 = vec![0.0f64; dim];
            let mut acc1 = vec![0.0f64; dim];
            let mut n0 = 0usize;
            let mut n1 = 0usize;
            for (slot, &s) in members.iter().enumerate() {
                let x = data.row(s as usize);
                if side[slot] {
                    n1 += 1;
                    for (acc, &v) in acc1.iter_mut().zip(x) {
                        *acc += f64::from(v);
                    }
                } else {
                    n0 += 1;
                    for (acc, &v) in acc0.iter_mut().zip(x) {
                        *acc += f64::from(v);
                    }
                }
            }
            if n0 > 0 {
                for (c, acc) in c0.iter_mut().zip(&acc0) {
                    *c = (*acc / n0 as f64) as f32;
                }
            }
            if n1 > 0 {
                for (c, acc) in c1.iter_mut().zip(&acc1) {
                    *c = (*acc / n1 as f64) as f32;
                }
            }
            if !changed {
                break;
            }
        }

        // --- boost-k-means refinement (incremental ΔI moves on the 2-cluster
        //     subproblem) -------------------------------------------------------
        if self.boost_refine {
            let mut comp = [vec![0.0f32; dim], vec![0.0f32; dim]];
            let mut sizes = [0usize, 0usize];
            for (slot, &s) in members.iter().enumerate() {
                let which = usize::from(side[slot]);
                sizes[which] += 1;
                for (c, &v) in comp[which].iter_mut().zip(data.row(s as usize)) {
                    *c += v;
                }
            }
            for (slot, &s) in members.iter().enumerate() {
                let from = usize::from(side[slot]);
                let to = 1 - from;
                if sizes[from] <= 1 {
                    continue;
                }
                let x = data.row(s as usize);
                let delta = delta_i_reference(&comp[from], sizes[from], &comp[to], sizes[to], x);
                if delta > 0.0 {
                    for (c, &v) in comp[from].iter_mut().zip(x) {
                        *c -= v;
                    }
                    for (c, &v) in comp[to].iter_mut().zip(x) {
                        *c += v;
                    }
                    sizes[from] -= 1;
                    sizes[to] += 1;
                    side[slot] = !side[slot];
                }
            }
        }

        // --- equal-size adjustment (Alg. 1 line 9) -----------------------------
        // Move the boundary samples (smallest distance margin) of the larger
        // half to the smaller half until the sizes differ by at most one.
        let mut left: Vec<u32> = Vec::new();
        let mut right: Vec<u32> = Vec::new();
        for (slot, &s) in members.iter().enumerate() {
            if side[slot] {
                right.push(s);
            } else {
                left.push(s);
            }
        }
        // Recompute the final centroids of both halves for the margin ordering.
        let centroid_of = |part: &[u32]| -> Vec<f32> {
            let mut acc = vec![0.0f64; dim];
            for &s in part {
                for (a, &v) in acc.iter_mut().zip(data.row(s as usize)) {
                    *a += f64::from(v);
                }
            }
            let inv = 1.0 / part.len().max(1) as f64;
            acc.into_iter().map(|a| (a * inv) as f32).collect()
        };
        loop {
            let (big, small) = if left.len() > right.len() + 1 {
                (&mut left, &mut right)
            } else if right.len() > left.len() + 1 {
                (&mut right, &mut left)
            } else {
                break;
            };
            let big_c = centroid_of(big);
            let small_c = centroid_of(small);
            // margin = d(x, small centroid) − d(x, own centroid); smallest margin
            // samples sit on the boundary and are the cheapest to move.
            let mut best_slot = 0usize;
            let mut best_margin = f32::INFINITY;
            for (slot, &s) in big.iter().enumerate() {
                let x = data.row(s as usize);
                let margin = l2_sq(x, &small_c) - l2_sq(x, &big_c);
                if margin < best_margin {
                    best_margin = margin;
                    best_slot = slot;
                }
            }
            let moved = big.swap_remove(best_slot);
            small.push(moved);
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 30.0;
                rows.push(vec![
                    base + (i % 6) as f32 * 0.4,
                    base - (i % 4) as f32 * 0.3,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn partition_produces_k_nonempty_balanced_clusters() {
        let data = blobs(32, 4); // 128 samples
        let labels = TwoMeansTree::new(1).partition(&data, 8);
        assert_eq!(labels.len(), 128);
        let mut sizes = vec![0usize; 8];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0));
        // Equal-size adjustment ⇒ cluster sizes stay within a factor ~2 of n/k.
        let target = 128 / 8;
        assert!(
            sizes.iter().all(|&s| s >= target / 2 && s <= target * 2),
            "{sizes:?}"
        );
    }

    #[test]
    fn bisect_equal_halves_differ_by_at_most_one() {
        let data = blobs(25, 2); // 50 samples, odd splits exercised below
        let members: Vec<u32> = (0..31u32).collect();
        let mut rng = rng_from_seed(3);
        let (l, r) = TwoMeansTree::new(3).bisect_equal(&data, &members, &mut rng);
        assert_eq!(l.len() + r.len(), 31);
        assert!(l.len().abs_diff(r.len()) <= 1, "{} vs {}", l.len(), r.len());
    }

    #[test]
    fn bisect_separable_groups_respects_structure_before_balancing() {
        // Two blobs of equal size: the equal-size bisection should recover them.
        let data = blobs(20, 2);
        let members: Vec<u32> = (0..40u32).collect();
        let mut rng = rng_from_seed(5);
        let (l, r) = TwoMeansTree::new(5).bisect_equal(&data, &members, &mut rng);
        assert_eq!(l.len(), 20);
        assert_eq!(r.len(), 20);
        let blob_of = |s: u32| usize::from(s >= 20);
        let l_blob = blob_of(l[0]);
        assert!(l.iter().all(|&s| blob_of(s) == l_blob));
        assert!(r.iter().all(|&s| blob_of(s) != l_blob));
    }

    #[test]
    fn partition_handles_identical_points() {
        let data = VectorSet::from_rows(vec![vec![2.0, 2.0]; 12]).unwrap();
        let labels = TwoMeansTree::new(7).partition(&data, 4);
        let mut sizes = vec![0usize; 4];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert!(sizes.iter().all(|&s| s == 3), "{sizes:?}");
    }

    #[test]
    fn partition_k_equals_n_gives_singletons() {
        let data = blobs(3, 2); // 6 samples
        let labels = TwoMeansTree::new(2).partition(&data, 6);
        let mut sizes = [0usize; 6];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let data = blobs(20, 3);
        let a = TwoMeansTree::new(11).partition(&data, 6);
        let b = TwoMeansTree::new(11).partition(&data, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn boost_refinement_can_be_disabled() {
        let data = blobs(16, 2);
        let labels = TwoMeansTree::new(4)
            .boost_refine(false)
            .refine_iters(3)
            .partition(&data, 4);
        assert_eq!(labels.len(), 32);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = blobs(4, 1);
        let _ = TwoMeansTree::new(0).partition(&data, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of samples")]
    fn oversized_k_panics() {
        let data = blobs(2, 1);
        let _ = TwoMeansTree::new(0).partition(&data, 10);
    }
}
