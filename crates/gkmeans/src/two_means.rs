//! Two-means (2M) tree — Alg. 1 of the paper (after Verma, Kpotufe &
//! Dasgupta, UAI 2009).
//!
//! A hierarchical bisecting partitioner: repeatedly pop the largest cluster,
//! bisect it with 2-means, and **adjust the two halves to equal size** — the
//! adjustment is what distinguishes the 2M tree from plain bisecting k-means
//! and is essential for the graph-construction step of Alg. 3, where every
//! cluster must contain roughly ξ samples so the exhaustive in-cluster
//! comparison stays `O(n·ξ·d)`.
//!
//! Complexity `O(d·n·log k)` (Sec. 3.2): each level of the implicit tree
//! touches every sample a constant number of times.  Following the paper, the
//! bisection is refined with boost-k-means-style incremental moves before the
//! equal-size adjustment (Sec. 3.2: "the aforementioned boost k-means is
//! integrated in the bisecting operation").
//!
//! # Threading
//!
//! The partitioner rides the same deterministic substrate as the epoch
//! engines ([`vecstore::parallel`]): every loop over a cluster's members is
//! cut into fixed `BISECT_BLOCK`-sized blocks whose partial results (side
//! decisions, `f64` centroid sums, margin argmins) are merged in block order,
//! and the boost-refinement pass runs delta-batched rounds — parallel
//! snapshot scoring, ordered apply that ends the round at the first committed
//! move (a move invalidates every later snapshot score, and with two clusters
//! *every* move touches both).  Labels are therefore **bit-identical at any
//! thread count**, which the thread-invariance suite pins; the single block
//! structure is shared by the sequential and threaded paths.

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::parallel::run_blocks;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::objective::delta_i_reference;

/// Rows per fixed block of the bisection loops (assignment, centroid
/// accumulation, margin argmin).  Block boundaries — and therefore the
/// floating-point merge grouping — depend only on the member count, never on
/// the thread count.
const BISECT_BLOCK: usize = 1024;

/// Samples scored per boost-refinement round and worker thread.  Rounds
/// re-snapshot after every committed move, so the round length only bounds
/// how much snapshot scoring a move can invalidate — committed decisions are
/// bit-identical for any value.
const REFINE_BATCH_PER_THREAD: usize = 256;

/// Samples per parallel scoring work item inside a refinement round.
const REFINE_SCORE_BLOCK: usize = 64;

/// Two-means tree partitioner.
#[derive(Clone, Debug)]
pub struct TwoMeansTree {
    seed: u64,
    /// Number of 2-means refinement iterations per bisection.
    refine_iters: usize,
    /// Whether to run the boost-k-means incremental refinement pass on each
    /// bisection before the equal-size adjustment.
    boost_refine: bool,
    /// Worker threads (1 = everything on the calling thread).
    threads: usize,
}

/// One fixed block's contribution to a 2-means assignment sweep: the block's
/// new side decisions plus its partial centroid accumulators.
struct AssignBlock {
    side: Vec<bool>,
    changed: bool,
    acc0: Vec<f64>,
    acc1: Vec<f64>,
    n0: usize,
    n1: usize,
}

impl TwoMeansTree {
    /// Creates a partitioner with the workspace defaults (5 refinement
    /// iterations, boost refinement on, single-threaded).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            refine_iters: 5,
            boost_refine: true,
            threads: 1,
        }
    }

    /// Overrides the number of plain 2-means refinement iterations.
    #[must_use]
    pub fn refine_iters(mut self, iters: usize) -> Self {
        self.refine_iters = iters.max(1);
        self
    }

    /// Enables/disables the boost-k-means refinement inside each bisection.
    #[must_use]
    pub fn boost_refine(mut self, on: bool) -> Self {
        self.boost_refine = on;
        self
    }

    /// Sets the worker thread count (`0` and `1` both mean sequential).
    /// Labels are bit-identical at any thread count — threads change
    /// wall-clock time and nothing else.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Partitions `data` into exactly `k` clusters and returns the label of
    /// every sample (Alg. 1's `cLabel`).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or `k > data.len()`.
    pub fn partition(&self, data: &VectorSet, k: usize) -> Vec<usize> {
        assert!(k > 0, "k must be positive");
        assert!(
            k <= data.len(),
            "k ({k}) exceeds the number of samples ({})",
            data.len()
        );
        let n = data.len();
        let mut rng = rng_from_seed(self.seed);
        // clusters as index lists; Alg. 1 maps labels → partition S up front
        let mut clusters: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        while clusters.len() < k {
            // Pop S_i with the largest size (Alg. 1 line 7).
            let (idx, _) = clusters
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.len())
                .expect("at least one cluster");
            let target = clusters.swap_remove(idx);
            let (su, sv) = self.bisect_equal(data, &target, &mut rng);
            clusters.push(su);
            clusters.push(sv);
        }
        // Map S back to labels (Alg. 1 line 13).
        let mut labels = vec![0usize; n];
        for (c, members) in clusters.iter().enumerate() {
            for &s in members {
                labels[s as usize] = c;
            }
        }
        labels
    }

    /// Bisects `members` into two halves of (near-)equal size: 2-means,
    /// optional boost refinement, then the equal-size adjustment (Alg. 1
    /// line 8–9).  Exposed for the graph-construction unit tests.
    pub fn bisect_equal(
        &self,
        data: &VectorSet,
        members: &[u32],
        rng: &mut impl Rng,
    ) -> (Vec<u32>, Vec<u32>) {
        assert!(members.len() >= 2, "cannot bisect fewer than two samples");
        let dim = data.dim();
        let threads = self.threads;
        let n_blocks = members.len().div_ceil(BISECT_BLOCK);

        // --- plain 2-means ----------------------------------------------------
        let a = members[rng.gen_range(0..members.len())] as usize;
        let mut b = members[rng.gen_range(0..members.len())] as usize;
        let mut tries = 0;
        while b == a && tries < 16 {
            b = members[rng.gen_range(0..members.len())] as usize;
            tries += 1;
        }
        let mut c0 = data.row(a).to_vec();
        let mut c1 = data.row(b).to_vec();
        let mut side = vec![false; members.len()]; // false → cluster 0
        for _ in 0..self.refine_iters {
            // Fused assignment + centroid accumulation in fixed blocks: every
            // block decides its members against the iteration's frozen
            // centroids and accumulates its own f64 partials, merged below in
            // block order.
            let blocks: Vec<AssignBlock> = {
                let (c0, c1, side) = (&c0, &c1, &side);
                run_blocks(threads, n_blocks, |blk| {
                    let lo = blk * BISECT_BLOCK;
                    let hi = ((blk + 1) * BISECT_BLOCK).min(members.len());
                    let mut out = AssignBlock {
                        side: Vec::with_capacity(hi - lo),
                        changed: false,
                        acc0: vec![0.0f64; dim],
                        acc1: vec![0.0f64; dim],
                        n0: 0,
                        n1: 0,
                    };
                    for (slot, &s) in members[lo..hi].iter().enumerate() {
                        let x = data.row(s as usize);
                        let to_one = l2_sq(x, c1) < l2_sq(x, c0);
                        out.changed |= to_one != side[lo + slot];
                        out.side.push(to_one);
                        let acc = if to_one {
                            out.n1 += 1;
                            &mut out.acc1
                        } else {
                            out.n0 += 1;
                            &mut out.acc0
                        };
                        for (a, &v) in acc.iter_mut().zip(x) {
                            *a += f64::from(v);
                        }
                    }
                    out
                })
            };
            let mut changed = false;
            let mut acc0 = vec![0.0f64; dim];
            let mut acc1 = vec![0.0f64; dim];
            let mut n0 = 0usize;
            let mut n1 = 0usize;
            for (blk, block) in blocks.iter().enumerate() {
                let lo = blk * BISECT_BLOCK;
                side[lo..lo + block.side.len()].copy_from_slice(&block.side);
                changed |= block.changed;
                for (a, &v) in acc0.iter_mut().zip(&block.acc0) {
                    *a += v;
                }
                for (a, &v) in acc1.iter_mut().zip(&block.acc1) {
                    *a += v;
                }
                n0 += block.n0;
                n1 += block.n1;
            }
            if n0 > 0 {
                for (c, acc) in c0.iter_mut().zip(&acc0) {
                    *c = (*acc / n0 as f64) as f32;
                }
            }
            if n1 > 0 {
                for (c, acc) in c1.iter_mut().zip(&acc1) {
                    *c = (*acc / n1 as f64) as f32;
                }
            }
            if !changed {
                break;
            }
        }

        // --- boost-k-means refinement (incremental ΔI moves on the 2-cluster
        //     subproblem) -------------------------------------------------------
        if self.boost_refine {
            // Composite vectors and sizes, accumulated per fixed block and
            // merged in block order (the same grouping at every thread count).
            let mut comp = [vec![0.0f32; dim], vec![0.0f32; dim]];
            let mut sizes = [0usize, 0usize];
            {
                let side = &side;
                let partials: Vec<([Vec<f32>; 2], [usize; 2])> =
                    run_blocks(threads, n_blocks, |blk| {
                        let lo = blk * BISECT_BLOCK;
                        let hi = ((blk + 1) * BISECT_BLOCK).min(members.len());
                        let mut comp = [vec![0.0f32; dim], vec![0.0f32; dim]];
                        let mut sizes = [0usize, 0usize];
                        for (slot, &s) in members[lo..hi].iter().enumerate() {
                            let which = usize::from(side[lo + slot]);
                            sizes[which] += 1;
                            for (c, &v) in comp[which].iter_mut().zip(data.row(s as usize)) {
                                *c += v;
                            }
                        }
                        (comp, sizes)
                    });
                for (pcomp, psizes) in &partials {
                    for which in 0..2 {
                        sizes[which] += psizes[which];
                        for (c, &v) in comp[which].iter_mut().zip(&pcomp[which]) {
                            *c += v;
                        }
                    }
                }
            }
            // Delta-batched incremental moves: rounds score their ΔI against
            // a snapshot in parallel; the ordered apply phase commits
            // decisions while the state still equals the snapshot and ends
            // the round at the first move (with two clusters, every move
            // invalidates every later snapshot score).  Each committed
            // decision is therefore evaluated against exactly the state the
            // sequential loop would see — bit-identical by construction.
            let round_len = threads * REFINE_BATCH_PER_THREAD;
            let mut pos = 0usize;
            while pos < members.len() {
                let end = (pos + round_len).min(members.len());
                let proposals: Vec<Option<f64>> = {
                    let (comp, sizes, side) = (&comp, &sizes, &side);
                    let score_blocks = (end - pos).div_ceil(REFINE_SCORE_BLOCK);
                    run_blocks(threads, score_blocks, |blk| {
                        let lo = pos + blk * REFINE_SCORE_BLOCK;
                        let hi = (lo + REFINE_SCORE_BLOCK).min(end);
                        (lo..hi)
                            .map(|slot| {
                                let from = usize::from(side[slot]);
                                if sizes[from] <= 1 {
                                    return None;
                                }
                                let to = 1 - from;
                                let x = data.row(members[slot] as usize);
                                Some(delta_i_reference(
                                    &comp[from],
                                    sizes[from],
                                    &comp[to],
                                    sizes[to],
                                    x,
                                ))
                            })
                            .collect::<Vec<Option<f64>>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                };
                let mut next_pos = end;
                for (off, proposal) in proposals.iter().enumerate() {
                    let slot = pos + off;
                    let Some(delta) = *proposal else { continue };
                    if delta > 0.0 {
                        let from = usize::from(side[slot]);
                        let to = 1 - from;
                        let x = data.row(members[slot] as usize);
                        for (c, &v) in comp[from].iter_mut().zip(x) {
                            *c -= v;
                        }
                        for (c, &v) in comp[to].iter_mut().zip(x) {
                            *c += v;
                        }
                        sizes[from] -= 1;
                        sizes[to] += 1;
                        side[slot] = !side[slot];
                        // State diverged from the snapshot: restart scoring
                        // right after this sample.
                        next_pos = slot + 1;
                        break;
                    }
                }
                pos = next_pos;
            }
        }

        // --- equal-size adjustment (Alg. 1 line 9) -----------------------------
        // Move the boundary samples (smallest distance margin) of the larger
        // half to the smaller half until the sizes differ by at most one.
        let mut left: Vec<u32> = Vec::new();
        let mut right: Vec<u32> = Vec::new();
        for (slot, &s) in members.iter().enumerate() {
            if side[slot] {
                right.push(s);
            } else {
                left.push(s);
            }
        }
        // Recompute the final centroids of both halves for the margin
        // ordering: fixed-block f64 partials merged in block order.
        let centroid_of = |part: &[u32]| -> Vec<f32> {
            let part_blocks = part.len().div_ceil(BISECT_BLOCK).max(1);
            let partials: Vec<Vec<f64>> = run_blocks(threads, part_blocks, |blk| {
                let lo = blk * BISECT_BLOCK;
                let hi = ((blk + 1) * BISECT_BLOCK).min(part.len());
                let mut acc = vec![0.0f64; dim];
                for &s in &part[lo..hi] {
                    for (a, &v) in acc.iter_mut().zip(data.row(s as usize)) {
                        *a += f64::from(v);
                    }
                }
                acc
            });
            let mut acc = vec![0.0f64; dim];
            for partial in &partials {
                for (a, &v) in acc.iter_mut().zip(partial) {
                    *a += v;
                }
            }
            let inv = 1.0 / part.len().max(1) as f64;
            acc.into_iter().map(|a| (a * inv) as f32).collect()
        };
        loop {
            let (big, small) = if left.len() > right.len() + 1 {
                (&mut left, &mut right)
            } else if right.len() > left.len() + 1 {
                (&mut right, &mut left)
            } else {
                break;
            };
            let big_c = centroid_of(big);
            let small_c = centroid_of(small);
            // margin = d(x, small centroid) − d(x, own centroid); smallest margin
            // samples sit on the boundary and are the cheapest to move.  The
            // per-block argmins keep the first strict minimum, and the block-
            // order merge below keeps the earliest block's — together exactly
            // the sequential scan's first-occurrence rule.
            let argmin_blocks = big.len().div_ceil(BISECT_BLOCK);
            let block_mins: Vec<(f32, usize)> = {
                let big = &*big;
                run_blocks(threads, argmin_blocks, |blk| {
                    let lo = blk * BISECT_BLOCK;
                    let hi = ((blk + 1) * BISECT_BLOCK).min(big.len());
                    let mut best_slot = lo;
                    let mut best_margin = f32::INFINITY;
                    for (slot, &s) in big[lo..hi].iter().enumerate() {
                        let x = data.row(s as usize);
                        let margin = l2_sq(x, &small_c) - l2_sq(x, &big_c);
                        if margin < best_margin {
                            best_margin = margin;
                            best_slot = lo + slot;
                        }
                    }
                    (best_margin, best_slot)
                })
            };
            let mut best_slot = 0usize;
            let mut best_margin = f32::INFINITY;
            for &(margin, slot) in &block_mins {
                if margin < best_margin {
                    best_margin = margin;
                    best_slot = slot;
                }
            }
            let moved = big.swap_remove(best_slot);
            small.push(moved);
        }
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 30.0;
                rows.push(vec![
                    base + (i % 6) as f32 * 0.4,
                    base - (i % 4) as f32 * 0.3,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn partition_produces_k_nonempty_balanced_clusters() {
        let data = blobs(32, 4); // 128 samples
        let labels = TwoMeansTree::new(1).partition(&data, 8);
        assert_eq!(labels.len(), 128);
        let mut sizes = vec![0usize; 8];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0));
        // Equal-size adjustment ⇒ cluster sizes stay within a factor ~2 of n/k.
        let target = 128 / 8;
        assert!(
            sizes.iter().all(|&s| s >= target / 2 && s <= target * 2),
            "{sizes:?}"
        );
    }

    #[test]
    fn bisect_equal_halves_differ_by_at_most_one() {
        let data = blobs(25, 2); // 50 samples, odd splits exercised below
        let members: Vec<u32> = (0..31u32).collect();
        let mut rng = rng_from_seed(3);
        let (l, r) = TwoMeansTree::new(3).bisect_equal(&data, &members, &mut rng);
        assert_eq!(l.len() + r.len(), 31);
        assert!(l.len().abs_diff(r.len()) <= 1, "{} vs {}", l.len(), r.len());
    }

    #[test]
    fn bisect_separable_groups_respects_structure_before_balancing() {
        // Two blobs of equal size: the equal-size bisection should recover them.
        let data = blobs(20, 2);
        let members: Vec<u32> = (0..40u32).collect();
        let mut rng = rng_from_seed(5);
        let (l, r) = TwoMeansTree::new(5).bisect_equal(&data, &members, &mut rng);
        assert_eq!(l.len(), 20);
        assert_eq!(r.len(), 20);
        let blob_of = |s: u32| usize::from(s >= 20);
        let l_blob = blob_of(l[0]);
        assert!(l.iter().all(|&s| blob_of(s) == l_blob));
        assert!(r.iter().all(|&s| blob_of(s) != l_blob));
    }

    #[test]
    fn partition_handles_identical_points() {
        let data = VectorSet::from_rows(vec![vec![2.0, 2.0]; 12]).unwrap();
        let labels = TwoMeansTree::new(7).partition(&data, 4);
        let mut sizes = vec![0usize; 4];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 12);
        assert!(sizes.iter().all(|&s| s == 3), "{sizes:?}");
    }

    #[test]
    fn partition_k_equals_n_gives_singletons() {
        let data = blobs(3, 2); // 6 samples
        let labels = TwoMeansTree::new(2).partition(&data, 6);
        let mut sizes = [0usize; 6];
        for &l in &labels {
            sizes[l] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let data = blobs(20, 3);
        let a = TwoMeansTree::new(11).partition(&data, 6);
        let b = TwoMeansTree::new(11).partition(&data, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_is_bit_identical_at_any_thread_count() {
        // Wide enough that a top-level bisection spans several fixed blocks,
        // so the blocked merges and the delta-batched refinement rounds all
        // actually split.
        let rows: Vec<Vec<f32>> = (0..2600)
            .map(|i| {
                (0..6)
                    .map(|j| ((i * 13 + j * 7 + i / 31) % 17) as f32)
                    .collect()
            })
            .collect();
        let data = VectorSet::from_rows(rows).unwrap();
        let reference = TwoMeansTree::new(21).threads(1).partition(&data, 9);
        for threads in [2usize, 4, 7] {
            let threaded = TwoMeansTree::new(21).threads(threads).partition(&data, 9);
            assert_eq!(reference, threaded, "threads={threads}");
        }
    }

    #[test]
    fn boost_refinement_can_be_disabled() {
        let data = blobs(16, 2);
        let labels = TwoMeansTree::new(4)
            .boost_refine(false)
            .refine_iters(3)
            .partition(&data, 4);
        assert_eq!(labels.len(), 32);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = blobs(4, 1);
        let _ = TwoMeansTree::new(0).partition(&data, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the number of samples")]
    fn oversized_k_panics() {
        let data = blobs(2, 1);
        let _ = TwoMeansTree::new(0).partition(&data, 10);
    }
}
