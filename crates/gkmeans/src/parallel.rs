//! Data-parallel variant of the KNN-graph construction (Alg. 3).
//!
//! The paper's measurements are single-threaded (Sec. 5: "simulations are
//! conducted by single thread"), and every *measured* code path in this
//! workspace honours that.  The refinement step of Alg. 3, however, is
//! embarrassingly parallel — the exhaustive pair comparisons inside different
//! clusters touch disjoint sample pairs — so a practical deployment would run
//! it on all cores.  This module provides that variant:
//!
//! * the per-round clustering call stays sequential (it is the paper's own
//!   GK-means, and its incremental moves are order-dependent);
//! * the intra-cluster pair comparisons of each round run on a rayon pool,
//!   producing per-cluster candidate edges that are merged into the graph
//!   sequentially afterwards.
//!
//! The merge order is fixed (cluster index, then pair order), so the produced
//! graph is **bit-for-bit identical** to the sequential builder's for the same
//! parameters — the equivalence test below enforces it.  This makes the
//! parallel builder a drop-in replacement whose only observable difference is
//! wall-clock time.

use std::time::Instant;

use fxhash::FxHashSet;
use rayon::prelude::*;

use vecstore::distance::l2_sq;
use vecstore::kernels;
use vecstore::VectorSet;

use knn_graph::random::random_graph;
use knn_graph::KnnGraph;

use crate::construct::{GraphBuildStats, KnnGraphBuilder, RoundInfo};
use crate::gk::GkMeans;
use crate::params::GkParams;

/// Anchor rows per parallel work item: small enough that a skewed cluster
/// splits into many items (load balance), large enough to amortise the
/// per-item bookkeeping.
const REFINE_ANCHOR_BLOCK: usize = 64;

/// Parallel counterpart of [`KnnGraphBuilder`]: same algorithm, same output,
/// refinement distances computed on a rayon thread pool, parallelised over
/// blocks of anchor rows rather than whole clusters.
#[derive(Clone, Debug)]
pub struct ParallelKnnGraphBuilder {
    /// Pipeline parameters (the same fields as the sequential builder).
    pub params: GkParams,
    /// Neighbour-list size of the produced graph; defaults to `params.kappa`.
    pub graph_k: usize,
}

impl ParallelKnnGraphBuilder {
    /// Creates a parallel builder producing a graph with κ = `params.kappa`
    /// neighbours.
    pub fn new(params: GkParams) -> Self {
        Self {
            graph_k: params.kappa,
            params,
        }
    }

    /// Overrides the neighbour-list size of the produced graph.
    #[must_use]
    pub fn graph_k(mut self, graph_k: usize) -> Self {
        self.graph_k = graph_k.max(1);
        self
    }

    /// Runs Alg. 3 with parallel refinement and returns the graph plus cost
    /// statistics (identical in meaning to the sequential builder's).
    pub fn build(&self, data: &VectorSet) -> (KnnGraph, GraphBuildStats) {
        self.build_with_observer(data, |_| {})
    }

    /// [`ParallelKnnGraphBuilder::build`] with a per-round observer (Fig. 2).
    pub fn build_with_observer(
        &self,
        data: &VectorSet,
        mut observer: impl FnMut(RoundInfo),
    ) -> (KnnGraph, GraphBuildStats) {
        let n = data.len();
        let mut stats = GraphBuildStats::default();
        let start = Instant::now();
        if n == 0 {
            return (KnnGraph::empty(0, self.graph_k), stats);
        }

        let mut graph = random_graph(
            data,
            self.graph_k.min(n.saturating_sub(1)),
            self.params.seed,
        );
        let k0 = sequential_equivalent(self).construction_clusters(n);

        let inner_params = self
            .params
            .iterations(1)
            .record_trace(false)
            .kappa(self.params.kappa.min(self.graph_k));

        let mut visited: FxHashSet<u64> = FxHashSet::default();
        for round in 0..self.params.tau {
            stats.rounds = round + 1;
            let clustering = GkMeans::new(inner_params.seed(self.params.seed ^ (round as u64 + 1)))
                .fit(data, k0, &graph);
            stats.clustering_distance_evals += clustering.distance_evals;

            // Gather cluster membership, then split every cluster's anchor
            // rows into fixed-size row blocks and compute the blocks'
            // candidate edges in parallel.  Row blocks (rather than whole
            // clusters) keep the workers load-balanced when the clustering is
            // skewed: one oversized cluster becomes many independent work
            // items instead of one straggler.  `visited` is only *read*
            // during the parallel phase; the clusters are disjoint so no pair
            // can be produced twice within a round, and insertion happens at
            // the sequential merge.
            let mut members: Vec<Vec<u32>> = vec![Vec::new(); k0];
            for (i, &label) in clustering.labels.iter().enumerate() {
                members[label].push(i as u32);
            }
            // Work items in (cluster, anchor block) order — the same order the
            // sequential builder walks, so the merge below reproduces its
            // graph bit for bit.
            let mut work: Vec<(usize, usize, usize)> = Vec::new();
            for (ci, cluster) in members.iter().enumerate() {
                let mut start = 0usize;
                while start < cluster.len() {
                    let end = (start + REFINE_ANCHOR_BLOCK).min(cluster.len());
                    work.push((ci, start, end));
                    start = end;
                }
            }

            let dedup = self.params.dedup_pairs;
            let visited_ref = &visited;
            let members_ref = &members;
            let dim = data.dim();
            let per_block: Vec<Vec<(u32, u32, f32)>> = work
                .par_iter()
                .map(|&(ci, start, end)| {
                    let cluster = &members_ref[ci];
                    let mut edges = Vec::new();
                    let mut partners: Vec<u32> = Vec::new();
                    let mut dists: Vec<f32> = Vec::new();
                    for (a_idx, &i) in cluster.iter().enumerate().take(end).skip(start) {
                        partners.clear();
                        for &j in cluster.iter().skip(a_idx + 1) {
                            if dedup && visited_ref.contains(&pair_key(i, j)) {
                                continue;
                            }
                            partners.push(j);
                        }
                        if partners.is_empty() {
                            continue;
                        }
                        dists.resize(partners.len(), 0.0);
                        kernels::l2_sq_one_to_many_indexed(
                            data.row(i as usize),
                            data.as_flat(),
                            dim,
                            &partners,
                            &mut dists,
                        );
                        for (&j, &d) in partners.iter().zip(&dists) {
                            edges.push((i, j, d));
                        }
                    }
                    edges
                })
                .collect();

            for edges in &per_block {
                for &(i, j, d) in edges {
                    if dedup && !visited.insert(pair_key(i, j)) {
                        continue;
                    }
                    stats.refine_distance_evals += 1;
                    stats.graph_updates += graph.update_pair(i as usize, j as usize, d) as u64;
                }
            }

            observer(RoundInfo {
                round: round + 1,
                distortion: clustering.distortion(data),
                elapsed_secs: start.elapsed().as_secs_f64(),
            });
        }

        stats.elapsed = start.elapsed();
        (graph, stats)
    }
}

/// The sequential builder with the same configuration (used for the cluster
/// count helper and by the equivalence tests).
fn sequential_equivalent(parallel: &ParallelKnnGraphBuilder) -> KnnGraphBuilder {
    KnnGraphBuilder::new(parallel.params).graph_k(parallel.graph_k)
}

/// Canonical key of an unordered pair, identical to the sequential builder's.
#[inline]
fn pair_key(i: u32, j: u32) -> u64 {
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    (u64::from(hi) << 32) | u64::from(lo)
}

/// Computes the average distortion of a labelling in parallel — a helper for
/// harness binaries that need to evaluate large clusterings quickly without
/// touching the measured code paths.
pub fn par_average_distortion(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    if data.is_empty() {
        return 0.0;
    }
    let sum: f64 = (0..data.len())
        .into_par_iter()
        .map(|i| f64::from(l2_sq(data.row(i), centroids.row(labels[i]))))
        .sum();
    sum / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::common::average_distortion;
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    fn clustered(n: usize, dim: usize, groups: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % groups;
            let mut row = Vec::with_capacity(dim);
            for d in 0..dim {
                let centre = ((g * 5 + d) % 11) as f32 * 6.0;
                row.push(centre + rng.gen_range(-0.6..0.6));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn parallel_builder_matches_sequential_graph_exactly() {
        let data = clustered(500, 8, 10, 1);
        let params = GkParams::default().xi(20).tau(4).kappa(6).seed(3);
        let (seq, seq_stats) = KnnGraphBuilder::new(params).graph_k(6).build(&data);
        let (par, par_stats) = ParallelKnnGraphBuilder::new(params).graph_k(6).build(&data);
        assert_eq!(seq_stats.rounds, par_stats.rounds);
        assert_eq!(
            seq_stats.refine_distance_evals,
            par_stats.refine_distance_evals
        );
        assert_eq!(seq_stats.graph_updates, par_stats.graph_updates);
        for i in 0..data.len() {
            let a: Vec<(u32, f32)> = seq
                .neighbors(i)
                .as_slice()
                .iter()
                .map(|n| (n.id, n.dist))
                .collect();
            let b: Vec<(u32, f32)> = par
                .neighbors(i)
                .as_slice()
                .iter()
                .map(|n| (n.id, n.dist))
                .collect();
            assert_eq!(a, b, "neighbour list of sample {i} differs");
        }
    }

    #[test]
    fn parallel_builder_matches_without_dedup_too() {
        let data = clustered(300, 6, 6, 5);
        let params = GkParams::default()
            .xi(15)
            .tau(3)
            .kappa(5)
            .seed(7)
            .dedup_pairs(false);
        let (seq, _) = KnnGraphBuilder::new(params).graph_k(5).build(&data);
        let (par, _) = ParallelKnnGraphBuilder::new(params).graph_k(5).build(&data);
        for i in 0..data.len() {
            assert_eq!(
                seq.neighbors(i).ids().collect::<Vec<_>>(),
                par.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn observer_fires_every_round() {
        let data = clustered(200, 5, 5, 9);
        let params = GkParams::default().xi(20).tau(5).kappa(4).seed(11);
        let mut rounds = Vec::new();
        let (_, stats) = ParallelKnnGraphBuilder::new(params)
            .graph_k(4)
            .build_with_observer(&data, |info| rounds.push(info.round));
        assert_eq!(rounds, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.rounds, 5);
    }

    #[test]
    fn par_distortion_matches_sequential() {
        let data = clustered(400, 7, 8, 13);
        let labels: Vec<usize> = (0..data.len()).map(|i| i % 8).collect();
        let mut centroids = VectorSet::zeros(8, data.dim()).unwrap();
        baselines::common::recompute_centroids(&data, &labels, &mut centroids);
        let seq = average_distortion(&data, &labels, &centroids);
        let par = par_average_distortion(&data, &labels, &centroids);
        assert!((seq - par).abs() < 1e-9 * seq.max(1.0), "{seq} vs {par}");
    }

    #[test]
    fn empty_input_is_handled() {
        let empty = VectorSet::zeros(0, 4).unwrap();
        let (g, stats) = ParallelKnnGraphBuilder::new(GkParams::default().tau(2)).build(&empty);
        assert_eq!(g.len(), 0);
        assert_eq!(stats.rounds, 0);
        let centroids = VectorSet::zeros(1, 4).unwrap();
        assert_eq!(par_average_distortion(&empty, &[], &centroids), 0.0);
    }
}
