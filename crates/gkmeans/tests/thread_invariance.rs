//! Thread-count invariance of the epoch engines.
//!
//! The `threads` knob guarantees **bit-identical output at any thread
//! count**: the delta-batched rounds replay the paper's sequential visit
//! order and re-score any proposal an earlier move of the same round could
//! have influenced, and the fused Lloyd sweep merges fixed-block partial
//! accumulators in block order.  These property tests pin that guarantee on
//! the integer-lattice corpus (the same regime `kernel_properties.rs` uses:
//! small-integer coordinates, so distances are exactly representable and
//! exact ties — the hardest case for order-sensitivity — actually occur).

use baselines::common::KMeansConfig;
use baselines::lloyd::LloydKMeans;
use gkmeans::{GkMeans, GkMode, GkParams};
use knn_graph::brute::exact_graph;
use vecstore::VectorSet;

use baselines::common::Clustering;

/// Integer-lattice corpus: every coordinate a small integer, with duplicated
/// points so tie-breaking paths are exercised.
fn lattice(n: usize, d: usize) -> VectorSet {
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 7 + j * 5 + i / 13) % 11) as f32)
                .collect()
        })
        .collect();
    VectorSet::from_rows(rows).unwrap()
}

/// Asserts two clusterings are bit-identical in every output the determinism
/// guarantee covers: labels, centroids, trace and `distance_evals`.
fn assert_bit_identical(a: &Clustering, b: &Clustering, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.distance_evals, b.distance_evals, "{what}: distance_evals");
    let fa: Vec<u32> = a.centroids.as_flat().iter().map(|v| v.to_bits()).collect();
    let fb: Vec<u32> = b.centroids.as_flat().iter().map(|v| v.to_bits()).collect();
    assert_eq!(fa, fb, "{what}: centroid bits");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (ta, tb) in a.trace.iter().zip(&b.trace) {
        assert_eq!(ta.iteration, tb.iteration, "{what}: trace iteration");
        assert_eq!(
            ta.distortion.to_bits(),
            tb.distortion.to_bits(),
            "{what}: trace distortion bits at iteration {}",
            ta.iteration
        );
    }
}

#[test]
fn boost_epochs_are_bit_identical_at_any_thread_count() {
    let data = lattice(700, 12);
    let graph = exact_graph(&data, 8);
    let base = GkParams::default().kappa(8).iterations(12).seed(42);
    let reference = GkMeans::new(base.threads(1)).fit(&data, 13, &graph);
    assert!(reference.distance_evals > 0);
    for threads in [2usize, 4, 7] {
        let threaded = GkMeans::new(base.threads(threads)).fit(&data, 13, &graph);
        assert_bit_identical(&reference, &threaded, &format!("boost threads={threads}"));
    }
}

#[test]
fn boost_fit_with_multi_block_init_is_bit_identical_at_any_thread_count() {
    // Wide enough that the two-means-tree bisections span several fixed
    // 1024-row blocks, so the pool-backed init (blocked assignment merges,
    // delta-batched boost refinement, blocked margin argmins) genuinely
    // splits — the 700-sample tests above keep the init single-block.
    let data = lattice(2600, 8);
    let graph = exact_graph(&data, 6);
    let base = GkParams::default().kappa(6).iterations(6).seed(17);
    let reference = GkMeans::new(base.threads(1)).fit(&data, 11, &graph);
    for threads in [2usize, 4, 7] {
        let threaded = GkMeans::new(base.threads(threads)).fit(&data, 11, &graph);
        assert_bit_identical(
            &reference,
            &threaded,
            &format!("boost multi-block threads={threads}"),
        );
    }
}

#[test]
fn two_means_partition_is_bit_identical_at_any_thread_count() {
    use gkmeans::two_means::TwoMeansTree;

    let data = lattice(2600, 8);
    let reference = TwoMeansTree::new(5).threads(1).partition(&data, 12);
    for threads in [2usize, 4, 7] {
        let threaded = TwoMeansTree::new(5).threads(threads).partition(&data, 12);
        assert_eq!(reference, threaded, "two-means threads={threads}");
    }
}

#[test]
fn traditional_epochs_are_bit_identical_at_any_thread_count() {
    let data = lattice(700, 12);
    let graph = exact_graph(&data, 8);
    let base = GkParams::default()
        .kappa(8)
        .iterations(12)
        .seed(9)
        .mode(GkMode::Traditional);
    let reference = GkMeans::new(base.threads(1)).fit(&data, 13, &graph);
    for threads in [2usize, 4, 7] {
        let threaded = GkMeans::new(base.threads(threads)).fit(&data, 13, &graph);
        assert_bit_identical(
            &reference,
            &threaded,
            &format!("traditional threads={threads}"),
        );
    }
}

#[test]
fn lloyd_fused_epochs_are_bit_identical_at_any_thread_count() {
    // Large enough that the fixed 4096-row blocking actually splits the data
    // would need >4096 samples; the invariance must hold either way because
    // block boundaries — not thread counts — decide the merge grouping.
    let data = lattice(900, 10);
    let base = KMeansConfig::with_k(11).max_iters(12).seed(3);
    let reference = LloydKMeans::new(base.threads(1)).fit(&data);
    for threads in [2usize, 4, 7] {
        let threaded = LloydKMeans::new(base.threads(threads)).fit(&data);
        assert_bit_identical(&reference, &threaded, &format!("lloyd threads={threads}"));
    }
}

#[test]
fn boost_engine_batched_rounds_match_sequential_under_heavy_churn() {
    // Adversarial churn: pseudo-random data with a scrambled initial
    // labelling makes most samples move in the first epochs, maximising
    // same-round conflicts — every repair tier (untouched commit, component
    // repair, full slow-path re-score) gets exercised.  The engine states
    // must stay bit-identical epoch by epoch.
    use gkmeans::{BoostEpochEngine, ClusterState};
    use vecstore::sample::{rng_from_seed, shuffled_order};

    let n = 600;
    let d = 8;
    let k = 7;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 31 + j * 17) as f32 * 0.61).sin() * 5.0)
                .collect()
        })
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let graph = exact_graph(&data, 10);
    let labels: Vec<usize> = (0..n).map(|i| (i * 13 + 5) % k).collect();

    let mut state_seq = ClusterState::from_labels(&data, labels.clone(), k);
    let mut state_thr = state_seq.clone();
    let mut engine_seq = BoostEpochEngine::new(&data, &graph, 10, 1, k);
    let mut engine_thr = BoostEpochEngine::new(&data, &graph, 10, 8, k);
    let mut rng_seq = rng_from_seed(77);
    let mut rng_thr = rng_from_seed(77);
    let mut evals_seq = 0u64;
    let mut evals_thr = 0u64;

    let mut total_moves = 0usize;
    for epoch in 0..4 {
        let order_seq = shuffled_order(&mut rng_seq, n);
        let order_thr = shuffled_order(&mut rng_thr, n);
        assert_eq!(order_seq, order_thr);
        let moves_seq = engine_seq.run_epoch(&mut state_seq, &order_seq, &mut evals_seq);
        let moves_thr = engine_thr.run_epoch(&mut state_thr, &order_thr, &mut evals_thr);
        assert_eq!(moves_seq, moves_thr, "epoch {epoch}: moves");
        assert_eq!(evals_seq, evals_thr, "epoch {epoch}: distance_evals");
        assert_eq!(
            state_seq.labels(),
            state_thr.labels(),
            "epoch {epoch}: labels"
        );
        for r in 0..k {
            let a: Vec<u64> = state_seq.composite(r).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = state_thr.composite(r).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "epoch {epoch}: composite bits of cluster {r}");
        }
        assert_eq!(
            state_seq.objective().to_bits(),
            state_thr.objective().to_bits(),
            "epoch {epoch}: objective bits"
        );
        total_moves += moves_seq;
    }
    assert!(
        total_moves > n / 4,
        "the scenario must actually churn (got {total_moves} moves)"
    );
}

#[test]
fn singleton_guard_conflicts_are_replayed_exactly() {
    // Regression: with tiny clusters (average size 3), a same-round move can
    // shrink a sample's cluster to a singleton *after* the snapshot scored
    // it.  The sequential loop skips such samples at `size(u) <= 1`; the
    // batched repair path must re-evaluate that guard — an earlier version
    // did not and diverged in distance_evals (and, via emptied clusters,
    // labels) on most seeds.
    use gkmeans::{BoostEpochEngine, ClusterState};
    use vecstore::sample::{rng_from_seed, shuffled_order};

    // Size-2 clusters with spatially-dispersed members: a co-member of `i`
    // is rarely inside i's κ-NN list, so its departure does not trip the
    // neighbour-moved slow path — exactly the masked conflict the guard
    // exists for.
    let n = 160;
    let d = 6;
    let k = 80;
    for seed in 0..12u64 {
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        ((i as u64 * 37 + j as u64 * 11 + seed * 101) as f32 * 0.53).sin() * 4.0
                    })
                    .collect()
            })
            .collect();
        let data = VectorSet::from_rows(rows).unwrap();
        let graph = exact_graph(&data, 6);
        let labels: Vec<usize> = (0..n).map(|i| i % k).collect();

        let mut state_seq = ClusterState::from_labels(&data, labels.clone(), k);
        let mut state_thr = state_seq.clone();
        let mut engine_seq = BoostEpochEngine::new(&data, &graph, 6, 1, k);
        let mut engine_thr = BoostEpochEngine::new(&data, &graph, 6, 2, k);
        let mut rng = rng_from_seed(seed);
        let mut evals_seq = 0u64;
        let mut evals_thr = 0u64;
        for epoch in 0..3 {
            let order = shuffled_order(&mut rng, n);
            let moves_seq = engine_seq.run_epoch(&mut state_seq, &order, &mut evals_seq);
            let moves_thr = engine_thr.run_epoch(&mut state_thr, &order, &mut evals_thr);
            assert_eq!(moves_seq, moves_thr, "seed {seed} epoch {epoch}: moves");
            assert_eq!(
                evals_seq, evals_thr,
                "seed {seed} epoch {epoch}: distance_evals"
            );
            assert_eq!(
                state_seq.labels(),
                state_thr.labels(),
                "seed {seed} epoch {epoch}: labels"
            );
        }
    }
}

#[test]
fn threaded_boost_still_converges_and_distortion_is_non_increasing() {
    // Sanity beyond bit-equality: the threaded path inherits the sequential
    // loop's invariants (it *is* the sequential loop, delta-batched).
    let data = lattice(400, 8);
    let graph = exact_graph(&data, 6);
    let result = GkMeans::new(
        GkParams::default()
            .kappa(6)
            .iterations(15)
            .seed(5)
            .threads(4),
    )
    .fit(&data, 9, &graph);
    let d: Vec<f64> = result.trace.iter().map(|t| t.distortion).collect();
    assert!(!d.is_empty());
    for w in d.windows(2) {
        assert!(w[1] <= w[0] + 1e-6, "{w:?}");
    }
}
