//! Regression guard for the scheduled norm-cache refresh in long boost runs.
//!
//! The boost state caches `‖D_r‖²` per cluster and updates it incrementally
//! on every move (`‖D ± x‖² = ‖D‖² ± 2·D·x + ‖x‖²`).  On adversarial
//! large-norm data (raw descriptors far from the origin) each update's
//! rounding error scales with `‖x‖² ≈ 1e8`, so over many epochs the cached
//! norms — and with them the objective, the trace, and every `ΔI` decision —
//! would drift away from the composites they summarise.  `fit_boost` now
//! calls [`gkmeans::ClusterState::refresh_norm_cache`] every
//! [`gkmeans::NORM_REFRESH_INTERVAL`] epochs; this test drives the epoch
//! engine the same way and asserts the drift diagnostic stays bounded.

use gkmeans::{BoostEpochEngine, ClusterState, NORM_REFRESH_INTERVAL};
use knn_graph::brute::exact_graph;
use vecstore::sample::{rng_from_seed, shuffled_order};
use vecstore::VectorSet;

/// Adversarial large-norm corpus: four tight groups offset ~3e3 from the
/// origin, so `‖x‖² ≈ 1e8` dwarfs the inter-sample structure (~1e-1).
fn large_norm_blobs(per: usize) -> VectorSet {
    let offset = 3.0e3f32;
    let dim = 12;
    let mut rows = Vec::new();
    for c in 0..4 {
        for i in 0..per {
            let mut row = vec![offset; dim];
            row[c] += 0.5 * (1.0 + c as f32);
            row[(c + 2) % dim] += 1.0e-2 * (i % 9) as f32;
            rows.push(row);
        }
    }
    VectorSet::from_rows(rows).unwrap()
}

#[test]
fn norm_cache_drift_stays_bounded_over_many_epochs() {
    let data = large_norm_blobs(40);
    let n = data.len();
    let k = 4;
    let graph = exact_graph(&data, 8);
    // A deliberately scrambled initial labelling so early epochs perform many
    // moves (each move is one incremental norm update — the drift source).
    let labels: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % k).collect();
    let mut state = ClusterState::from_labels(&data, labels, k);
    let mut engine = BoostEpochEngine::new(&data, &graph, 8, 1, k);
    let mut rng = rng_from_seed(11);
    let mut evals = 0u64;

    let epochs = 3 * NORM_REFRESH_INTERVAL;
    for epoch in 0..epochs {
        let order = shuffled_order(&mut rng, n);
        let _ = engine.run_epoch(&mut state, &order, &mut evals);
        // The fit_boost schedule: refresh every NORM_REFRESH_INTERVAL epochs.
        if (epoch + 1) % NORM_REFRESH_INTERVAL == 0 {
            state.refresh_norm_cache();
        }
        assert!(
            state.norm_cache_drift() < 1e-9,
            "epoch {epoch}: relative drift {} exceeds bound",
            state.norm_cache_drift()
        );
    }
    assert!(evals > 0, "the run must actually have scored candidates");
}
