//! Centroid seeding strategies.
//!
//! The paper's baselines are seeded in the conventional ways: random sample
//! selection for plain k-means and Mini-Batch, and k-means++ (Arthur &
//! Vassilvitskii, SODA 2007, ref. \[14\]) where a careful seeding baseline is
//! needed.  k-means‖ (Bahmani et al., VLDB 2012, ref. \[21\]) is provided as
//! the over-sampled variant the related-work section discusses.

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::{rng_from_seed, sample_distinct};
use vecstore::VectorSet;

/// Seeding strategy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Seeding {
    /// `k` distinct samples chosen uniformly at random.
    Random,
    /// k-means++ D² weighting (ref. \[14\]).
    KMeansPlusPlus,
    /// k-means‖ over-sampling with `rounds` passes and over-sampling factor
    /// `l ≈ 2k` (ref. \[21\]); reduced to `k` centres with a weighted
    /// k-means++ pass.
    Parallel {
        /// Number of over-sampling rounds (the paper's related work uses ~5).
        rounds: usize,
    },
}

/// Picks `k` initial centroids from `data` according to `strategy`.
///
/// # Panics
///
/// Panics when `k == 0` or `k > data.len()`; callers validate their
/// [`crate::common::KMeansConfig`] before seeding.
pub fn seed_centroids(data: &VectorSet, k: usize, strategy: Seeding, seed: u64) -> VectorSet {
    assert!(k > 0, "k must be positive");
    assert!(k <= data.len(), "k exceeds the number of samples");
    let mut rng = rng_from_seed(seed);
    match strategy {
        Seeding::Random => {
            let idx = sample_distinct(&mut rng, data.len(), k).expect("validated above");
            data.gather(&idx).expect("indices in range")
        }
        Seeding::KMeansPlusPlus => kmeanspp(data, k, &mut rng),
        Seeding::Parallel { rounds } => kmeans_parallel(data, k, rounds.max(1), &mut rng),
    }
}

/// Classic k-means++ seeding: each new centre is drawn with probability
/// proportional to its squared distance to the closest already-chosen centre.
fn kmeanspp(data: &VectorSet, k: usize, rng: &mut impl Rng) -> VectorSet {
    let n = data.len();
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let first = rng.gen_range(0..n);
    chosen.push(first);
    // d2[i] = squared distance of sample i to the nearest chosen centre.
    let mut d2: Vec<f32> = (0..n)
        .map(|i| l2_sq(data.row(i), data.row(first)))
        .collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().map(|&d| f64::from(d)).sum();
        let next = if total <= 0.0 {
            // All remaining samples coincide with chosen centres; fall back to
            // an unchosen random index to keep the centres distinct.
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(first)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= f64::from(d);
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        let centre = data.row(next);
        for (i, best) in d2.iter_mut().enumerate() {
            let d = l2_sq(data.row(i), centre);
            if d < *best {
                *best = d;
            }
        }
    }
    data.gather(&chosen).expect("indices in range")
}

/// k-means‖: over-sample `~2k` candidates per round proportionally to D²,
/// then weight the candidates by how many samples they attract and reduce to
/// `k` centres with k-means++ on the weighted candidate set.
fn kmeans_parallel(data: &VectorSet, k: usize, rounds: usize, rng: &mut impl Rng) -> VectorSet {
    let n = data.len();
    let oversample = (2 * k).max(2);
    let first = rng.gen_range(0..n);
    let mut candidates: Vec<usize> = vec![first];
    let mut d2: Vec<f32> = (0..n)
        .map(|i| l2_sq(data.row(i), data.row(first)))
        .collect();
    for _ in 0..rounds {
        let total: f64 = d2.iter().map(|&d| f64::from(d)).sum();
        if total <= 0.0 {
            break;
        }
        let mut new_candidates = Vec::new();
        for (i, &d) in d2.iter().enumerate() {
            let p = (oversample as f64) * f64::from(d) / total;
            if rng.gen_bool(p.min(1.0)) && !candidates.contains(&i) {
                new_candidates.push(i);
            }
        }
        for &c in &new_candidates {
            let centre = data.row(c);
            for (i, best) in d2.iter_mut().enumerate() {
                let d = l2_sq(data.row(i), centre);
                if d < *best {
                    *best = d;
                }
            }
        }
        candidates.extend(new_candidates);
    }
    if candidates.len() <= k {
        // Not enough candidates (tiny datasets): top up with random distinct rows.
        let mut extra = 0usize;
        while candidates.len() < k && extra < n {
            if !candidates.contains(&extra) {
                candidates.push(extra);
            }
            extra += 1;
        }
        return data.gather(&candidates[..k]).expect("indices in range");
    }
    // Weight candidates by attraction counts.
    let mut weights = vec![0f64; candidates.len()];
    for i in 0..n {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (ci, &c) in candidates.iter().enumerate() {
            let d = l2_sq(data.row(i), data.row(c));
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        weights[best] += 1.0;
    }
    // Weighted k-means++ over the candidate set.
    let cand_set = data.gather(&candidates).expect("indices in range");
    weighted_kmeanspp(&cand_set, &weights, k, rng)
}

/// k-means++ where each point carries a weight (used to reduce the k-means‖
/// candidate set).
fn weighted_kmeanspp(
    points: &VectorSet,
    weights: &[f64],
    k: usize,
    rng: &mut impl Rng,
) -> VectorSet {
    let n = points.len();
    let total_w: f64 = weights.iter().sum();
    let mut chosen = Vec::with_capacity(k);
    // first pick: weighted by the supplied weights
    let mut target = rng.gen_range(0.0..total_w.max(f64::MIN_POSITIVE));
    let mut first = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            first = i;
            break;
        }
    }
    chosen.push(first);
    let mut d2: Vec<f64> = (0..n)
        .map(|i| f64::from(l2_sq(points.row(i), points.row(first))) * weights[i])
        .collect();
    while chosen.len() < k.min(n) {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(first)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let d = f64::from(l2_sq(points.row(i), points.row(next))) * weights[i];
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    points.gather(&chosen).expect("indices in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..4 {
            for i in 0..25 {
                let base = c as f32 * 20.0;
                rows.push(vec![
                    base + (i % 5) as f32 * 0.1,
                    base + (i / 5) as f32 * 0.1,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn random_seeding_picks_k_rows_from_data() {
        let data = blobs();
        let c = seed_centroids(&data, 4, Seeding::Random, 1);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dim(), 2);
        for row in c.rows() {
            assert!(data.rows().any(|r| r == row));
        }
    }

    #[test]
    fn kmeanspp_spreads_centres_across_blobs() {
        let data = blobs();
        let c = seed_centroids(&data, 4, Seeding::KMeansPlusPlus, 7);
        assert_eq!(c.len(), 4);
        // the four blobs are 20 apart; ++ should pick one centre near each blob
        let mut blob_hit = [false; 4];
        for row in c.rows() {
            let blob = (row[0] / 20.0).round() as usize;
            blob_hit[blob.min(3)] = true;
        }
        assert!(blob_hit.iter().filter(|&&h| h).count() >= 3, "{blob_hit:?}");
    }

    #[test]
    fn parallel_seeding_produces_k_centres() {
        let data = blobs();
        let c = seed_centroids(&data, 4, Seeding::Parallel { rounds: 3 }, 5);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn seeding_is_deterministic_per_seed() {
        let data = blobs();
        for s in [
            Seeding::Random,
            Seeding::KMeansPlusPlus,
            Seeding::Parallel { rounds: 2 },
        ] {
            let a = seed_centroids(&data, 3, s, 11);
            let b = seed_centroids(&data, 3, s, 11);
            assert_eq!(a, b, "strategy {s:?} not deterministic");
        }
    }

    #[test]
    fn k_equals_n_returns_every_row_once() {
        let data = VectorSet::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let c = seed_centroids(&data, 3, Seeding::KMeansPlusPlus, 3);
        assert_eq!(c.len(), 3);
        let mut vals: Vec<i32> = c.rows().map(|r| r[0] as i32).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_data_does_not_hang() {
        let data = VectorSet::from_rows(vec![vec![5.0, 5.0]; 10]).unwrap();
        let c = seed_centroids(&data, 3, Seeding::KMeansPlusPlus, 2);
        assert_eq!(c.len(), 3);
        let c = seed_centroids(&data, 3, Seeding::Parallel { rounds: 2 }, 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = blobs();
        let _ = seed_centroids(&data, 0, Seeding::Random, 0);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn oversized_k_panics() {
        let data = VectorSet::from_rows(vec![vec![0.0]]).unwrap();
        let _ = seed_centroids(&data, 2, Seeding::Random, 0);
    }
}
