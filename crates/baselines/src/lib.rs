//! Baseline k-means variants the paper compares against (Sec. 5).
//!
//! | Module | Algorithm | Paper role |
//! |--------|-----------|------------|
//! | [`lloyd`] | Traditional (Lloyd's) k-means | the "k-means" curve in Fig. 5–7 |
//! | [`seeding`] | random, k-means++ and k-means‖ seeding | initialisation for the baselines |
//! | [`minibatch`] | Mini-Batch k-means (Sculley, WWW 2010) | the "Mini-Batch" curve |
//! | [`closure`] | Closure k-means (Wang et al., CVPR 2012) | the "closure k-means" curve |
//! | [`bisecting`] | Top-down bisecting k-means | the hierarchical baseline of Sec. 2.1 |
//! | [`elkan`] | Elkan's triangle-inequality k-means (ICML 2003) | ref. \[29\]: fast but `O(k²)` memory |
//! | [`hamerly`] | Hamerly's single-bound accelerated k-means | the standard lighter-memory variant of Elkan |
//! | [`kdtree`] | Randomized KD-tree forest | the centroid index behind AKM / FLANN (refs. \[22\], \[45\]) |
//! | [`akm`] | Approximate k-means (Philbin et al., CVPR 2007) | ref. \[22\], mentioned in Sec. 5 as an excluded-but-known comparator |
//! | [`hkm`] | Hierarchical k-means / vocabulary tree | ref. \[45\], same |
//!
//! All variants share the [`common::Clustering`] result type and the
//! [`common::KMeansConfig`] convergence settings so the experiment harness can
//! drive them uniformly and record per-iteration distortion/time traces (the
//! x-axes of Fig. 5).
//!
//! The implementations default to the paper's single-threaded protocol
//! (Sec. 5, "simulations are conducted by single thread"), which keeps the
//! relative speed-ups the benchmark harness reports honest.  Threading is
//! opt-in through [`common::KMeansConfig::threads`] and **bit-identical at
//! any thread count**: Lloyd's fused assign+accumulate epoch, Elkan's bound
//! seeding and drift maintenance, and Hamerly's drift maintenance all run as
//! fixed blocks on the persistent worker pool ([`vecstore::parallel`]),
//! merged in block order.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod akm;
pub mod bisecting;
pub mod closure;
pub mod common;
pub mod elkan;
pub mod hamerly;
pub mod hkm;
pub mod kdtree;
pub mod lloyd;
pub mod minibatch;
pub mod seeding;

pub use akm::ApproximateKMeans;
pub use common::{Clustering, IterationStat, KMeansConfig};
pub use hkm::HierarchicalKMeans;
pub use kdtree::{KdForestParams, KdTreeForest};
pub use lloyd::LloydKMeans;
pub use minibatch::MiniBatchKMeans;
