//! Shared configuration, result types and helpers for every k-means variant
//! in the workspace (baselines and GK-means alike).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use vecstore::distance::l2_sq;
use vecstore::kernels;
use vecstore::{Norms, VectorSet};

/// Convergence and bookkeeping settings shared by all variants.
///
/// ```
/// use baselines::common::KMeansConfig;
///
/// let cfg = KMeansConfig::with_k(16).max_iters(10).seed(7).threads(4);
/// assert_eq!(cfg.k, 16);
/// assert!(cfg.validate(1_000).is_ok());
/// assert!(cfg.validate(3).is_err()); // k must not exceed the sample count
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum number of iterations (the paper fixes 30 for the scalability
    /// tests of Sec. 5.4 and lets quality tests run to ~160 in Fig. 5).
    pub max_iters: usize,
    /// Relative distortion-improvement threshold below which iteration stops
    /// (`0.0` disables early stopping, matching the paper's fixed-iteration
    /// protocol).
    pub tol: f64,
    /// RNG seed used for seeding / visit orders.
    pub seed: u64,
    /// When `true`, the per-iteration distortion trace is recorded.  This
    /// costs one extra `O(n·d)` pass per iteration, so the scalability
    /// benchmarks disable it.
    pub record_trace: bool,
    /// Worker threads for the epoch engine, `None` (or `Some(0|1)`) meaning
    /// the paper-faithful single-threaded iteration.
    ///
    /// **Determinism guarantee:** labels, centroids, the distortion trace and
    /// `distance_evals` are bit-identical at every thread count — all the
    /// threaded sweeps cut their work into fixed row blocks
    /// ([`EPOCH_ROW_BLOCK`], [`BOUND_ROW_BLOCK`]) whose results are merged in
    /// block order, so threads change wall-clock time and nothing else.
    /// Honoured by Lloyd's k-means (the fused single-pass epoch), Elkan
    /// (initial bound seeding and the per-epoch drift maintenance of the
    /// `n × k` bound matrix) and Hamerly (drift maintenance of its two
    /// per-sample bounds).
    ///
    /// Defaults to the `GKM_THREADS` environment override when set (see
    /// [`vecstore::parallel::threads_from_env`]), which is how CI re-runs the
    /// whole suite threaded.
    pub threads: Option<usize>,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iters: 30,
            tol: 0.0,
            seed: 0,
            record_trace: true,
            threads: vecstore::parallel::threads_from_env(),
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor for `k` clusters with the remaining defaults.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Sets the maximum number of iterations.
    #[must_use]
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the early-stopping tolerance.
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Enables or disables the per-iteration distortion trace.
    #[must_use]
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the worker thread count of the epoch engine (see
    /// [`KMeansConfig::threads`] for the determinism guarantee; `0` and `1`
    /// both mean sequential).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Validates the configuration against a dataset size.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be positive".into());
        }
        if n == 0 {
            return Err("dataset is empty".into());
        }
        if self.k > n {
            return Err(format!(
                "k ({}) exceeds the number of samples ({n})",
                self.k
            ));
        }
        if !self.tol.is_finite() || self.tol < 0.0 {
            return Err("tol must be finite and non-negative".into());
        }
        Ok(())
    }
}

/// One entry of the per-iteration trace: distortion after the iteration and
/// the cumulative wall-clock time spent so far (including initialisation).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IterationStat {
    /// Iteration index (0 = state right after initialisation).
    pub iteration: usize,
    /// Average distortion `E` (Eqn. 4) at this point.
    pub distortion: f64,
    /// Cumulative elapsed wall-clock seconds.
    pub elapsed_secs: f64,
}

/// The result of running any k-means variant.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster label of every sample (`labels[i] ∈ 0..k`).
    pub labels: Vec<usize>,
    /// Final centroids (`k × d`).
    pub centroids: VectorSet,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Per-iteration distortion/time trace (empty when tracing is disabled).
    pub trace: Vec<IterationStat>,
    /// Wall-clock time spent in initialisation (seeding / tree building).
    pub init_time: Duration,
    /// Wall-clock time spent in the optimisation iterations.
    pub iter_time: Duration,
    /// Total number of sample↔centroid (or sample↔sample) distance
    /// evaluations performed — the paper's cost model counts exactly these.
    pub distance_evals: u64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster sizes (`k` counts summing to `n`).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Number of non-empty clusters.
    pub fn non_empty_clusters(&self) -> usize {
        self.cluster_sizes().iter().filter(|&&s| s > 0).count()
    }

    /// Total wall-clock time (init + iterations).
    pub fn total_time(&self) -> Duration {
        self.init_time + self.iter_time
    }

    /// Average distortion of this clustering on `data` (Eqn. 4).
    pub fn distortion(&self, data: &VectorSet) -> f64 {
        average_distortion(data, &self.labels, &self.centroids)
    }
}

/// Average distortion `E = Σ_i ‖C_{q(x_i)} − x_i‖² / n` (Eqn. 4 of the paper,
/// identical to the within-cluster sum of squared distortions divided by `n`).
pub fn average_distortion(data: &VectorSet, labels: &[usize], centroids: &VectorSet) -> f64 {
    assert_eq!(data.len(), labels.len(), "label count mismatch");
    if data.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        sum += f64::from(l2_sq(data.row(i), centroids.row(label)));
    }
    sum / data.len() as f64
}

/// Rows per fixed block of the threaded bound-maintenance sweeps of the
/// accelerated baselines (Elkan's initial bound seeding and per-epoch drift
/// adjustment, Hamerly's drift adjustment).  Every sample's update is
/// independent, so any fixed block size yields bit-identical bounds; this
/// one keeps a block's slice of the `n × k` lower-bound matrix comfortably
/// inside L2 at the paper's dimensionalities.
pub const BOUND_ROW_BLOCK: usize = 1024;

/// Rows per fixed block of the fused assign+accumulate sweep.
///
/// The block boundaries — and therefore the `f64` summation grouping of the
/// per-block partial accumulators, which are always merged in ascending block
/// order — are a property of the dataset size alone, never of the thread
/// count.  That fixed grouping is what makes the threaded epoch engines
/// bit-identical at any thread count.
pub const EPOCH_ROW_BLOCK: usize = 4096;

/// Running centroid-update state: per-cluster `f64` coordinate sums and
/// member counts, the quantity both the fused assignment sweep and
/// [`recompute_centroids`] accumulate.
#[derive(Clone, Debug)]
pub struct CentroidAccumulator {
    sums: Vec<f64>,
    counts: Vec<u64>,
    dim: usize,
}

impl CentroidAccumulator {
    /// A zeroed accumulator for `k` clusters of dimensionality `d`.
    pub fn zero(k: usize, d: usize) -> Self {
        Self {
            sums: vec![0.0f64; k * d],
            counts: vec![0u64; k],
            dim: d,
        }
    }

    /// Resets every sum and count to zero (start of an epoch).
    pub fn reset(&mut self) {
        self.sums.fill(0.0);
        self.counts.fill(0);
    }

    /// Adds one sample row to cluster `label` through the element-wise
    /// widening kernel.
    #[inline]
    pub fn add_sample(&mut self, label: usize, row: &[f32]) {
        self.counts[label] += 1;
        kernels::add_assign_f64_f32(
            &mut self.sums[label * self.dim..(label + 1) * self.dim],
            row,
        );
    }

    /// Merges a raw per-block partial (as produced by
    /// [`kernels::assign_accumulate_block`]) into this accumulator.  Callers
    /// must merge blocks in ascending block order to keep the summation
    /// grouping thread-count independent.
    pub fn merge_raw(&mut self, sums: &[f64], counts: &[u64]) {
        debug_assert_eq!(sums.len(), self.sums.len());
        debug_assert_eq!(counts.len(), self.counts.len());
        for (a, &b) in self.sums.iter_mut().zip(sums) {
            *a += b;
        }
        for (a, &b) in self.counts.iter_mut().zip(counts) {
            *a += b;
        }
    }

    /// Member count of cluster `c`.
    #[inline]
    pub fn count(&self, c: usize) -> u64 {
        self.counts[c]
    }

    /// Writes the accumulated means into `centroids`.  Clusters with no
    /// members keep their previous centroid (the caller may re-seed them
    /// instead); their indices are returned in ascending order.
    pub fn write_centroids(&self, centroids: &mut VectorSet) -> Vec<usize> {
        let k = centroids.len();
        let d = centroids.dim();
        debug_assert_eq!(k, self.counts.len(), "cluster count mismatch");
        debug_assert_eq!(d, self.dim, "dimensionality mismatch");
        let mut empties = Vec::new();
        for c in 0..k {
            if self.counts[c] == 0 {
                empties.push(c);
                continue;
            }
            let inv = 1.0 / self.counts[c] as f64;
            let target = centroids.row_mut(c);
            let acc = &self.sums[c * d..(c + 1) * d];
            for (t, &a) in target.iter_mut().zip(acc) {
                *t = (a * inv) as f32;
            }
        }
        empties
    }
}

/// Recomputes centroids as the mean of their assigned samples through the
/// fused accumulator path ([`CentroidAccumulator`] and the element-wise
/// widening kernel).  Clusters that end up empty keep their previous centroid
/// (the caller may choose to re-seed them instead); their indices are
/// returned in ascending order.
pub fn recompute_centroids(
    data: &VectorSet,
    labels: &[usize],
    centroids: &mut VectorSet,
) -> Vec<usize> {
    let mut accum = CentroidAccumulator::zero(centroids.len(), centroids.dim());
    for (i, &label) in labels.iter().enumerate() {
        accum.add_sample(label, data.row(i));
    }
    accum.write_centroids(centroids)
}

/// Scratch buffers of a blocked assignment pass: the current labels in the
/// `u32` form the fused kernel consumes plus its three per-sample outputs.
struct AssignScratch {
    current: Vec<u32>,
    idx: Vec<u32>,
    dist: Vec<f32>,
    second: Vec<f32>,
}

impl AssignScratch {
    fn from_labels(labels: &[usize]) -> Self {
        Self {
            current: labels.iter().map(|&l| l as u32).collect(),
            idx: vec![0u32; labels.len()],
            dist: vec![0.0f32; labels.len()],
            second: vec![0.0f32; labels.len()],
        }
    }

    /// Writes the winning indices back into `labels`, returning how many
    /// changed.
    fn commit(&self, labels: &mut [usize]) -> usize {
        let mut changes = 0usize;
        for (label, &best) in labels.iter_mut().zip(&self.idx) {
            if *label != best as usize {
                *label = best as usize;
                changes += 1;
            }
        }
        changes
    }
}

/// Assigns every sample to its closest centroid by exhaustive comparison,
/// returning the number of label changes and counting distance evaluations.
///
/// The whole dataset goes through the argmin-fused blocked kernel
/// ([`kernels::assign_block`]): distances are produced by the register-
/// blocked, cache-tiled many-to-many tile, so at large `k` the centroid
/// matrix streams from L2 once per query block instead of once per sample.
/// Tie-breaking is sticky on the incoming labels — a tie between the current
/// centroid and any other keeps the sample where it is, so exact convergence
/// is detected instead of ping-ponging between duplicate centroids.
pub fn assign_exhaustive(
    data: &VectorSet,
    centroids: &VectorSet,
    labels: &mut [usize],
    distance_evals: &mut u64,
) -> usize {
    let k = centroids.len();
    let mut scratch = AssignScratch::from_labels(labels);
    kernels::assign_block(
        data.as_flat(),
        centroids.as_flat(),
        data.dim(),
        &scratch.current,
        &mut scratch.idx,
        &mut scratch.dist,
        &mut scratch.second,
    );
    *distance_evals += data.len() as u64 * k as u64;
    scratch.commit(labels)
}

/// Norm-cached exhaustive assignment: the blocked
/// `‖x‖² − 2·X·Cᵀ + ‖c‖²` form with `‖x‖²` cached per sample across all
/// iterations and `‖c‖²` cached once per iteration, so the bulk of the work
/// is one GEMM-style dot tile.
///
/// The `f32` cancellation risk of the expansion is *compensated*, not merely
/// documented: negative expansions are clamped to zero and every sample whose
/// best/second-best gap falls inside the cancellation error bound is
/// re-scored through the direct-subtraction tile
/// (see [`kernels::assign_block_cached`]).  The resulting labels therefore
/// match [`assign_exhaustive`] even on large-norm raw descriptors — the
/// property suite enforces this — making the cached form safe wherever the
/// norms are already available.
pub fn assign_exhaustive_cached(
    data: &VectorSet,
    data_norms: &Norms,
    centroids: &VectorSet,
    centroid_norms: &[f32],
    labels: &mut [usize],
    distance_evals: &mut u64,
) -> usize {
    let k = centroids.len();
    debug_assert_eq!(centroid_norms.len(), k, "centroid norm cache size");
    let mut scratch = AssignScratch::from_labels(labels);
    kernels::assign_block_cached(
        data.as_flat(),
        data_norms.as_slice(),
        centroids.as_flat(),
        centroid_norms,
        data.dim(),
        &scratch.current,
        &mut scratch.idx,
        &mut scratch.dist,
        &mut scratch.second,
    );
    *distance_evals += data.len() as u64 * k as u64;
    scratch.commit(labels)
}

/// One row block's worth of fused-sweep output: the winning labels plus the
/// block's partial centroid accumulator.
struct FusedBlock {
    idx: Vec<u32>,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

/// Fused single-pass epoch sweep: assigns every sample to its closest
/// centroid **and** accumulates the centroid update in the same pass over the
/// data, optionally on `threads` worker threads.
///
/// Partial-accumulator blocks held in flight per worker thread before a
/// merge: bounds the sweep's extra memory to
/// `threads × MERGE_ROUND_BLOCKS_PER_THREAD × k × d` `f64`s regardless of
/// `n`, instead of one partial per [`EPOCH_ROW_BLOCK`] of the whole dataset.
const MERGE_ROUND_BLOCKS_PER_THREAD: usize = 2;

/// The dataset is cut into fixed [`EPOCH_ROW_BLOCK`]-row blocks; each block
/// runs [`kernels::assign_accumulate_block`] (same sticky tie-breaking as
/// [`assign_exhaustive`], so labels are bit-identical to the two-pass path)
/// and yields a partial accumulator.  Blocks are computed in bounded rounds
/// (so at most a few partials per worker exist at once) and every partial is
/// merged into `accum` in ascending block order, which makes labels, sums
/// and counts **bit-identical at any thread count** — threads and round
/// boundaries only reorder when blocks are computed, never how their results
/// combine.
///
/// `accum` is reset at entry and afterwards holds the full epoch's sums and
/// counts, ready for [`CentroidAccumulator::write_centroids`] — the second
/// pass over the data that [`recompute_centroids`] would have cost never
/// happens.  Returns the number of label changes.
pub fn assign_accumulate_exhaustive(
    data: &VectorSet,
    centroids: &VectorSet,
    labels: &mut [usize],
    accum: &mut CentroidAccumulator,
    distance_evals: &mut u64,
    threads: usize,
) -> usize {
    let n = data.len();
    let d = data.dim();
    let k = centroids.len();
    accum.reset();
    if n == 0 {
        return 0;
    }
    let current: Vec<u32> = labels.iter().map(|&l| l as u32).collect();
    let flat = data.as_flat();
    let c_flat = centroids.as_flat();
    let n_blocks = n.div_ceil(EPOCH_ROW_BLOCK);
    let round_blocks = (threads.max(1) * MERGE_ROUND_BLOCKS_PER_THREAD).max(1);
    let mut changes = 0usize;
    let mut b0 = 0usize;
    while b0 < n_blocks {
        let b1 = (b0 + round_blocks).min(n_blocks);
        let blocks: Vec<FusedBlock> = vecstore::parallel::run_blocks(threads, b1 - b0, |rb| {
            let b = b0 + rb;
            let lo = b * EPOCH_ROW_BLOCK;
            let hi = ((b + 1) * EPOCH_ROW_BLOCK).min(n);
            let m = hi - lo;
            let mut idx = vec![0u32; m];
            let mut dist = vec![0.0f32; m];
            let mut second = vec![0.0f32; m];
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0u64; k];
            kernels::assign_accumulate_block(
                &flat[lo * d..hi * d],
                c_flat,
                d,
                &current[lo..hi],
                &mut idx,
                &mut dist,
                &mut second,
                &mut sums,
                &mut counts,
            );
            FusedBlock { idx, sums, counts }
        });
        for (rb, block) in blocks.iter().enumerate() {
            let lo = (b0 + rb) * EPOCH_ROW_BLOCK;
            for (off, &best) in block.idx.iter().enumerate() {
                let slot = &mut labels[lo + off];
                if *slot != best as usize {
                    *slot = best as usize;
                    changes += 1;
                }
            }
            accum.merge_raw(&block.sums, &block.counts);
        }
        b0 = b1;
    }
    *distance_evals += n as u64 * k as u64;
    changes
}

/// Squared norms of every centroid row — the per-iteration half of the
/// norm cache used by [`assign_exhaustive_cached`].
pub fn centroid_norms_sq(centroids: &VectorSet, out: &mut Vec<f32>) {
    out.clear();
    out.extend(centroids.rows().map(vecstore::distance::norm_sq));
}

/// Reseeds every empty cluster to the sample furthest from its current
/// centroid, a common remedy that keeps `k` effective clusters alive.
/// Returns how many clusters were reseeded.
pub fn reseed_empty_clusters(
    data: &VectorSet,
    labels: &mut [usize],
    centroids: &mut VectorSet,
) -> usize {
    let k = centroids.len();
    let mut sizes = vec![0usize; k];
    for &l in labels.iter() {
        sizes[l] += 1;
    }
    let empties: Vec<usize> = (0..k).filter(|&c| sizes[c] == 0).collect();
    if empties.is_empty() {
        return 0;
    }
    // Rank samples by distance to their assigned centroid (descending).
    let mut scored: Vec<(usize, f32)> = (0..data.len())
        .map(|i| (i, l2_sq(data.row(i), centroids.row(labels[i]))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut reseeded = 0usize;
    for (slot, &c) in empties.iter().enumerate() {
        // Skip donors that would themselves empty a singleton cluster.
        let mut donor = None;
        for &(i, _) in scored.iter().skip(slot) {
            if sizes[labels[i]] > 1 {
                donor = Some(i);
                break;
            }
        }
        let Some(i) = donor else { break };
        sizes[labels[i]] -= 1;
        let row = data.row(i).to_vec();
        centroids.row_mut(c).copy_from_slice(&row);
        labels[i] = c;
        sizes[c] = 1;
        reseeded += 1;
    }
    reseeded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_data() -> VectorSet {
        // two tight groups around (0,0) and (10,10)
        VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![0.0, 0.5],
            vec![10.0, 10.0],
            vec![10.5, 10.0],
            vec![10.0, 10.5],
        ])
        .unwrap()
    }

    #[test]
    fn config_builder_and_validation() {
        let cfg = KMeansConfig::with_k(3)
            .max_iters(5)
            .seed(9)
            .tol(1e-4)
            .record_trace(false);
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.max_iters, 5);
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.record_trace);
        assert!(cfg.validate(10).is_ok());
        assert!(cfg.validate(2).is_err());
        assert!(cfg.validate(0).is_err());
        assert!(KMeansConfig::with_k(0).validate(10).is_err());
        assert!(KMeansConfig::with_k(2).tol(-1.0).validate(10).is_err());
        assert!(KMeansConfig::with_k(2).tol(f64::NAN).validate(10).is_err());
    }

    #[test]
    fn average_distortion_hand_checked() {
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        // distances: 0, .25, .25, 0, .25, .25 → sum=1.0 → avg = 1/6
        let e = average_distortion(&data, &labels, &centroids);
        assert!((e - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn average_distortion_empty_data() {
        let data = VectorSet::zeros(0, 2).unwrap();
        let centroids = VectorSet::zeros(1, 2).unwrap();
        assert_eq!(average_distortion(&data, &[], &centroids), 0.0);
    }

    #[test]
    fn recompute_centroids_is_the_mean() {
        let data = square_data();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let mut centroids = VectorSet::zeros(2, 2).unwrap();
        let empty = recompute_centroids(&data, &labels, &mut centroids);
        assert!(empty.is_empty());
        let c0 = centroids.row(0);
        assert!((c0[0] - 0.1666).abs() < 1e-3 && (c0[1] - 0.1666).abs() < 1e-3);
        let c1 = centroids.row(1);
        assert!((c1[0] - 10.1666).abs() < 1e-3 && (c1[1] - 10.1666).abs() < 1e-3);
    }

    #[test]
    fn recompute_centroids_reports_empty() {
        let data = square_data();
        let labels = vec![0, 0, 0, 0, 0, 0];
        let mut centroids = VectorSet::from_rows(vec![vec![1.0, 1.0], vec![5.0, 5.0]]).unwrap();
        let before = centroids.row(1).to_vec();
        let empty = recompute_centroids(&data, &labels, &mut centroids);
        assert_eq!(empty, vec![1]);
        assert_eq!(
            centroids.row(1),
            before.as_slice(),
            "empty cluster untouched"
        );
    }

    #[test]
    fn assign_exhaustive_moves_to_closest() {
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let mut labels = vec![1, 1, 1, 0, 0, 0]; // deliberately wrong
        let mut evals = 0u64;
        let changes = assign_exhaustive(&data, &centroids, &mut labels, &mut evals);
        assert_eq!(changes, 6);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(evals, 12);
        // Second call: stable, no changes.
        let changes = assign_exhaustive(&data, &centroids, &mut labels, &mut evals);
        assert_eq!(changes, 0);
    }

    #[test]
    fn fused_sweep_matches_assign_then_recompute() {
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let mut two_pass_centroids = centroids.clone();

        let mut labels_a = vec![1usize, 1, 1, 0, 0, 0];
        let mut evals_a = 0u64;
        let changes_a = assign_exhaustive(&data, &two_pass_centroids, &mut labels_a, &mut evals_a);
        recompute_centroids(&data, &labels_a, &mut two_pass_centroids);

        for threads in [1usize, 2, 4, 7] {
            let mut labels_b = vec![1usize, 1, 1, 0, 0, 0];
            let mut evals_b = 0u64;
            let mut accum = CentroidAccumulator::zero(2, 2);
            let mut fused_centroids = centroids.clone();
            let changes_b = assign_accumulate_exhaustive(
                &data,
                &fused_centroids,
                &mut labels_b,
                &mut accum,
                &mut evals_b,
                threads,
            );
            let empties = accum.write_centroids(&mut fused_centroids);
            assert_eq!(changes_a, changes_b, "threads={threads}");
            assert_eq!(labels_a, labels_b, "threads={threads}");
            assert_eq!(evals_a, evals_b, "threads={threads}");
            assert!(empties.is_empty());
            assert_eq!(
                two_pass_centroids.as_flat(),
                fused_centroids.as_flat(),
                "threads={threads}"
            );
        }
        // unused in this test, but exercised for coverage of the accessor
        let mut accum = CentroidAccumulator::zero(2, 2);
        accum.add_sample(1, data.row(0));
        assert_eq!(accum.count(1), 1);
        assert_eq!(accum.count(0), 0);
    }

    #[test]
    fn assign_sticks_to_current_label_on_exact_ties() {
        // duplicate centroids: every sample is equidistant to both
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![5.0, 5.0], vec![5.0, 5.0]]).unwrap();
        let mut labels = vec![0, 1, 0, 1, 0, 1];
        let mut evals = 0u64;
        let changes = assign_exhaustive(&data, &centroids, &mut labels, &mut evals);
        assert_eq!(changes, 0, "ties must not relabel");
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn cached_assignment_matches_direct_assignment() {
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![0.2, 0.1], vec![10.1, 10.2]]).unwrap();
        let norms = Norms::compute(&data);
        let mut c_norms = Vec::new();
        centroid_norms_sq(&centroids, &mut c_norms);

        let mut direct = vec![0usize; data.len()];
        let mut cached = vec![0usize; data.len()];
        let mut evals_a = 0u64;
        let mut evals_b = 0u64;
        let changes_a = assign_exhaustive(&data, &centroids, &mut direct, &mut evals_a);
        let changes_b = assign_exhaustive_cached(
            &data,
            &norms,
            &centroids,
            &c_norms,
            &mut cached,
            &mut evals_b,
        );
        assert_eq!(direct, cached);
        assert_eq!(changes_a, changes_b);
        assert_eq!(evals_a, evals_b);
    }

    #[test]
    fn cached_assignment_matches_direct_on_large_norm_descriptors() {
        // The enforced form of the old doc caveat: raw descriptors sitting
        // ~3e3 from the origin make `‖x‖² ≈ 1e7`, so the f32 expansion's
        // cancellation error (~eps·‖x‖² ≈ 1) dwarfs the true intra-cluster
        // distances (≤ ~1e-2).  Without the compensation fallback the cached
        // path scrambles these labels; with it the two paths must agree
        // exactly, sticky ties included.
        let offset = 3.0e3f32;
        let dim = 16;
        let mut rows = Vec::new();
        for c in 0..4 {
            for i in 0..25 {
                let mut row = vec![offset; dim];
                row[c] += 1.0e-1 * (1.0 + c as f32);
                row[(c + 1) % dim] += 1.0e-3 * (i % 7) as f32;
                rows.push(row);
            }
        }
        let data = VectorSet::from_rows(rows).unwrap();
        let mut centroids_rows = Vec::new();
        for c in 0..4 {
            let mut row = vec![offset; dim];
            row[c] += 1.0e-1 * (1.0 + c as f32);
            centroids_rows.push(row);
        }
        // plus an exact duplicate centroid to exercise sticky ties
        centroids_rows.push(centroids_rows[0].clone());
        let centroids = VectorSet::from_rows(centroids_rows).unwrap();

        let norms = Norms::compute(&data);
        let mut c_norms = Vec::new();
        centroid_norms_sq(&centroids, &mut c_norms);

        for start in [0usize, 4] {
            // start=4: every sample currently on the duplicate of centroid 0,
            // where stickiness must hold it against the equal-distance twin.
            let mut direct = vec![start; data.len()];
            let mut cached = vec![start; data.len()];
            let mut evals = 0u64;
            assign_exhaustive(&data, &centroids, &mut direct, &mut evals);
            assign_exhaustive_cached(&data, &norms, &centroids, &c_norms, &mut cached, &mut evals);
            assert_eq!(direct, cached, "start label {start}");
        }
    }

    #[test]
    fn reseed_empty_clusters_revives_clusters() {
        let data = square_data();
        let mut labels = vec![0, 0, 0, 0, 0, 0];
        let mut centroids = VectorSet::from_rows(vec![vec![0.2, 0.2], vec![99.0, 99.0]]).unwrap();
        let reseeded = reseed_empty_clusters(&data, &mut labels, &mut centroids);
        assert_eq!(reseeded, 1);
        let sizes: Vec<usize> = {
            let mut s = vec![0; 2];
            for &l in &labels {
                s[l] += 1;
            }
            s
        };
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes[1] >= 1);
        // the reseeded centroid is one of the far-group points
        let c1 = centroids.row(1);
        assert!(c1[0] >= 10.0);
    }

    #[test]
    fn reseed_noop_when_all_populated() {
        let data = square_data();
        let mut labels = vec![0, 0, 0, 1, 1, 1];
        let mut centroids = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        assert_eq!(reseed_empty_clusters(&data, &mut labels, &mut centroids), 0);
    }

    #[test]
    fn clustering_helpers() {
        let data = square_data();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let clustering = Clustering {
            labels: vec![0, 0, 0, 1, 1, 1],
            centroids,
            iterations: 3,
            trace: vec![],
            init_time: Duration::from_millis(5),
            iter_time: Duration::from_millis(15),
            distance_evals: 42,
        };
        assert_eq!(clustering.k(), 2);
        assert_eq!(clustering.cluster_sizes(), vec![3, 3]);
        assert_eq!(clustering.non_empty_clusters(), 2);
        assert_eq!(clustering.total_time(), Duration::from_millis(20));
        assert!(clustering.distortion(&data) > 0.0);
    }
}
