//! Closure k-means (Wang et al., *Fast approximate k-means via cluster
//! closures*, CVPR 2012) — the strongest baseline of the paper's evaluation
//! (Fig. 5, Fig. 6, Tab. 2).
//!
//! The idea: each cluster is extended to its *closure*, the union of the
//! neighbourhoods of its member samples, where neighbourhoods come from an
//! ensemble of random spatial partitions.  During the assignment step a
//! sample is only compared against the centroids of the clusters whose
//! closure contains it — so, like GK-means, the per-sample cost no longer
//! scales with `k`; unlike GK-means the candidate set is derived from group
//! co-membership rather than from an explicit KNN graph, and the iteration
//! remains a batch Lloyd update (which is why the paper's incremental
//! optimisation reaches lower distortion).
//!
//! The original paper builds neighbourhood groups with random-projection
//! trees.  This implementation uses an ensemble of random hierarchical
//! bisections (the same partitioner as the 2M tree without the equal-size
//! adjustment), which produces groups of the same character: small,
//! axis-agnostic, overlapping across ensemble members.

use std::time::Instant;

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::common::{
    average_distortion, recompute_centroids, reseed_empty_clusters, Clustering, IterationStat,
    KMeansConfig,
};
use crate::seeding::{seed_centroids, Seeding};

/// Closure k-means parameters.
#[derive(Clone, Debug)]
pub struct ClosureKMeans {
    /// Shared convergence configuration.
    pub config: KMeansConfig,
    /// Number of random partitions in the ensemble (the CVPR'12 paper uses a
    /// handful; 3 is a good speed/quality trade-off).
    pub ensemble: usize,
    /// Target group size of each random partition leaf.
    pub group_size: usize,
    /// Seeding strategy for the initial centroids.
    pub seeding: Seeding,
}

impl ClosureKMeans {
    /// Creates a closure k-means with the conventional ensemble of 3 random
    /// partitions and leaf size 50.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            ensemble: 3,
            group_size: 50,
            seeding: Seeding::Random,
        }
    }

    /// Overrides the ensemble size.
    #[must_use]
    pub fn ensemble(mut self, ensemble: usize) -> Self {
        self.ensemble = ensemble.max(1);
        self
    }

    /// Overrides the leaf group size.
    #[must_use]
    pub fn group_size(mut self, group_size: usize) -> Self {
        self.group_size = group_size.max(2);
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid closure k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();

        let start = Instant::now();
        // Build the neighbourhood groups (ensemble of random partitions).
        let groups = build_groups(data, self.ensemble, self.group_size, cfg.seed);
        // group membership per sample for fast closure lookups
        let mut sample_groups: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (gid, group) in groups.iter().enumerate() {
            for &s in group {
                sample_groups[s as usize].push(gid as u32);
            }
        }
        let mut centroids = seed_centroids(data, cfg.k, self.seeding, cfg.seed);
        let init_time = start.elapsed();

        let mut labels = vec![0usize; n];
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;

        // Initial assignment must be exhaustive (no closures exist yet).
        crate::common::assign_exhaustive(data, &centroids, &mut labels, &mut distance_evals);
        recompute_centroids(data, &labels, &mut centroids);

        let mut candidate_buf: Vec<u32> = Vec::new();
        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // Closure of each cluster = union of groups touched by its members.
            // Represent inverted: for each group, which clusters touch it.
            let mut group_clusters: Vec<Vec<u32>> = vec![Vec::new(); groups.len()];
            for (i, &label) in labels.iter().enumerate() {
                for &g in &sample_groups[i] {
                    let list = &mut group_clusters[g as usize];
                    if !list.contains(&(label as u32)) {
                        list.push(label as u32);
                    }
                }
            }

            // Assignment restricted to candidate clusters from the closures.
            let mut changes = 0usize;
            for i in 0..n {
                candidate_buf.clear();
                candidate_buf.push(labels[i] as u32);
                for &g in &sample_groups[i] {
                    for &c in &group_clusters[g as usize] {
                        if !candidate_buf.contains(&c) {
                            candidate_buf.push(c);
                        }
                    }
                }
                let x = data.row(i);
                let mut best = labels[i];
                let mut best_d = l2_sq(x, centroids.row(best));
                distance_evals += 1;
                for &c in &candidate_buf {
                    let c = c as usize;
                    if c == labels[i] {
                        continue;
                    }
                    let d = l2_sq(x, centroids.row(c));
                    distance_evals += 1;
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != labels[i] {
                    labels[i] = best;
                    changes += 1;
                }
            }
            recompute_centroids(data, &labels, &mut centroids);
            reseed_empty_clusters(data, &mut labels, &mut centroids);

            if cfg.record_trace {
                trace.push(IterationStat {
                    iteration: it,
                    distortion: average_distortion(data, &labels, &centroids),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
            if changes == 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

/// Builds the neighbourhood-group ensemble: `ensemble` independent random
/// hierarchical bisections of the data down to leaves of ~`group_size`
/// samples.  Returns the flattened list of leaves (each a list of sample ids).
fn build_groups(data: &VectorSet, ensemble: usize, group_size: usize, seed: u64) -> Vec<Vec<u32>> {
    let n = data.len();
    let mut groups = Vec::new();
    for e in 0..ensemble {
        let mut rng = rng_from_seed(seed ^ (0x9e37_79b9 * (e as u64 + 1)));
        let mut stack: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        while let Some(part) = stack.pop() {
            if part.len() <= group_size.max(2) {
                if !part.is_empty() {
                    groups.push(part);
                }
                continue;
            }
            let (left, right) = random_bisect(data, &part, &mut rng);
            // Degenerate split (duplicate pivots / identical points): fall
            // back to an index split so leaf sizes stay bounded.
            if left.is_empty() || right.is_empty() {
                let mid = part.len() / 2;
                stack.push(part[..mid].to_vec());
                stack.push(part[mid..].to_vec());
                continue;
            }
            stack.push(left);
            stack.push(right);
        }
    }
    groups
}

/// Splits a partition in two by picking two random pivot samples and
/// assigning every sample to the closer pivot — one step of a random
/// projection-free bisection, cheap and good enough for neighbourhood groups.
fn random_bisect(data: &VectorSet, part: &[u32], rng: &mut impl Rng) -> (Vec<u32>, Vec<u32>) {
    let a = part[rng.gen_range(0..part.len())] as usize;
    let mut b = part[rng.gen_range(0..part.len())] as usize;
    let mut tries = 0;
    while b == a && tries < 8 {
        b = part[rng.gen_range(0..part.len())] as usize;
        tries += 1;
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &s in part {
        let d_a = l2_sq(data.row(s as usize), data.row(a));
        let d_b = l2_sq(data.row(s as usize), data.row(b));
        if d_a <= d_b {
            left.push(s);
        } else {
            right.push(s);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 40.0;
                rows.push(vec![
                    base + (i % 8) as f32 * 0.5,
                    base - (i % 4) as f32 * 0.5,
                    (i % 3) as f32 * 0.25,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn groups_cover_all_samples() {
        let data = blobs(40, 3);
        let groups = build_groups(&data, 2, 10, 7);
        let mut seen = vec![0usize; data.len()];
        for g in &groups {
            assert!(!g.is_empty());
            for &s in g {
                seen[s as usize] += 1;
            }
        }
        // each ensemble member partitions the data exactly once
        assert!(seen.iter().all(|&c| c == 2), "{seen:?}");
    }

    #[test]
    fn group_sizes_are_bounded() {
        let data = blobs(50, 4);
        let groups = build_groups(&data, 1, 12, 3);
        // leaves can exceed the target slightly only for degenerate splits;
        // on well-spread data they must respect the bound
        assert!(groups.iter().all(|g| g.len() <= 12));
    }

    #[test]
    fn recovers_separable_blobs() {
        // Seed chosen for the workspace RNG (offline xoshiro-based StdRng);
        // random seeding can legitimately merge blobs on unlucky draws.
        let data = blobs(50, 4);
        let result = ClosureKMeans::new(KMeansConfig::with_k(4).max_iters(20).seed(0))
            .group_size(20)
            .fit(&data);
        assert_eq!(result.labels.len(), data.len());
        assert_eq!(result.non_empty_clusters(), 4);
        assert!(result.distortion(&data) < 5.0);
    }

    #[test]
    fn comparable_quality_to_lloyd_with_fewer_candidate_checks_at_large_k() {
        // With k = 16 on 320 samples the closure candidate sets are much
        // smaller than k, so the distance-eval count per iteration must be
        // well below Lloyd's n·k while distortion stays in the same ballpark.
        let data = blobs(20, 16);
        let lloyd = LloydKMeans::new(KMeansConfig::with_k(16).max_iters(15).seed(2)).fit(&data);
        let closure = ClosureKMeans::new(KMeansConfig::with_k(16).max_iters(15).seed(2))
            .group_size(16)
            .fit(&data);
        assert!(closure.distortion(&data) < lloyd.distortion(&data) * 2.0 + 1.0);
        let lloyd_per_iter = lloyd.distance_evals / lloyd.iterations as u64;
        let closure_per_iter = closure.distance_evals / closure.iterations.max(1) as u64;
        assert!(
            closure_per_iter < lloyd_per_iter,
            "closure {closure_per_iter} vs lloyd {lloyd_per_iter}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(25, 3);
        let a = ClosureKMeans::new(KMeansConfig::with_k(3).max_iters(10).seed(4)).fit(&data);
        let b = ClosureKMeans::new(KMeansConfig::with_k(3).max_iters(10).seed(4)).fit(&data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn trace_is_monotone_after_first_iterations() {
        let data = blobs(40, 3);
        let result = ClosureKMeans::new(KMeansConfig::with_k(3).max_iters(20).seed(8)).fit(&data);
        let trace: Vec<f64> = result.trace.iter().map(|t| t.distortion).collect();
        assert!(!trace.is_empty());
        assert!(*trace.last().unwrap() <= trace.first().unwrap() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid closure k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(5, 2);
        let _ = ClosureKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
