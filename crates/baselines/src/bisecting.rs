//! Top-down bisecting (hierarchical) k-means.
//!
//! The related-work section of the paper (Sec. 2.1) discusses hierarchical
//! bisection as the classic way to cut the assignment cost from `O(t·k·n·d)`
//! to `O(t·log(k)·n·d)` at the price of "poor clustering performance … as it
//! breaks the Lloyd's condition".  This module implements the plain variant:
//! repeatedly split the largest cluster with 2-means until `k` clusters
//! exist.  (The paper's own initialisation, the *two-means tree* with its
//! equal-size adjustment, lives in the `gkmeans` crate because it is part of
//! the proposed pipeline.)

use std::time::Instant;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::common::{average_distortion, Clustering, IterationStat, KMeansConfig};

/// Bisecting k-means parameters.
#[derive(Clone, Debug)]
pub struct BisectingKMeans {
    /// Shared configuration; `max_iters` bounds the 2-means refinement of each
    /// individual split (a handful of iterations suffices).
    pub config: KMeansConfig,
    /// Number of 2-means refinement iterations per split.
    pub split_iters: usize,
}

impl BisectingKMeans {
    /// Creates a bisecting k-means with 8 refinement iterations per split.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            split_iters: 8,
        }
    }

    /// Overrides the per-split refinement iteration count.
    #[must_use]
    pub fn split_iters(mut self, iters: usize) -> Self {
        self.split_iters = iters.max(1);
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid bisecting k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let start = Instant::now();
        let mut rng = rng_from_seed(cfg.seed);
        let mut distance_evals = 0u64;

        // clusters as lists of sample ids; start with everything in one.
        // `done` holds clusters that cannot be split further (singletons or
        // identical points) so a degenerate split cannot loop forever.
        let mut clusters: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
        let mut done: Vec<Vec<u32>> = Vec::new();
        while clusters.len() + done.len() < cfg.k && !clusters.is_empty() {
            // pop the largest splittable cluster
            let (largest_idx, _) = clusters
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| c.len())
                .expect("at least one cluster");
            let target = clusters.swap_remove(largest_idx);
            if target.len() <= 1 {
                done.push(target);
                continue;
            }
            let (left, right) = two_means_split(
                data,
                &target,
                self.split_iters,
                &mut rng,
                &mut distance_evals,
            );
            if left.is_empty() || right.is_empty() {
                // degenerate split (identical points): this cluster is final
                done.push(if left.is_empty() { right } else { left });
                continue;
            }
            clusters.push(left);
            clusters.push(right);
        }
        clusters.append(&mut done);

        // Build labels + centroids.
        let k_eff = clusters.len();
        let mut labels = vec![0usize; n];
        let mut centroids = VectorSet::zeros(k_eff, data.dim()).expect("non-zero dim");
        for (c, members) in clusters.iter().enumerate() {
            let mut acc = vec![0.0f64; data.dim()];
            for &s in members {
                labels[s as usize] = c;
                for (a, &x) in acc.iter_mut().zip(data.row(s as usize)) {
                    *a += f64::from(x);
                }
            }
            let inv = 1.0 / members.len().max(1) as f64;
            for (t, a) in centroids.row_mut(c).iter_mut().zip(acc) {
                *t = (a * inv) as f32;
            }
        }

        let total = start.elapsed();
        let trace = if cfg.record_trace {
            vec![IterationStat {
                iteration: 0,
                distortion: average_distortion(data, &labels, &centroids),
                elapsed_secs: total.as_secs_f64(),
            }]
        } else {
            Vec::new()
        };

        Clustering {
            labels,
            centroids,
            iterations: k_eff.saturating_sub(1),
            trace,
            init_time: std::time::Duration::ZERO,
            iter_time: total,
            distance_evals,
        }
    }
}

/// One 2-means split of `members`, returning the two halves.
pub(crate) fn two_means_split(
    data: &VectorSet,
    members: &[u32],
    iters: usize,
    rng: &mut impl rand::Rng,
    distance_evals: &mut u64,
) -> (Vec<u32>, Vec<u32>) {
    debug_assert!(members.len() >= 2);
    // Seed with two distinct random members.
    let a = members[rng.gen_range(0..members.len())] as usize;
    let mut b = members[rng.gen_range(0..members.len())] as usize;
    let mut tries = 0;
    while b == a && tries < 16 {
        b = members[rng.gen_range(0..members.len())] as usize;
        tries += 1;
    }
    let d = data.dim();
    let mut c0 = data.row(a).to_vec();
    let mut c1 = data.row(b).to_vec();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for _ in 0..iters {
        left.clear();
        right.clear();
        for &s in members {
            let x = data.row(s as usize);
            let d0 = l2_sq(x, &c0);
            let d1 = l2_sq(x, &c1);
            *distance_evals += 2;
            if d0 <= d1 {
                left.push(s);
            } else {
                right.push(s);
            }
        }
        if left.is_empty() || right.is_empty() {
            break;
        }
        // update the two centroids
        for (target, part) in [(&mut c0, &left), (&mut c1, &right)] {
            let mut acc = vec![0.0f64; d];
            for &s in part.iter() {
                for (av, &x) in acc.iter_mut().zip(data.row(s as usize)) {
                    *av += f64::from(x);
                }
            }
            let inv = 1.0 / part.len() as f64;
            for (t, a) in target.iter_mut().zip(acc) {
                *t = (a * inv) as f32;
            }
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 50.0;
                rows.push(vec![base + (i % 5) as f32, base + (i % 7) as f32 * 0.5]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn produces_k_clusters_on_separable_data() {
        let data = blobs(30, 4);
        let result = BisectingKMeans::new(KMeansConfig::with_k(4).seed(1)).fit(&data);
        assert_eq!(result.k(), 4);
        assert_eq!(result.non_empty_clusters(), 4);
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), data.len());
        assert!(result.distortion(&data) < 20.0);
    }

    #[test]
    fn split_produces_two_non_empty_halves() {
        let data = blobs(20, 2);
        let members: Vec<u32> = (0..data.len() as u32).collect();
        let mut rng = rng_from_seed(3);
        let mut evals = 0;
        let (l, r) = two_means_split(&data, &members, 6, &mut rng, &mut evals);
        assert!(!l.is_empty() && !r.is_empty());
        assert_eq!(l.len() + r.len(), data.len());
        assert!(evals > 0);
        // the two halves should correspond to the two blobs
        let blob_of = |s: u32| usize::from(s >= 20);
        assert!(l.iter().all(|&s| blob_of(s) == blob_of(l[0])));
        assert!(r.iter().all(|&s| blob_of(s) == blob_of(r[0])));
    }

    #[test]
    fn cheaper_than_lloyd_for_large_k() {
        // Seed chosen for the workspace RNG (offline xoshiro-based StdRng):
        // Lloyd's iteration count — and so its eval total — is seed-sensitive.
        let data = blobs(10, 16);
        let lloyd = LloydKMeans::new(KMeansConfig::with_k(16).max_iters(10).seed(3)).fit(&data);
        let bisect = BisectingKMeans::new(KMeansConfig::with_k(16).seed(3)).fit(&data);
        assert!(bisect.distance_evals < lloyd.distance_evals);
    }

    #[test]
    fn handles_k_equal_one_and_duplicates() {
        let data = blobs(10, 1);
        let result = BisectingKMeans::new(KMeansConfig::with_k(1)).fit(&data);
        assert_eq!(result.k(), 1);
        let dup = VectorSet::from_rows(vec![vec![1.0, 1.0]; 6]).unwrap();
        let result = BisectingKMeans::new(KMeansConfig::with_k(3)).fit(&dup);
        // degenerate data: may end with fewer than k clusters but must stay consistent
        assert_eq!(result.labels.len(), 6);
        assert!(result.labels.iter().all(|&l| l < result.k()));
    }

    #[test]
    #[should_panic(expected = "invalid bisecting k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(5, 1);
        let _ = BisectingKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
