//! HKM — hierarchical k-means ("vocabulary tree"), ref. \[45\] (Muja & Lowe,
//! FLANN) and the Nistér–Stewénius vocabulary tree the paper's related work
//! builds on.
//!
//! Clustering proceeds top-down with a branching factor `b`: the current
//! largest node is split into `b` children with a small Lloyd run, until `k`
//! leaves exist.  Each leaf is one output cluster.  The same tree doubles as a
//! quantizer: [`HkmTree::assign`] descends from the root picking the closest
//! child at every level, which costs `O(b·log_b k)` distance evaluations per
//! query instead of `O(k)` — the classic speed/quality trade-off the paper
//! contrasts GK-means against (Sec. 2.1: hierarchical methods are fast but
//! "poor clustering performance is achieved in the usual case as it breaks
//! the Lloyd's condition").

use std::time::Instant;

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::common::{average_distortion, Clustering, IterationStat, KMeansConfig};

/// Hierarchical k-means parameters.
#[derive(Clone, Debug)]
pub struct HierarchicalKMeans {
    /// Shared configuration; `config.k` is the number of leaves (= clusters).
    pub config: KMeansConfig,
    /// Branching factor `b ≥ 2` of every split.
    pub branching: usize,
    /// Lloyd refinement iterations inside each split.
    pub split_iters: usize,
}

/// One node of the built vocabulary tree.
#[derive(Clone, Debug)]
enum HkmNode {
    /// A leaf holds the index of the output cluster it represents.
    Leaf { cluster: usize },
    /// An internal node holds its children's centroids and node indices.
    Internal {
        centroids: VectorSet,
        children: Vec<usize>,
    },
}

/// The quantizer produced alongside the flat clustering: a tree whose leaves
/// are the final clusters.
#[derive(Clone, Debug)]
pub struct HkmTree {
    nodes: Vec<HkmNode>,
    root: usize,
    dim: usize,
    leaves: usize,
}

impl HkmTree {
    /// Number of leaf clusters.
    pub fn leaves(&self) -> usize {
        self.leaves
    }

    /// Quantizes `query` by greedy descent, returning the leaf cluster index
    /// and the number of distance evaluations spent.
    ///
    /// # Panics
    ///
    /// Panics when the query dimensionality does not match the tree's.
    pub fn assign(&self, query: &[f32]) -> (usize, u64) {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut node = self.root;
        let mut evals = 0u64;
        loop {
            match &self.nodes[node] {
                HkmNode::Leaf { cluster } => return (*cluster, evals),
                HkmNode::Internal {
                    centroids,
                    children,
                } => {
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for (c, centroid) in centroids.rows().enumerate() {
                        let d = l2_sq(query, centroid);
                        evals += 1;
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    node = children[best];
                }
            }
        }
    }
}

impl HierarchicalKMeans {
    /// Creates an HKM with branching factor 8 and 6 refinement iterations per
    /// split (FLANN-like defaults).
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            branching: 8,
            split_iters: 6,
        }
    }

    /// Sets the branching factor (clamped to ≥ 2).
    #[must_use]
    pub fn branching(mut self, branching: usize) -> Self {
        self.branching = branching.max(2);
        self
    }

    /// Sets the per-split Lloyd iteration count.
    #[must_use]
    pub fn split_iters(mut self, iters: usize) -> Self {
        self.split_iters = iters.max(1);
        self
    }

    /// Runs the clustering, returning only the flat [`Clustering`].
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        self.fit_with_tree(data).0
    }

    /// Runs the clustering and also returns the vocabulary tree quantizer.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit_with_tree(&self, data: &VectorSet) -> (Clustering, HkmTree) {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid hierarchical k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let start = Instant::now();
        let mut rng = rng_from_seed(cfg.seed);
        let mut distance_evals = 0u64;

        // Working clusters: (member ids, index of the tree node representing
        // them).  Nodes start as leaves and are converted to internal nodes
        // when split.
        let mut nodes: Vec<HkmNode> = vec![HkmNode::Leaf {
            cluster: usize::MAX,
        }];
        let root = 0usize;
        let mut open: Vec<(Vec<u32>, usize)> = vec![((0..n as u32).collect(), root)];
        let mut closed: Vec<(Vec<u32>, usize)> = Vec::new();

        while open.len() + closed.len() < cfg.k && !open.is_empty() {
            // Split the largest open node.
            let (idx, _) = open
                .iter()
                .enumerate()
                .max_by_key(|(_, (members, _))| members.len())
                .expect("open is non-empty");
            let (members, node_idx) = open.swap_remove(idx);
            if members.len() <= 1 {
                closed.push((members, node_idx));
                continue;
            }
            // The number of children is capped so we never overshoot `k`
            // leaves: the popped node is already excluded from the count, so
            // its `b` children may add at most `k - (open + closed)` leaves.
            let remaining = cfg.k - (open.len() + closed.len());
            let b = self.branching.min(members.len()).min(remaining);
            if b < 2 {
                closed.push((members, node_idx));
                continue;
            }
            let (parts, centroids) = lloyd_split(
                data,
                &members,
                b,
                self.split_iters,
                &mut rng,
                &mut distance_evals,
            );
            let non_empty: Vec<(Vec<u32>, usize)> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(c, p)| (p, c))
                .collect();
            if non_empty.len() < 2 {
                // Degenerate split (identical points); keep the node as a leaf.
                closed.push((members, node_idx));
                continue;
            }
            // Materialize child nodes and rewrite this node as internal.
            let mut child_nodes = Vec::with_capacity(non_empty.len());
            let mut child_centroids =
                VectorSet::zeros(non_empty.len(), data.dim()).expect("non-zero dimensionality");
            for (slot, (part, original_c)) in non_empty.into_iter().enumerate() {
                let child_idx = nodes.len();
                nodes.push(HkmNode::Leaf {
                    cluster: usize::MAX,
                });
                child_centroids
                    .row_mut(slot)
                    .copy_from_slice(centroids.row(original_c));
                child_nodes.push(child_idx);
                open.push((part, child_idx));
            }
            nodes[node_idx] = HkmNode::Internal {
                centroids: child_centroids,
                children: child_nodes,
            };
        }
        open.append(&mut closed);

        // Assign final cluster indices to the leaves and build the flat output.
        let k_eff = open.len();
        let mut labels = vec![0usize; n];
        let mut centroids = VectorSet::zeros(k_eff, data.dim()).expect("non-zero dim");
        for (cluster, (members, node_idx)) in open.iter().enumerate() {
            nodes[*node_idx] = HkmNode::Leaf { cluster };
            let mut acc = vec![0.0f64; data.dim()];
            for &s in members {
                labels[s as usize] = cluster;
                for (a, &x) in acc.iter_mut().zip(data.row(s as usize)) {
                    *a += f64::from(x);
                }
            }
            let inv = 1.0 / members.len().max(1) as f64;
            for (t, a) in centroids.row_mut(cluster).iter_mut().zip(acc) {
                *t = (a * inv) as f32;
            }
        }

        let total = start.elapsed();
        let trace = if cfg.record_trace {
            vec![IterationStat {
                iteration: 0,
                distortion: average_distortion(data, &labels, &centroids),
                elapsed_secs: total.as_secs_f64(),
            }]
        } else {
            Vec::new()
        };

        let clustering = Clustering {
            labels,
            centroids,
            iterations: k_eff.saturating_sub(1),
            trace,
            init_time: std::time::Duration::ZERO,
            iter_time: total,
            distance_evals,
        };
        let tree = HkmTree {
            nodes,
            root,
            dim: data.dim(),
            leaves: k_eff,
        };
        (clustering, tree)
    }
}

/// Splits `members` into `b` parts with a small Lloyd run; returns the parts
/// and the `b × d` centroids.
fn lloyd_split(
    data: &VectorSet,
    members: &[u32],
    b: usize,
    iters: usize,
    rng: &mut impl Rng,
    distance_evals: &mut u64,
) -> (Vec<Vec<u32>>, VectorSet) {
    let d = data.dim();
    // Seed with b distinct members (best effort on duplicates).
    let mut seeds: Vec<usize> = Vec::with_capacity(b);
    let mut guard = 0;
    while seeds.len() < b && guard < 16 * b {
        let cand = members[rng.gen_range(0..members.len())] as usize;
        if !seeds.contains(&cand) {
            seeds.push(cand);
        }
        guard += 1;
    }
    while seeds.len() < b {
        seeds.push(members[rng.gen_range(0..members.len())] as usize);
    }
    let mut centroids = VectorSet::zeros(b, d).expect("non-zero dim");
    for (c, &s) in seeds.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(s));
    }

    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); b];
    for _ in 0..iters {
        for p in &mut parts {
            p.clear();
        }
        for &s in members {
            let x = data.row(s as usize);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..b {
                let dd = l2_sq(x, centroids.row(c));
                *distance_evals += 1;
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            parts[best].push(s);
        }
        for (c, part) in parts.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let mut acc = vec![0.0f64; d];
            for &s in part {
                for (a, &x) in acc.iter_mut().zip(data.row(s as usize)) {
                    *a += f64::from(x);
                }
            }
            let inv = 1.0 / part.len() as f64;
            for (t, a) in centroids.row_mut(c).iter_mut().zip(acc) {
                *t = (a * inv) as f32;
            }
        }
    }
    (parts, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;
    use vecstore::sample::rng_from_seed;

    fn blobs(per: usize, k: usize, spread: f32, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::new();
        for c in 0..k {
            for _ in 0..per {
                let base = c as f32 * 30.0;
                rows.push(vec![
                    base + rng.gen_range(-spread..spread),
                    base + rng.gen_range(-spread..spread),
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn produces_exactly_k_clusters_on_separable_data() {
        let data = blobs(25, 8, 1.0, 1);
        let result = HierarchicalKMeans::new(KMeansConfig::with_k(8).seed(2))
            .branching(4)
            .fit(&data);
        assert_eq!(result.k(), 8);
        assert_eq!(result.non_empty_clusters(), 8);
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), data.len());
        // Hierarchical splits may merge/split blobs sub-optimally (that is the
        // quality loss Sec. 2.1 describes), but the result must be far better
        // than an arbitrary equal partition of the same data.
        let arbitrary: Vec<usize> = (0..data.len()).map(|i| i % 8).collect();
        let mut arbitrary_centroids = VectorSet::zeros(8, data.dim()).unwrap();
        crate::common::recompute_centroids(&data, &arbitrary, &mut arbitrary_centroids);
        let arbitrary_e = average_distortion(&data, &arbitrary, &arbitrary_centroids);
        assert!(
            result.distortion(&data) < arbitrary_e * 0.5,
            "hkm {} vs arbitrary {arbitrary_e}",
            result.distortion(&data)
        );
    }

    #[test]
    fn tree_assignment_agrees_with_training_labels_on_tight_blobs() {
        let data = blobs(20, 6, 0.3, 3);
        let (clustering, tree) = HierarchicalKMeans::new(KMeansConfig::with_k(6).seed(4))
            .branching(3)
            .fit_with_tree(&data);
        assert_eq!(tree.leaves(), clustering.k());
        let mut agree = 0usize;
        for i in 0..data.len() {
            let (leaf, evals) = tree.assign(data.row(i));
            assert!(evals > 0);
            if leaf == clustering.labels[i] {
                agree += 1;
            }
        }
        // On well-separated blobs the greedy descent re-finds the training
        // leaf for the overwhelming majority of points.
        assert!(agree * 10 >= data.len() * 9, "{agree}/{}", data.len());
    }

    #[test]
    fn quantization_is_cheaper_than_flat_scan_for_large_k() {
        let data = blobs(8, 32, 1.0, 5); // 256 samples, k = 32
        let (_, tree) = HierarchicalKMeans::new(KMeansConfig::with_k(32).seed(6))
            .branching(4)
            .fit_with_tree(&data);
        let (_, evals) = tree.assign(data.row(0));
        assert!(
            evals < 32,
            "tree descent should check far fewer than k centroids, checked {evals}"
        );
    }

    #[test]
    fn cheaper_than_lloyd_but_usually_worse_quality() {
        let data = blobs(15, 16, 4.0, 7);
        let cfg = KMeansConfig::with_k(16).max_iters(15).seed(8);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let hkm = HierarchicalKMeans::new(cfg).branching(4).fit(&data);
        assert!(hkm.distance_evals < lloyd.distance_evals);
        // Sec. 2.1's observation: hierarchical clustering trades quality for
        // speed — allow a generous margin but it must stay in the same ballpark.
        assert!(hkm.distortion(&data) < lloyd.distortion(&data) * 3.0 + 1.0);
    }

    #[test]
    fn handles_duplicates_and_k_one() {
        let dup = VectorSet::from_rows(vec![vec![2.0, 2.0]; 10]).unwrap();
        let result = HierarchicalKMeans::new(KMeansConfig::with_k(4).seed(9)).fit(&dup);
        assert_eq!(result.labels.len(), 10);
        assert!(result.labels.iter().all(|&l| l < result.k()));

        let data = blobs(10, 1, 0.5, 10);
        let result = HierarchicalKMeans::new(KMeansConfig::with_k(1).seed(11)).fit(&data);
        assert_eq!(result.k(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(12, 5, 1.5, 12);
        let a = HierarchicalKMeans::new(KMeansConfig::with_k(5).seed(13))
            .branching(3)
            .fit(&data);
        let b = HierarchicalKMeans::new(KMeansConfig::with_k(5).seed(13))
            .branching(3)
            .fit(&data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "invalid hierarchical k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(4, 1, 0.5, 14);
        let _ = HierarchicalKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
