//! Elkan's triangle-inequality accelerated k-means (ICML 2003) — ref. \[29\] of
//! the paper.
//!
//! Elkan's algorithm produces exactly the same sequence of assignments as
//! Lloyd's k-means while skipping most distance computations through upper and
//! lower bounds maintained per sample.  The paper points out its drawback for
//! the large-`k` regime it targets: "a lot of extra memory are required …
//! memory complexity is quadratic to k" — this implementation keeps the
//! `n × k` lower-bound matrix and the `k × k` centre-distance matrix exactly
//! as described, which is what makes it unsuitable for `k = 10⁶` (Tab. 2) and
//! motivates GK-means.
//!
//! Distances inside the bound logic are plain Euclidean (the triangle
//! inequality does not hold for squared distances); reported distortion uses
//! squared distances like every other variant.
//!
//! The `O(n·k)` bound-maintenance sweeps — seeding the bound matrix from the
//! initial distance tile and shifting every bound by the per-epoch centroid
//! drift — honour [`KMeansConfig::threads`]: fixed
//! [`crate::common::BOUND_ROW_BLOCK`]-row blocks run on the process worker
//! pool and merge in block order, so the bounds (and therefore every skip
//! decision, label, and `distance_evals` count) are bit-identical at any
//! thread count.  The per-sample decision loop itself stays sequential: it is
//! where the algorithm's data-dependent skip structure lives, and the paper's
//! cost model counts exactly its distance evaluations.

use std::time::Instant;

use vecstore::distance::l2_sq;
use vecstore::parallel::{effective_threads, run_mut_blocks};
use vecstore::VectorSet;

use crate::common::{
    average_distortion, recompute_centroids, reseed_empty_clusters, Clustering, IterationStat,
    KMeansConfig, BOUND_ROW_BLOCK,
};
use crate::seeding::{seed_centroids, Seeding};

/// Elkan's exact accelerated k-means.
#[derive(Clone, Debug)]
pub struct ElkanKMeans {
    /// Shared convergence configuration.
    pub config: KMeansConfig,
    /// Seeding strategy.
    pub seeding: Seeding,
}

impl ElkanKMeans {
    /// Creates an Elkan k-means with random seeding.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            seeding: Seeding::Random,
        }
    }

    /// Selects a different seeding strategy.
    #[must_use]
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid elkan k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let k = cfg.k;
        let threads = effective_threads(cfg.threads);

        let start = Instant::now();
        let mut centroids = seed_centroids(data, k, self.seeding, cfg.seed);
        let init_time = start.elapsed();
        let iter_start = Instant::now();

        let mut distance_evals = 0u64;
        let mut labels = vec![0usize; n];
        // upper[i]: upper bound on d(x_i, centroid[labels[i]]);
        // lower[i*k + c]: lower bound on d(x_i, centroid[c]).
        let mut upper = vec![0.0f32; n];
        let mut lower = vec![0.0f32; n * k];

        // Initial assignment with full distance computations, seeding bounds.
        // The `n × k` lower-bound matrix is exactly an `n × k` distance tile,
        // so one blocked many-to-many call fills it through the register-
        // tiled kernel; the bound logic needs plain (not squared) distances,
        // hence the sqrt pass that also extracts the argmin.
        vecstore::kernels::l2_sq_many_to_many(
            data.as_flat(),
            centroids.as_flat(),
            data.dim(),
            &mut lower,
        );
        distance_evals += n as u64 * k as u64;
        // Per-row sqrt + argmin over fixed row blocks: every row is
        // independent, so the blocked sweep is bit-identical at any thread
        // count; the block labels come back in block order.
        let block_labels: Vec<Vec<usize>> = run_mut_blocks(
            threads,
            &mut upper,
            BOUND_ROW_BLOCK,
            &mut lower,
            BOUND_ROW_BLOCK * k,
            |_, upper_rows, lower_rows| {
                upper_rows
                    .iter_mut()
                    .enumerate()
                    .map(|(r, u)| {
                        let row_bounds = &mut lower_rows[r * k..(r + 1) * k];
                        let mut best = 0usize;
                        let mut best_d = f32::INFINITY;
                        for (c, bound) in row_bounds.iter_mut().enumerate() {
                            *bound = bound.sqrt();
                            if *bound < best_d {
                                best_d = *bound;
                                best = c;
                            }
                        }
                        *u = best_d;
                        best
                    })
                    .collect()
            },
        );
        for (blk, block) in block_labels.iter().enumerate() {
            labels[blk * BOUND_ROW_BLOCK..blk * BOUND_ROW_BLOCK + block.len()]
                .copy_from_slice(block);
        }

        let mut trace = Vec::new();
        let mut iterations = 0usize;
        let mut centre_dist = vec![0.0f32; k * k];
        let mut s = vec![0.0f32; k];
        let mut new_centroids;

        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // Step 1: centre-centre distances and s(c) = ½ min_{c'≠c} d(c, c').
            for a in 0..k {
                let mut min_other = f32::INFINITY;
                for b in 0..k {
                    if a == b {
                        centre_dist[a * k + b] = 0.0;
                        continue;
                    }
                    let d = l2_sq(centroids.row(a), centroids.row(b)).sqrt();
                    distance_evals += 1;
                    centre_dist[a * k + b] = d;
                    if d < min_other {
                        min_other = d;
                    }
                }
                s[a] = 0.5 * min_other;
            }

            let mut changes = 0usize;
            for i in 0..n {
                let a = labels[i];
                // Step 2: skip the whole sample when u(x) ≤ s(a(x)).
                if upper[i] <= s[a] {
                    continue;
                }
                let x = data.row(i);
                let mut u_tight = false;
                let mut u = upper[i];
                for c in 0..k {
                    if c == a {
                        continue;
                    }
                    // Step 3 conditions.
                    if u <= lower[i * k + c] || u <= 0.5 * centre_dist[a * k + c] {
                        continue;
                    }
                    // 3a: tighten u with the true distance to the owner.
                    if !u_tight {
                        u = l2_sq(x, centroids.row(labels[i])).sqrt();
                        distance_evals += 1;
                        lower[i * k + labels[i]] = u;
                        upper[i] = u;
                        u_tight = true;
                        if u <= lower[i * k + c] || u <= 0.5 * centre_dist[labels[i] * k + c] {
                            continue;
                        }
                    }
                    // 3b: compute the candidate distance.
                    let d = l2_sq(x, centroids.row(c)).sqrt();
                    distance_evals += 1;
                    lower[i * k + c] = d;
                    if d < u {
                        labels[i] = c;
                        upper[i] = d;
                        u = d;
                        changes += 1;
                    }
                }
            }

            // Step 4-7: recompute centroids, measure drift, adjust bounds.
            new_centroids = centroids.clone();
            recompute_centroids(data, &labels, &mut new_centroids);
            reseed_empty_clusters(data, &mut labels, &mut new_centroids);
            let mut drift = vec![0.0f32; k];
            for (c, slot) in drift.iter_mut().enumerate() {
                *slot = l2_sq(centroids.row(c), new_centroids.row(c)).sqrt();
                distance_evals += 1;
            }
            centroids = new_centroids.clone();
            // Bounds maintenance: shift every sample's bounds by its owner's
            // (upper) and each centre's (lower) drift, in fixed row blocks on
            // the worker pool — the `O(n·k)` sweep that dominates an epoch
            // once the skip conditions have warmed up.
            let labels_ref = &labels;
            let drift_ref = &drift;
            run_mut_blocks(
                threads,
                &mut upper,
                BOUND_ROW_BLOCK,
                &mut lower,
                BOUND_ROW_BLOCK * k,
                |blk, upper_rows, lower_rows| {
                    let base = blk * BOUND_ROW_BLOCK;
                    for (r, u) in upper_rows.iter_mut().enumerate() {
                        *u += drift_ref[labels_ref[base + r]];
                        let row = &mut lower_rows[r * k..(r + 1) * k];
                        for (l, &d) in row.iter_mut().zip(drift_ref) {
                            *l = (*l - d).max(0.0);
                        }
                    }
                },
            );

            if cfg.record_trace {
                trace.push(IterationStat {
                    iteration: it,
                    distortion: average_distortion(data, &labels, &centroids),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
            if changes == 0 && it > 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 12.0;
                rows.push(vec![
                    base + (i % 6) as f32 * 0.3,
                    base - (i % 4) as f32 * 0.4,
                    (i % 5) as f32 * 0.2,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn matches_lloyd_distortion() {
        // Elkan is an exact acceleration: with identical seeding it must reach
        // (essentially) the same distortion as Lloyd.
        let data = blobs(40, 5);
        let cfg = KMeansConfig::with_k(5).max_iters(25).seed(3);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let elkan = ElkanKMeans::new(cfg).fit(&data);
        let dl = lloyd.distortion(&data);
        let de = elkan.distortion(&data);
        assert!(
            (dl - de).abs() <= 0.05 * dl.max(1e-9),
            "lloyd {dl} vs elkan {de}"
        );
    }

    #[test]
    fn fewer_distance_evals_than_lloyd() {
        let data = blobs(60, 8);
        let cfg = KMeansConfig::with_k(8)
            .max_iters(20)
            .seed(1)
            .record_trace(false);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let elkan = ElkanKMeans::new(cfg).fit(&data);
        assert!(
            elkan.distance_evals < lloyd.distance_evals,
            "elkan {} vs lloyd {}",
            elkan.distance_evals,
            lloyd.distance_evals
        );
    }

    #[test]
    fn produces_valid_labels() {
        let data = blobs(20, 4);
        let result = ElkanKMeans::new(KMeansConfig::with_k(4).max_iters(15).seed(9)).fit(&data);
        assert_eq!(result.labels.len(), data.len());
        assert!(result.labels.iter().all(|&l| l < 4));
        assert_eq!(result.non_empty_clusters(), 4);
    }

    #[test]
    fn trace_distortion_is_non_increasing() {
        let data = blobs(30, 3);
        let result = ElkanKMeans::new(KMeansConfig::with_k(3).max_iters(15).seed(5)).fit(&data);
        let d: Vec<f64> = result.trace.iter().map(|t| t.distortion).collect();
        for w in d.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "invalid elkan k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(4, 2);
        let _ = ElkanKMeans::new(KMeansConfig::with_k(100)).fit(&data);
    }
}
