//! Traditional (Lloyd's) k-means — the "k-means" baseline of Fig. 5–7.
//!
//! Each iteration (i) assigns every sample to its closest centroid by
//! exhaustive comparison (`O(n·d·k)`, the bottleneck the paper attacks) and
//! (ii) recomputes every centroid as the mean of its members.  Iteration
//! stops at `max_iters` or when the relative distortion improvement falls
//! below `tol`.

use std::time::Instant;

use vecstore::VectorSet;

use crate::common::{
    assign_accumulate_exhaustive, average_distortion, reseed_empty_clusters, CentroidAccumulator,
    Clustering, IterationStat, KMeansConfig,
};
use crate::seeding::{seed_centroids, Seeding};

/// Lloyd's k-means with a configurable seeding strategy.
#[derive(Clone, Debug)]
pub struct LloydKMeans {
    /// Convergence configuration.
    pub config: KMeansConfig,
    /// Seeding strategy (random by default, matching the paper's baseline).
    pub seeding: Seeding,
}

impl LloydKMeans {
    /// Creates a Lloyd k-means with random seeding.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            seeding: Seeding::Random,
        }
    }

    /// Selects a different seeding strategy (e.g. k-means++).
    #[must_use]
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid for `data` (zero `k`, more
    /// clusters than samples, …); the experiment harness validates configs
    /// before dispatching.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let start = Instant::now();
        let mut centroids = seed_centroids(data, cfg.k, self.seeding, cfg.seed);
        let init_time = start.elapsed();

        let mut labels = vec![0usize; data.len()];
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let mut prev_distortion = f64::INFINITY;
        let iter_start = Instant::now();
        let mut iterations = 0usize;

        let threads = vecstore::parallel::effective_threads(cfg.threads);
        let mut accum = CentroidAccumulator::zero(cfg.k, data.dim());

        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // Fused single-pass epoch: the argmin-fused blocked kernel (direct
            // cancellation-free subtraction tile, so exact Lloyd semantics
            // hold on large-norm raw descriptors) accumulates each sample into
            // its winning centroid's sum while the row is still cache-hot —
            // the data is streamed once per iteration, not twice.  Fixed row
            // blocks merged in block order keep the result bit-identical at
            // any thread count.
            let changes = assign_accumulate_exhaustive(
                data,
                &centroids,
                &mut labels,
                &mut accum,
                &mut distance_evals,
                threads,
            );
            accum.write_centroids(&mut centroids);
            reseed_empty_clusters(data, &mut labels, &mut centroids);

            if cfg.record_trace {
                let distortion = average_distortion(data, &labels, &centroids);
                trace.push(IterationStat {
                    iteration: it,
                    distortion,
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
                if cfg.tol > 0.0
                    && prev_distortion.is_finite()
                    && prev_distortion - distortion <= cfg.tol * prev_distortion
                {
                    break;
                }
                prev_distortion = distortion;
            }
            if changes == 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize) -> (VectorSet, usize) {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..per {
                let base = c as f32 * 30.0;
                rows.push(vec![
                    base + (i % 7) as f32 * 0.3,
                    base - (i % 5) as f32 * 0.2,
                ]);
            }
        }
        (VectorSet::from_rows(rows).unwrap(), 3)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (data, k) = blobs(30);
        // k-means++ seeding makes the blob recovery deterministic; plain random
        // seeding can legitimately land two centres in one blob.
        let clustering = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(50).seed(3))
            .with_seeding(Seeding::KMeansPlusPlus)
            .fit(&data);
        assert_eq!(clustering.labels.len(), data.len());
        assert_eq!(clustering.k(), k);
        assert_eq!(clustering.non_empty_clusters(), k);
        // Every blob must be pure: samples of one blob share a label.
        for blob in 0..k {
            let first = clustering.labels[blob * 30];
            for i in 0..30 {
                assert_eq!(clustering.labels[blob * 30 + i], first);
            }
        }
        // Distortion is small: every point is within ~2 units of its centre.
        assert!(clustering.distortion(&data) < 2.0);
    }

    #[test]
    fn distortion_is_monotonically_non_increasing() {
        let (data, k) = blobs(40);
        let clustering = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(20).seed(1)).fit(&data);
        let trace: Vec<f64> = clustering.trace.iter().map(|t| t.distortion).collect();
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "distortion increased: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn converges_and_stops_early() {
        let (data, k) = blobs(20);
        let clustering =
            LloydKMeans::new(KMeansConfig::with_k(k).max_iters(100).seed(5)).fit(&data);
        assert!(
            clustering.iterations < 100,
            "should stop when assignments stabilise"
        );
    }

    #[test]
    fn kmeanspp_seeding_never_worse_much() {
        let (data, k) = blobs(25);
        let random = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(30).seed(2)).fit(&data);
        let pp = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(30).seed(2))
            .with_seeding(Seeding::KMeansPlusPlus)
            .fit(&data);
        // Careful seeding may only improve the reached local optimum (within a
        // small numerical slack); random seeding can fall into a worse one.
        assert!(pp.distortion(&data) <= random.distortion(&data) + 1.0);
    }

    #[test]
    fn trace_can_be_disabled() {
        let (data, k) = blobs(10);
        let clustering =
            LloydKMeans::new(KMeansConfig::with_k(k).max_iters(5).record_trace(false)).fit(&data);
        assert!(clustering.trace.is_empty());
        assert!(clustering.distance_evals > 0);
    }

    #[test]
    fn labels_cover_all_samples_and_are_in_range() {
        let (data, k) = blobs(15);
        let clustering = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(10)).fit(&data);
        assert_eq!(clustering.labels.len(), data.len());
        assert!(clustering.labels.iter().all(|&l| l < k));
        assert_eq!(clustering.cluster_sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    #[should_panic(expected = "invalid k-means configuration")]
    fn invalid_config_panics() {
        let (data, _) = blobs(5);
        let _ = LloydKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }

    #[test]
    fn k_equals_one_collapses_to_global_mean() {
        let (data, _) = blobs(10);
        let clustering = LloydKMeans::new(KMeansConfig::with_k(1).max_iters(5)).fit(&data);
        let mean = data.mean().unwrap();
        for (a, b) in clustering.centroids.row(0).iter().zip(&mean) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
