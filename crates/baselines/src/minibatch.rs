//! Mini-Batch k-means (Sculley, WWW 2010) — the "Mini-Batch" baseline.
//!
//! Each iteration draws a small random batch, assigns the batch to the
//! current centroids and moves each centroid towards the assigned batch
//! members with a per-centre learning rate `1/counts[c]`.  The paper observes
//! (Sec. 5.3, 5.4) that Mini-Batch is the fastest baseline but produces much
//! higher distortion — that behaviour is what this implementation reproduces.

use std::time::Instant;

use vecstore::distance::l2_sq;
use vecstore::sample::{rng_from_seed, sample_with_replacement};
use vecstore::VectorSet;

use crate::common::{average_distortion, Clustering, IterationStat, KMeansConfig};
use crate::seeding::{seed_centroids, Seeding};

/// Mini-Batch k-means configuration wrapper.
#[derive(Clone, Debug)]
pub struct MiniBatchKMeans {
    /// Shared convergence configuration (`max_iters` counts batches here).
    pub config: KMeansConfig,
    /// Batch size `b` (Sculley recommends ~1000 for web-scale data).
    pub batch_size: usize,
    /// Seeding strategy for the initial centroids.
    pub seeding: Seeding,
}

impl MiniBatchKMeans {
    /// Creates a Mini-Batch k-means with the conventional batch size of 1000.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            batch_size: 1000,
            seeding: Seeding::Random,
        }
    }

    /// Overrides the batch size.
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Runs the clustering.  The final labels are produced by one full
    /// assignment pass over the data (Sculley's algorithm only maintains
    /// centroids during the iterations).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration, mirroring [`crate::LloydKMeans`].
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid mini-batch configuration: {msg}");
        }
        let cfg = &self.config;
        let start = Instant::now();
        let mut centroids = seed_centroids(data, cfg.k, self.seeding, cfg.seed);
        let init_time = start.elapsed();

        let mut rng = rng_from_seed(cfg.seed ^ xmini_seed());
        let mut counts = vec![0u64; cfg.k];
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;

        for it in 0..cfg.max_iters {
            iterations = it + 1;
            let batch =
                sample_with_replacement(&mut rng, data.len(), self.batch_size.min(data.len()))
                    .expect("non-empty data");
            // Assign the batch.
            let mut batch_labels = Vec::with_capacity(batch.len());
            for &i in &batch {
                let x = data.row(i);
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..cfg.k {
                    let d = l2_sq(x, centroids.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                distance_evals += cfg.k as u64;
                batch_labels.push(best);
            }
            // Gradient step per batch member.
            for (&i, &c) in batch.iter().zip(&batch_labels) {
                counts[c] += 1;
                let eta = 1.0 / counts[c] as f32;
                let x = data.row(i).to_vec();
                let centre = centroids.row_mut(c);
                for (cv, xv) in centre.iter_mut().zip(&x) {
                    *cv = (1.0 - eta) * *cv + eta * *xv;
                }
            }
            if cfg.record_trace {
                // A full labelling pass is needed to report distortion; this is
                // evaluation cost, not algorithm cost, and is excluded from the
                // distance_evals counter on purpose.
                let labels = full_assignment(data, &centroids);
                trace.push(IterationStat {
                    iteration: it,
                    distortion: average_distortion(data, &labels, &centroids),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
        }

        let labels = full_assignment(data, &centroids);
        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

/// Assigns every sample to its closest centroid (used for the final labelling
/// and the distortion trace).
fn full_assignment(data: &VectorSet, centroids: &VectorSet) -> Vec<usize> {
    let mut labels = vec![0usize; data.len()];
    let mut throwaway = 0u64;
    crate::common::assign_exhaustive(data, centroids, &mut labels, &mut throwaway);
    labels
}

/// Obfuscated constant seed component so the mini-batch RNG stream differs
/// from the seeding RNG stream even for equal seeds.
#[allow(non_snake_case)]
const fn xmini_seed() -> u64 {
    0x6d69_6e69_6261_7463
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;

    fn blobs(per: usize) -> (VectorSet, usize) {
        let mut rows = Vec::new();
        for c in 0..4 {
            for i in 0..per {
                let base = c as f32 * 25.0;
                rows.push(vec![
                    base + (i % 6) as f32 * 0.4,
                    base + (i % 3) as f32 * 0.3,
                ]);
            }
        }
        (VectorSet::from_rows(rows).unwrap(), 4)
    }

    #[test]
    fn recovers_separable_blobs() {
        let (data, k) = blobs(50);
        let mut mb =
            MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(40).seed(7)).batch_size(32);
        // k-means++ seeding keeps the blob-recovery assertion deterministic.
        mb.seeding = Seeding::KMeansPlusPlus;
        let mb = mb.fit(&data);
        assert_eq!(mb.labels.len(), data.len());
        assert!(mb.labels.iter().all(|&l| l < k));
        assert!(
            mb.distortion(&data) < 5.0,
            "distortion {}",
            mb.distortion(&data)
        );
    }

    #[test]
    fn worse_than_lloyd_on_average_but_cheaper_per_pass() {
        // The key qualitative claim the paper makes about Mini-Batch: fast,
        // but higher distortion than full k-means.
        let (data, k) = blobs(60);
        let lloyd = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(30).seed(3)).fit(&data);
        let mb = MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(30).seed(3))
            .batch_size(16)
            .fit(&data);
        assert!(mb.distortion(&data) >= lloyd.distortion(&data) - 1e-6);
        // cost counted in distance evals: minibatch touches batch_size*k per
        // iteration vs n*k for lloyd
        assert!(mb.distance_evals < lloyd.distance_evals);
    }

    #[test]
    fn trace_is_recorded_when_requested() {
        let (data, k) = blobs(20);
        let mb = MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(10).seed(1))
            .batch_size(8)
            .fit(&data);
        assert_eq!(mb.trace.len(), 10);
        let off = MiniBatchKMeans::new(
            KMeansConfig::with_k(k)
                .max_iters(10)
                .seed(1)
                .record_trace(false),
        )
        .batch_size(8)
        .fit(&data);
        assert!(off.trace.is_empty());
    }

    #[test]
    fn batch_size_larger_than_n_is_fine() {
        let (data, k) = blobs(5);
        let mb = MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(5).seed(2))
            .batch_size(10_000)
            .fit(&data);
        assert_eq!(mb.labels.len(), data.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, k) = blobs(30);
        let a = MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(15).seed(9))
            .batch_size(16)
            .fit(&data);
        let b = MiniBatchKMeans::new(KMeansConfig::with_k(k).max_iters(15).seed(9))
            .batch_size(16)
            .fit(&data);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    #[should_panic(expected = "invalid mini-batch configuration")]
    fn invalid_config_panics() {
        let (data, _) = blobs(3);
        let _ = MiniBatchKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
