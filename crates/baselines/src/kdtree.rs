//! Randomized KD-tree forest for approximate nearest-centroid queries.
//!
//! This is the indexing structure behind AKM — "approximate k-means" of
//! Philbin et al., CVPR 2007 (ref. \[22\] of the paper) — and the FLANN-style
//! baselines of Muja & Lowe (ref. \[45\]).  The paper's related-work discussion
//! (Sec. 2.1) covers this family: index the *centroids* in a tree, then
//! replace the exhaustive closest-centroid scan by an approximate tree search
//! with a bounded number of leaf checks.  The well-known weakness — which the
//! paper exploits as motivation — is that the approach degrades in high
//! dimension, whereas GK-means side-steps centroid search entirely.
//!
//! The forest follows the standard randomized construction: each tree picks
//! its split dimension at random among the few highest-variance dimensions of
//! the node and splits at the mean value.  Queries descend every tree to a
//! leaf, then continue best-first through a shared priority queue of unvisited
//! branches until `max_checks` points have been scored.

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

/// Parameters of the randomized KD-tree forest.
#[derive(Clone, Copy, Debug)]
pub struct KdForestParams {
    /// Number of randomized trees.
    pub trees: usize,
    /// Maximum number of points held by a leaf node.
    pub leaf_size: usize,
    /// How many of the highest-variance dimensions the random split dimension
    /// is drawn from (FLANN uses 5).
    pub split_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KdForestParams {
    fn default() -> Self {
        Self {
            trees: 4,
            leaf_size: 8,
            split_candidates: 5,
            seed: 0xf0_1e57,
        }
    }
}

impl KdForestParams {
    /// Convenience constructor fixing the number of trees.
    pub fn with_trees(trees: usize) -> Self {
        Self {
            trees: trees.max(1),
            ..Self::default()
        }
    }

    /// Sets the leaf size.
    #[must_use]
    pub fn leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size.max(1);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One search hit: the index of the point in the indexed set plus its squared
/// distance to the query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KdHit {
    /// Row index in the indexed [`VectorSet`].
    pub id: usize,
    /// Squared Euclidean distance to the query.
    pub dist: f32,
}

/// Per-query cost counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct KdSearchStats {
    /// Number of point distance evaluations.
    pub distance_evals: u64,
    /// Number of tree nodes traversed (internal + leaves).
    pub nodes_visited: u64,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        points: Vec<u32>,
    },
    Split {
        dim: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
    root: usize,
}

/// A forest of randomized KD-trees indexing one [`VectorSet`].
///
/// The indexed data is *not* stored inside the structure — queries take the
/// same `VectorSet` that was indexed, which keeps the forest cheap to rebuild
/// every AKM iteration (the centroids move, the forest must follow).
#[derive(Clone, Debug)]
pub struct KdTreeForest {
    trees: Vec<Tree>,
    len: usize,
    dim: usize,
}

impl KdTreeForest {
    /// Builds a forest over `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty.
    pub fn build(data: &VectorSet, params: &KdForestParams) -> Self {
        assert!(!data.is_empty(), "cannot index an empty set");
        let mut rng = rng_from_seed(params.seed);
        let trees = (0..params.trees.max(1))
            .map(|t| build_tree(data, params, rng.gen::<u64>() ^ t as u64))
            .collect();
        Self {
            trees,
            len: data.len(),
            dim: data.dim(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is indexed (never the case for a built forest).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of trees in the forest.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Returns the approximate nearest indexed point of `query`, checking at
    /// most `max_checks` points.  `data` must be the set the forest was built
    /// on.
    pub fn nearest(&self, data: &VectorSet, query: &[f32], max_checks: usize) -> KdHit {
        self.knn(data, query, 1, max_checks).0[0]
    }

    /// Returns the `k` approximate nearest indexed points (ascending by
    /// distance) plus cost counters, scoring at most `max_checks` points.
    ///
    /// # Panics
    ///
    /// Panics when `data` does not match the indexed set's shape or when the
    /// query dimensionality differs.
    pub fn knn(
        &self,
        data: &VectorSet,
        query: &[f32],
        k: usize,
        max_checks: usize,
    ) -> (Vec<KdHit>, KdSearchStats) {
        assert_eq!(data.len(), self.len, "forest was built on a different set");
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut stats = KdSearchStats::default();
        let k = k.max(1);
        let max_checks = max_checks.max(k);

        // Best-first queue of (lower-bound distance, tree index, node index).
        let mut frontier: Vec<(f32, usize, usize)> = Vec::new();
        let mut results: Vec<KdHit> = Vec::with_capacity(k + 1);
        let mut checked = vec![false; self.len];
        let mut checks = 0usize;

        for (ti, tree) in self.trees.iter().enumerate() {
            frontier.push((0.0, ti, tree.root));
        }

        while checks < max_checks {
            // pop the branch with the smallest lower bound
            let Some(best_idx) = frontier
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1 .0
                        .partial_cmp(&b.1 .0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let (bound, ti, mut node_idx) = frontier.swap_remove(best_idx);
            if results.len() >= k && bound > results[results.len() - 1].dist {
                // No remaining branch can improve the current k-th best.
                break;
            }
            // Descend to a leaf, pushing the unvisited sibling branches.
            loop {
                stats.nodes_visited += 1;
                match &self.trees[ti].nodes[node_idx] {
                    Node::Leaf { points } => {
                        for &p in points {
                            let p = p as usize;
                            if checked[p] {
                                continue;
                            }
                            checked[p] = true;
                            checks += 1;
                            let d = l2_sq(query, data.row(p));
                            stats.distance_evals += 1;
                            insert_hit(&mut results, KdHit { id: p, dist: d }, k);
                            if checks >= max_checks {
                                break;
                            }
                        }
                        break;
                    }
                    Node::Split {
                        dim,
                        threshold,
                        left,
                        right,
                    } => {
                        let diff = query[*dim] - *threshold;
                        let (near, far) = if diff <= 0.0 {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        let margin = diff * diff;
                        frontier.push((bound.max(margin), ti, far));
                        node_idx = near;
                    }
                }
            }
        }

        if results.is_empty() {
            // Degenerate fallback (max_checks smaller than any leaf content):
            // score point 0 so the caller always gets an answer.
            let d = l2_sq(query, data.row(0));
            stats.distance_evals += 1;
            results.push(KdHit { id: 0, dist: d });
        }
        (results, stats)
    }
}

fn insert_hit(results: &mut Vec<KdHit>, hit: KdHit, k: usize) {
    if results.len() >= k {
        if let Some(worst) = results.last() {
            if hit.dist >= worst.dist {
                return;
            }
        }
    }
    let pos = results.partition_point(|h| (h.dist, h.id) < (hit.dist, hit.id));
    results.insert(pos, hit);
    if results.len() > k {
        results.pop();
    }
}

fn build_tree(data: &VectorSet, params: &KdForestParams, seed: u64) -> Tree {
    let mut rng = rng_from_seed(seed);
    let mut nodes = Vec::new();
    let all: Vec<u32> = (0..data.len() as u32).collect();
    let root = build_node(data, all, params, &mut rng, &mut nodes);
    Tree { nodes, root }
}

fn build_node(
    data: &VectorSet,
    points: Vec<u32>,
    params: &KdForestParams,
    rng: &mut impl Rng,
    nodes: &mut Vec<Node>,
) -> usize {
    if points.len() <= params.leaf_size {
        nodes.push(Node::Leaf { points });
        return nodes.len() - 1;
    }
    let dim = data.dim();
    // Per-dimension mean and variance over this node's points.
    let mut mean = vec![0.0f64; dim];
    for &p in &points {
        for (m, &x) in mean.iter_mut().zip(data.row(p as usize)) {
            *m += f64::from(x);
        }
    }
    let inv = 1.0 / points.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    let mut var = vec![0.0f64; dim];
    for &p in &points {
        for ((v, m), &x) in var.iter_mut().zip(&mean).zip(data.row(p as usize)) {
            let d = f64::from(x) - *m;
            *v += d * d;
        }
    }

    // Pick the split dimension at random among the top-variance candidates.
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&a, &b| {
        var[b]
            .partial_cmp(&var[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let candidates = params.split_candidates.clamp(1, dim);
    let split_dim = order[rng.gen_range(0..candidates)];
    let threshold = mean[split_dim] as f32;

    let (mut left, mut right): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
    for &p in &points {
        if data.row(p as usize)[split_dim] <= threshold {
            left.push(p);
        } else {
            right.push(p);
        }
    }
    // Degenerate split (all points identical along the chosen dimension):
    // fall back to an arbitrary even split so recursion terminates.
    if left.is_empty() || right.is_empty() {
        let mid = points.len() / 2;
        left = points[..mid].to_vec();
        right = points[mid..].to_vec();
        if left.is_empty() || right.is_empty() {
            nodes.push(Node::Leaf { points });
            return nodes.len() - 1;
        }
    }

    let left_idx = build_node(data, left, params, rng, nodes);
    let right_idx = build_node(data, right, params, rng, nodes);
    nodes.push(Node::Split {
        dim: split_dim,
        threshold,
        left: left_idx,
        right: right_idx,
    });
    nodes.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 8) as f32 * 4.0;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    fn exact_nn(data: &VectorSet, query: &[f32]) -> usize {
        (0..data.len())
            .min_by(|&a, &b| {
                l2_sq(query, data.row(a))
                    .partial_cmp(&l2_sq(query, data.row(b)))
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn unlimited_checks_recover_the_exact_neighbour() {
        let data = clustered(300, 6, 1);
        let forest = KdTreeForest::build(&data, &KdForestParams::with_trees(4).seed(2));
        let queries = clustered(25, 6, 77);
        for q in queries.rows() {
            let hit = forest.nearest(&data, q, data.len());
            assert_eq!(hit.id, exact_nn(&data, q));
        }
    }

    #[test]
    fn bounded_checks_trade_accuracy_for_cost() {
        let data = clustered(500, 8, 3);
        let forest = KdTreeForest::build(&data, &KdForestParams::with_trees(4).seed(4));
        let queries = clustered(40, 8, 99);
        let recall = |checks: usize| -> (f64, u64) {
            let mut hits = 0usize;
            let mut evals = 0u64;
            for q in queries.rows() {
                let (res, stats) = forest.knn(&data, q, 1, checks);
                evals += stats.distance_evals;
                if res[0].id == exact_nn(&data, q) {
                    hits += 1;
                }
            }
            (hits as f64 / queries.len() as f64, evals)
        };
        let (r_low, e_low) = recall(16);
        let (r_high, e_high) = recall(500);
        assert!(
            r_high >= r_low,
            "more checks must not hurt: {r_high} < {r_low}"
        );
        assert!(r_high > 0.9, "full-check recall too low: {r_high}");
        assert!(e_low < e_high, "bounded search must evaluate fewer points");
    }

    #[test]
    fn knn_returns_sorted_unique_results() {
        let data = clustered(200, 5, 5);
        let forest = KdTreeForest::build(&data, &KdForestParams::default().seed(6));
        let (res, stats) = forest.knn(&data, data.row(13), 5, 200);
        assert_eq!(res.len(), 5);
        assert!(stats.distance_evals > 0);
        assert!(stats.nodes_visited > 0);
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<usize> = res.iter().map(|h| h.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5, "duplicate hits returned");
        assert_eq!(
            res[0].id, 13,
            "a base point must be its own nearest neighbour"
        );
    }

    #[test]
    fn tiny_sets_and_tiny_budgets_still_answer() {
        let data = clustered(3, 4, 7);
        let forest =
            KdTreeForest::build(&data, &KdForestParams::with_trees(2).leaf_size(1).seed(8));
        let hit = forest.nearest(&data, data.row(2), 1);
        assert!(hit.id < 3);
        assert!(hit.dist.is_finite());
    }

    #[test]
    fn constant_data_does_not_recurse_forever() {
        let data = VectorSet::from_rows(vec![vec![1.0, 1.0]; 64]).unwrap();
        let forest =
            KdTreeForest::build(&data, &KdForestParams::with_trees(2).leaf_size(4).seed(9));
        let hit = forest.nearest(&data, &[1.0, 1.0], 64);
        assert_eq!(hit.dist, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = clustered(150, 4, 10);
        let a = KdTreeForest::build(&data, &KdForestParams::with_trees(3).seed(11));
        let b = KdTreeForest::build(&data, &KdForestParams::with_trees(3).seed(11));
        let q = data.row(50);
        assert_eq!(a.knn(&data, q, 3, 60).0, b.knn(&data, q, 3, 60).0);
    }

    #[test]
    #[should_panic(expected = "cannot index an empty set")]
    fn empty_set_panics() {
        let empty = VectorSet::zeros(0, 3).unwrap();
        let _ = KdTreeForest::build(&empty, &KdForestParams::default());
    }
}
