//! Hamerly's accelerated k-means (SDM 2010).
//!
//! Hamerly's algorithm keeps a single lower bound per sample (the distance to
//! the *second* closest centre) instead of Elkan's `n × k` bound matrix, so
//! its memory footprint is `O(n)` while still skipping most distance
//! computations.  Together with [`crate::elkan::ElkanKMeans`] it represents
//! the triangle-inequality family (ref. \[29\]) the paper positions GK-means
//! against: exact, memory-hungry (Elkan) or bound-maintenance-heavy (Hamerly),
//! and — unlike GK-means — still `O(k)` per sample in the worst case.
//!
//! The per-epoch bound maintenance (shifting both per-sample bounds by the
//! centroid drift) honours [`KMeansConfig::threads`] through the same
//! fixed-block worker-pool sweep as Elkan's — bit-identical bounds, labels
//! and `distance_evals` at any thread count.

use std::time::Instant;

use vecstore::distance::l2_sq;
use vecstore::parallel::{effective_threads, run_mut_blocks};
use vecstore::VectorSet;

use crate::common::{
    average_distortion, recompute_centroids, reseed_empty_clusters, Clustering, IterationStat,
    KMeansConfig, BOUND_ROW_BLOCK,
};
use crate::seeding::{seed_centroids, Seeding};

/// Hamerly's exact accelerated k-means.
#[derive(Clone, Debug)]
pub struct HamerlyKMeans {
    /// Shared convergence configuration.
    pub config: KMeansConfig,
    /// Seeding strategy.
    pub seeding: Seeding,
}

impl HamerlyKMeans {
    /// Creates a Hamerly k-means with random seeding.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            seeding: Seeding::Random,
        }
    }

    /// Selects a different seeding strategy.
    #[must_use]
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid hamerly k-means configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let k = cfg.k;
        let threads = effective_threads(cfg.threads);

        let start = Instant::now();
        let mut centroids = seed_centroids(data, k, self.seeding, cfg.seed);
        let init_time = start.elapsed();
        let iter_start = Instant::now();

        let mut distance_evals = 0u64;
        let mut labels = vec![0usize; n];
        let mut upper = vec![0.0f32; n]; // bound on d(x, owner)
        let mut lower = vec![0.0f32; n]; // bound on d(x, second closest)

        // Initial assignment through the argmin-fused blocked kernel, whose
        // second-best output is exactly the seed of Hamerly's lower bound
        // (sqrt is monotone, so folding in squared space selects the same
        // owner/second pair; the bounds are then converted to plain
        // distances).
        {
            let current = vec![0u32; n];
            let mut best_idx = vec![0u32; n];
            let mut best_sq = vec![0.0f32; n];
            let mut second_sq = vec![0.0f32; n];
            vecstore::kernels::assign_block(
                data.as_flat(),
                centroids.as_flat(),
                data.dim(),
                &current,
                &mut best_idx,
                &mut best_sq,
                &mut second_sq,
            );
            distance_evals += n as u64 * k as u64;
            for i in 0..n {
                labels[i] = best_idx[i] as usize;
                upper[i] = best_sq[i].sqrt();
                lower[i] = second_sq[i].sqrt();
            }
        }

        let mut trace = Vec::new();
        let mut iterations = 0usize;
        let mut s = vec![0.0f32; k];
        for it in 0..cfg.max_iters {
            iterations = it + 1;
            // s(c) = ½ distance to the closest other centre.
            for (a, s_slot) in s.iter_mut().enumerate() {
                let mut min_other = f32::INFINITY;
                for b in 0..k {
                    if a == b {
                        continue;
                    }
                    let d = l2_sq(centroids.row(a), centroids.row(b)).sqrt();
                    distance_evals += 1;
                    if d < min_other {
                        min_other = d;
                    }
                }
                *s_slot = 0.5 * min_other;
            }

            let mut changes = 0usize;
            for i in 0..n {
                let a = labels[i];
                let bound = lower[i].max(s[a]);
                if upper[i] <= bound {
                    continue;
                }
                // Tighten the upper bound with a real distance.
                let x = data.row(i);
                upper[i] = l2_sq(x, centroids.row(a)).sqrt();
                distance_evals += 1;
                if upper[i] <= bound {
                    continue;
                }
                // Full scan: recompute owner, second-closest and both bounds.
                let mut best = a;
                let mut best_d = upper[i];
                let mut second = f32::INFINITY;
                for c in 0..k {
                    if c == a {
                        continue;
                    }
                    let d = l2_sq(x, centroids.row(c)).sqrt();
                    distance_evals += 1;
                    if d < best_d {
                        second = best_d;
                        best_d = d;
                        best = c;
                    } else if d < second {
                        second = d;
                    }
                }
                if best != a {
                    labels[i] = best;
                    changes += 1;
                }
                upper[i] = best_d;
                lower[i] = second;
            }

            // Centroid update + bound adjustment by drift.
            let mut new_centroids = centroids.clone();
            recompute_centroids(data, &labels, &mut new_centroids);
            reseed_empty_clusters(data, &mut labels, &mut new_centroids);
            let mut drift = vec![0.0f32; k];
            let mut max_drift = 0.0f32;
            for (c, slot) in drift.iter_mut().enumerate() {
                *slot = l2_sq(centroids.row(c), new_centroids.row(c)).sqrt();
                distance_evals += 1;
                if *slot > max_drift {
                    max_drift = *slot;
                }
            }
            centroids = new_centroids;
            // Bounds maintenance on the worker pool: both per-sample bounds
            // shift independently, so fixed row blocks are bit-identical at
            // any thread count.
            let labels_ref = &labels;
            let drift_ref = &drift;
            run_mut_blocks(
                threads,
                &mut upper,
                BOUND_ROW_BLOCK,
                &mut lower,
                BOUND_ROW_BLOCK,
                |blk, upper_rows, lower_rows| {
                    let base = blk * BOUND_ROW_BLOCK;
                    for (r, (u, l)) in upper_rows.iter_mut().zip(lower_rows).enumerate() {
                        *u += drift_ref[labels_ref[base + r]];
                        *l = (*l - max_drift).max(0.0);
                    }
                },
            );

            if cfg.record_trace {
                trace.push(IterationStat {
                    iteration: it,
                    distortion: average_distortion(data, &labels, &centroids),
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
            }
            if changes == 0 && it > 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elkan::ElkanKMeans;
    use crate::lloyd::LloydKMeans;

    fn blobs(per: usize, k: usize) -> VectorSet {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let base = c as f32 * 15.0;
                rows.push(vec![
                    base + (i % 5) as f32 * 0.4,
                    base - (i % 3) as f32 * 0.3,
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn matches_lloyd_distortion() {
        let data = blobs(40, 5);
        let cfg = KMeansConfig::with_k(5).max_iters(25).seed(4);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let hamerly = HamerlyKMeans::new(cfg).fit(&data);
        let dl = lloyd.distortion(&data);
        let dh = hamerly.distortion(&data);
        assert!(
            (dl - dh).abs() <= 0.05 * dl.max(1e-9),
            "lloyd {dl} vs hamerly {dh}"
        );
    }

    #[test]
    fn fewer_distance_evals_than_lloyd() {
        let data = blobs(80, 6);
        let cfg = KMeansConfig::with_k(6)
            .max_iters(20)
            .seed(2)
            .record_trace(false);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let hamerly = HamerlyKMeans::new(cfg).fit(&data);
        assert!(
            hamerly.distance_evals < lloyd.distance_evals,
            "hamerly {} vs lloyd {}",
            hamerly.distance_evals,
            lloyd.distance_evals
        );
    }

    #[test]
    fn uses_less_memory_than_elkan_conceptually_same_result() {
        // No direct memory probe here; assert the two exact accelerations agree
        // with each other, which is the correctness contract.
        let data = blobs(30, 4);
        let cfg = KMeansConfig::with_k(4).max_iters(20).seed(6);
        let elkan = ElkanKMeans::new(cfg).fit(&data);
        let hamerly = HamerlyKMeans::new(cfg).fit(&data);
        assert!((elkan.distortion(&data) - hamerly.distortion(&data)).abs() < 0.2);
    }

    #[test]
    fn produces_valid_labels() {
        let data = blobs(25, 3);
        let result = HamerlyKMeans::new(KMeansConfig::with_k(3).max_iters(15).seed(7)).fit(&data);
        assert_eq!(result.labels.len(), data.len());
        assert!(result.labels.iter().all(|&l| l < 3));
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), data.len());
    }

    #[test]
    #[should_panic(expected = "invalid hamerly k-means configuration")]
    fn invalid_config_panics() {
        let data = blobs(3, 1);
        let _ = HamerlyKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
