//! AKM — approximate k-means (Philbin et al., CVPR 2007; ref. \[22\]).
//!
//! The classic large-vocabulary variant used for visual-word construction:
//! the assignment step is accelerated by indexing the *current centroids* in a
//! randomized KD-tree forest and answering each sample's closest-centroid
//! query approximately with a bounded number of checks.  Every iteration
//! rebuilds the forest (the centroids moved) and then performs an approximate
//! assignment followed by the usual mean update.
//!
//! The paper cites AKM in its related work (Sec. 2.1, Sec. 5: "AKM \[22\] and
//! HKM \[45\] are not considered [in the plots] as inferior performance to
//! closure k-means is reported in \[27\]"), so it is provided here as an
//! optional, fully working comparator rather than one of the headline
//! baselines: the extended-comparison bench exercises it and reports where it
//! falls between Lloyd and closure k-means.

use std::time::Instant;

use vecstore::VectorSet;

use crate::common::{
    average_distortion, recompute_centroids, reseed_empty_clusters, Clustering, IterationStat,
    KMeansConfig,
};
use crate::kdtree::{KdForestParams, KdTreeForest};
use crate::seeding::{seed_centroids, Seeding};

/// Approximate k-means driven by a KD-tree forest over the centroids.
#[derive(Clone, Debug)]
pub struct ApproximateKMeans {
    /// Shared convergence configuration.
    pub config: KMeansConfig,
    /// Seeding strategy for the initial centroids.
    pub seeding: Seeding,
    /// Forest parameters (trees, leaf size).
    pub forest: KdForestParams,
    /// Maximum number of centroids checked per sample and iteration; the
    /// knob that trades assignment accuracy for speed (Philbin et al. use a
    /// few hundred checks at k = 1M).
    pub max_checks: usize,
}

impl ApproximateKMeans {
    /// Creates an AKM with default forest parameters and `max_checks = 32`.
    pub fn new(config: KMeansConfig) -> Self {
        Self {
            config,
            seeding: Seeding::Random,
            forest: KdForestParams::default(),
            max_checks: 32,
        }
    }

    /// Selects the seeding strategy.
    #[must_use]
    pub fn with_seeding(mut self, seeding: Seeding) -> Self {
        self.seeding = seeding;
        self
    }

    /// Sets the per-query check budget.
    #[must_use]
    pub fn max_checks(mut self, max_checks: usize) -> Self {
        self.max_checks = max_checks.max(1);
        self
    }

    /// Sets the forest parameters.
    #[must_use]
    pub fn forest(mut self, forest: KdForestParams) -> Self {
        self.forest = forest;
        self
    }

    /// Runs the clustering.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid for `data`.
    pub fn fit(&self, data: &VectorSet) -> Clustering {
        if let Err(msg) = self.config.validate(data.len()) {
            panic!("invalid AKM configuration: {msg}");
        }
        let cfg = &self.config;
        let n = data.len();
        let k = cfg.k;

        let start = Instant::now();
        let mut centroids = seed_centroids(data, k, self.seeding, cfg.seed);
        let init_time = start.elapsed();

        let mut labels = vec![0usize; n];
        let mut distance_evals = 0u64;
        let mut trace = Vec::new();
        let iter_start = Instant::now();
        let mut iterations = 0usize;
        let mut prev_distortion = f64::INFINITY;

        for epoch in 0..cfg.max_iters {
            iterations = epoch + 1;
            // Index the current centroids; the forest is tiny (k points) so
            // the rebuild cost is negligible next to the n queries.
            let forest = KdTreeForest::build(
                &centroids,
                &self.forest.seed(cfg.seed ^ (epoch as u64) << 8),
            );
            let mut changes = 0usize;
            for (i, label) in labels.iter_mut().enumerate() {
                let (hits, stats) = forest.knn(&centroids, data.row(i), 1, self.max_checks);
                distance_evals += stats.distance_evals;
                let best = hits[0].id;
                if best != *label {
                    *label = best;
                    changes += 1;
                }
            }
            recompute_centroids(data, &labels, &mut centroids);
            reseed_empty_clusters(data, &mut labels, &mut centroids);

            if cfg.record_trace {
                let distortion = average_distortion(data, &labels, &centroids);
                trace.push(IterationStat {
                    iteration: epoch,
                    distortion,
                    elapsed_secs: (init_time + iter_start.elapsed()).as_secs_f64(),
                });
                if cfg.tol > 0.0
                    && prev_distortion.is_finite()
                    && prev_distortion - distortion <= cfg.tol * prev_distortion
                {
                    break;
                }
                prev_distortion = distortion;
            }
            if changes == 0 {
                break;
            }
        }

        Clustering {
            labels,
            centroids,
            iterations,
            trace,
            init_time,
            iter_time: iter_start.elapsed(),
            distance_evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lloyd::LloydKMeans;
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    fn blobs(per: usize, k: usize, spread: f32, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::new();
        for c in 0..k {
            for _ in 0..per {
                let base = c as f32 * 15.0;
                rows.push(vec![
                    base + rng.gen_range(-spread..spread),
                    base - rng.gen_range(-spread..spread),
                    rng.gen_range(-spread..spread),
                ]);
            }
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn recovers_separable_blobs() {
        let data = blobs(40, 5, 0.5, 1);
        // k-means++ seeding so the test measures the approximate assignment,
        // not the luck of uniform seeding on well-separated blobs.
        let result = ApproximateKMeans::new(KMeansConfig::with_k(5).max_iters(20).seed(2))
            .with_seeding(Seeding::KMeansPlusPlus)
            .max_checks(16)
            .fit(&data);
        assert_eq!(result.labels.len(), data.len());
        assert_eq!(result.non_empty_clusters(), 5);
        assert!(
            result.distortion(&data) < 3.0,
            "distortion {}",
            result.distortion(&data)
        );
    }

    #[test]
    fn larger_check_budget_matches_lloyd_quality() {
        let data = blobs(30, 8, 2.0, 3);
        let cfg = KMeansConfig::with_k(8).max_iters(25).seed(4);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let akm = ApproximateKMeans::new(cfg)
            .max_checks(data.len())
            .fit(&data);
        // With an unbounded check budget the assignment is exact, so AKM is
        // plain Lloyd up to tie-breaking.
        assert!(akm.distortion(&data) <= lloyd.distortion(&data) * 1.10 + 1e-6);
    }

    #[test]
    fn bounded_checks_cost_fewer_distance_evals_at_large_k() {
        let data = blobs(10, 40, 1.0, 5); // 400 samples, k = 40
        let cfg = KMeansConfig::with_k(40)
            .max_iters(8)
            .seed(6)
            .record_trace(false);
        let lloyd = LloydKMeans::new(cfg).fit(&data);
        let akm = ApproximateKMeans::new(cfg).max_checks(8).fit(&data);
        assert!(
            akm.distance_evals < lloyd.distance_evals / 2,
            "akm {} vs lloyd {}",
            akm.distance_evals,
            lloyd.distance_evals
        );
    }

    #[test]
    fn trace_and_iteration_bookkeeping() {
        let data = blobs(20, 4, 0.8, 7);
        let result =
            ApproximateKMeans::new(KMeansConfig::with_k(4).max_iters(10).seed(8)).fit(&data);
        assert!(result.iterations >= 1 && result.iterations <= 10);
        assert!(!result.trace.is_empty());
        for w in result.trace.windows(2) {
            assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs(15, 4, 1.0, 9);
        let a = ApproximateKMeans::new(KMeansConfig::with_k(4).max_iters(6).seed(10)).fit(&data);
        let b = ApproximateKMeans::new(KMeansConfig::with_k(4).max_iters(6).seed(10)).fit(&data);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic(expected = "invalid AKM configuration")]
    fn invalid_config_panics() {
        let data = blobs(3, 1, 0.2, 11);
        let _ = ApproximateKMeans::new(KMeansConfig::with_k(0)).fit(&data);
    }
}
