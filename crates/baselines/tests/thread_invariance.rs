//! Thread-count invariance of the accelerated baselines.
//!
//! Elkan and Hamerly run their bound-maintenance sweeps (and, for Elkan, the
//! initial bound seeding) on the persistent worker pool when
//! `KMeansConfig::threads` asks for it.  Because bounds feed every skip
//! decision, the guarantee must be pinned end to end: labels, centroids, the
//! distortion trace *and* `distance_evals` (each skipped distance is a skip
//! at every thread count) bit-identical for threads ∈ {1, 2, 4, 7}.  The
//! corpus mixes an integer lattice (exactly representable distances, real
//! ties) with enough rows to span several [`BOUND_ROW_BLOCK`]-sized blocks,
//! so the blocked sweeps genuinely split.

use baselines::common::{Clustering, KMeansConfig, BOUND_ROW_BLOCK};
use baselines::elkan::ElkanKMeans;
use baselines::hamerly::HamerlyKMeans;
use vecstore::VectorSet;

/// Integer-lattice corpus wide enough to split into multiple bound blocks.
fn lattice(n: usize, d: usize) -> VectorSet {
    assert!(n > BOUND_ROW_BLOCK, "corpus must span several blocks");
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 7 + j * 5 + i / 13) % 11) as f32)
                .collect()
        })
        .collect();
    VectorSet::from_rows(rows).unwrap()
}

/// Asserts two clusterings are bit-identical in every output the determinism
/// guarantee covers.
fn assert_bit_identical(a: &Clustering, b: &Clustering, what: &str) {
    assert_eq!(a.labels, b.labels, "{what}: labels");
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.distance_evals, b.distance_evals, "{what}: distance_evals");
    let fa: Vec<u32> = a.centroids.as_flat().iter().map(|v| v.to_bits()).collect();
    let fb: Vec<u32> = b.centroids.as_flat().iter().map(|v| v.to_bits()).collect();
    assert_eq!(fa, fb, "{what}: centroid bits");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (ta, tb) in a.trace.iter().zip(&b.trace) {
        assert_eq!(
            ta.distortion.to_bits(),
            tb.distortion.to_bits(),
            "{what}: trace distortion bits at iteration {}",
            ta.iteration
        );
    }
}

#[test]
fn elkan_is_bit_identical_at_any_thread_count() {
    let data = lattice(2600, 8);
    let base = KMeansConfig::with_k(13).max_iters(10).seed(42);
    let reference = ElkanKMeans::new(base.threads(1)).fit(&data);
    assert!(reference.distance_evals > 0);
    for threads in [2usize, 4, 7] {
        let threaded = ElkanKMeans::new(base.threads(threads)).fit(&data);
        assert_bit_identical(&reference, &threaded, &format!("elkan threads={threads}"));
    }
}

#[test]
fn hamerly_is_bit_identical_at_any_thread_count() {
    let data = lattice(2600, 8);
    let base = KMeansConfig::with_k(13).max_iters(10).seed(9);
    let reference = HamerlyKMeans::new(base.threads(1)).fit(&data);
    assert!(reference.distance_evals > 0);
    for threads in [2usize, 4, 7] {
        let threaded = HamerlyKMeans::new(base.threads(threads)).fit(&data);
        assert_bit_identical(&reference, &threaded, &format!("hamerly threads={threads}"));
    }
}

#[test]
fn threaded_elkan_still_matches_threaded_hamerly_quality() {
    // Beyond bit-equality: with threading on, the two exact accelerations
    // must still agree with each other (they are exact reformulations of the
    // same Lloyd iteration).
    let data = lattice(1100, 6);
    let cfg = KMeansConfig::with_k(7).max_iters(12).seed(3).threads(4);
    let elkan = ElkanKMeans::new(cfg).fit(&data);
    let hamerly = HamerlyKMeans::new(cfg).fit(&data);
    let de = elkan.distortion(&data);
    let dh = hamerly.distortion(&data);
    assert!(
        (de - dh).abs() <= 0.1 * de.max(1e-9),
        "elkan {de} vs hamerly {dh}"
    );
}
