//! Chaos suite for the serving stack: hostile clients, overload floods,
//! deadline storms, injected worker panics, and graceful drains.
//!
//! The invariants under test (the PR's acceptance bar):
//!
//! * the server **never panics** — every scenario ends with the server still
//!   answering a well-formed request (or drained deliberately);
//! * every *accepted* request receives **exactly one typed response** (`OK`,
//!   `DEADLINE_EXCEEDED`, `OVERLOADED`, or `INTERNAL`) — nothing is silently
//!   dropped;
//! * connections are **never leaked** — open-connection gauges return to
//!   zero after the clients leave;
//! * a graceful shutdown **drains** all in-flight work.
//!
//! Loads are kept deliberately small (hundreds of requests, tiny indexes):
//! the CI container is single-digit cores and the point is the failure
//! semantics, not throughput.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ivf::{IvfIndex, IvfSearchParams};
use knn_graph::Neighbor;
use rand::Rng;
use serve::batcher::BatcherConfig;
use serve::client::{Client, ClientError};
use serve::protocol::{frame_crc, FrameKind, SearchRequest, Status, HEADER_LEN, MAGIC, VERSION};
use serve::server::{Server, ServerConfig, StopReason};
use serve::{IvfBackend, SearchBackend};
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

const DIM: usize = 8;

/// Small integer-lattice corpus (exact f32 distances) and a fitted index.
fn fixture_index(n: usize, k: usize, seed: u64) -> (VectorSet, IvfIndex) {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push((0..DIM).map(|_| rng.gen_range(0..9) as f32).collect());
    }
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = data.gather(&(0..k).collect::<Vec<_>>()).unwrap();
    let labels: Vec<usize> = data
        .rows()
        .map(|row| {
            centroids
                .rows()
                .enumerate()
                .map(|(c, cent)| {
                    let d: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d, c)
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap()
                .1
        })
        .collect();
    let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
    (data, index)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        batcher: BatcherConfig {
            max_delay: Duration::from_millis(1),
            ..BatcherConfig::default()
        },
        idle_timeout: Duration::from_secs(10),
        frame_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn start_ivf_server(config: ServerConfig) -> (Server, IvfIndex) {
    let (_, index) = fixture_index(256, 8, 42);
    let backend = IvfBackend::new(index.clone(), Some(2));
    let served_index = backend.index().clone();
    let server = Server::start(Arc::new(backend), config).unwrap();
    (server, served_index)
}

fn request(id: u64, queries: &VectorSet, lo: usize, n: usize) -> SearchRequest {
    let flat: Vec<f32> = (lo..lo + n).flat_map(|i| queries.row(i).to_vec()).collect();
    SearchRequest {
        id,
        deadline_ms: 0,
        r: 5,
        nprobe: 4,
        dim: DIM as u32,
        queries: flat,
    }
}

/// Served results must be bit-identical to a direct index search.
#[test]
fn served_results_match_direct_search_bit_for_bit() {
    let (server, index) = start_ivf_server(quick_config());
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    let req = request(11, &queries, 0, 32);
    let got = client.search(&req).unwrap();
    let params = IvfSearchParams::default().nprobe(4).threads(1);
    let want = index.batch_search(&queries, 5, params);
    assert_eq!(got, want, "served neighbours must equal the direct search");

    let mut server = server;
    server.shutdown();
}

/// A quantized backend serves the SQ8 overfetch + re-rank path end to end;
/// the served neighbours are bit-identical to the direct quantized search.
#[test]
fn quantized_serving_matches_direct_sq8_search() {
    let (_, mut index) = fixture_index(256, 8, 42);
    index.quantize();
    let backend = IvfBackend::new(index.clone(), Some(2)).quantized(true);
    let server = Server::start(Arc::new(backend), quick_config()).unwrap();
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    let req = request(21, &queries, 0, 32);
    let got = client.search(&req).unwrap();
    let params = IvfSearchParams::default().nprobe(4).threads(1).sq8(true);
    let want = index.batch_search(&queries, 5, params);
    assert_eq!(
        got, want,
        "served quantized neighbours must equal the direct sq8 search"
    );

    let mut server = server;
    server.shutdown();
}

/// Quantized mode over an index with no SQ8 tier fails the batch with a
/// typed error — the backend stays serviceable, nothing unwinds.
#[test]
fn quantized_mode_on_unquantized_index_is_a_typed_error() {
    let (_, index) = fixture_index(64, 4, 9);
    let backend = IvfBackend::new(index, Some(1)).quantized(true);
    let queries = fixture_index(4, 2, 5).0;
    assert!(matches!(
        backend.search_batch(&queries, 3, 2).unwrap_err(),
        vecstore::Error::InvalidParameter(_)
    ));
}

/// Mid-frame disconnects must not wedge or crash the server, and must not
/// affect other connections.
#[test]
fn mid_frame_disconnects_are_contained() {
    let (server, _) = start_ivf_server(quick_config());
    let addr = server.local_addr();
    let queries = fixture_index(16, 4, 9).0;

    // A full valid frame, cut at every prefix length, sent by a client that
    // then vanishes.
    let mut full = Vec::new();
    serve::protocol::write_search(&mut full, &request(1, &queries, 0, 4)).unwrap();
    for cut in [
        1usize,
        4,
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + 5,
        full.len() - 1,
    ] {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&full[..cut]).unwrap();
        drop(s); // disconnect mid-frame
    }

    // The server still serves a well-behaved client afterwards.
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let results = client.search(&request(2, &queries, 0, 2)).unwrap();
    assert_eq!(results.len(), 2);

    let mut server = server;
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_open, 0, "no leaked connections");
}

/// Corrupt frames (every class: flipped bits, bad magic, hostile length)
/// are answered with a typed error or a close — never a panic, never a
/// garbage search result.
#[test]
fn corrupt_frames_get_typed_rejections() {
    let (server, _) = start_ivf_server(quick_config());
    let addr = server.local_addr();
    let queries = fixture_index(16, 4, 13).0;

    let mut clean = Vec::new();
    serve::protocol::write_search(&mut clean, &request(3, &queries, 0, 2)).unwrap();

    // Bit flips across the frame (header, length field, payload).
    let mut rng = rng_from_seed(1234);
    for _ in 0..24 {
        let byte = rng.gen_range(0..clean.len());
        let bit = rng.gen_range(0..8u32);
        let mut evil = clean.clone();
        evil[byte] ^= 1 << bit;
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(&evil).unwrap();
        // The server either answers BAD_REQUEST or closes on the malformed
        // frame; both are acceptable, panicking or hanging is not.
        let mut buf = [0u8; 1024];
        let _ = s.read(&mut buf);
    }

    // A frame declaring a 4 GiB payload must be rejected without allocation.
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = FrameKind::Search as u8;
    header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut h12 = [0u8; 12];
    h12.copy_from_slice(&header[..12]);
    header[12..16].copy_from_slice(&frame_crc(&h12, &[]).to_le_bytes());
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(&header).unwrap();
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf); // server answers BAD_REQUEST and closes

    // Still alive and correct afterwards.
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    assert!(client.ping().is_ok());
    assert_eq!(client.search(&request(4, &queries, 0, 1)).unwrap().len(), 1);

    let mut server = server;
    server.shutdown();
    assert!(server.stats().protocol_errors > 0);
    assert_eq!(server.stats().connections_open, 0);
}

/// A slow-loris client dribbling a frame one byte at a time is cut off by
/// the frame timeout instead of occupying a connection forever.
#[test]
fn slow_loris_is_disconnected_by_the_frame_timeout() {
    let mut config = quick_config();
    config.frame_timeout = Duration::from_millis(200);
    let (server, _) = start_ivf_server(config);
    let addr = server.local_addr();
    let queries = fixture_index(8, 2, 5).0;

    let mut full = Vec::new();
    serve::protocol::write_search(&mut full, &request(5, &queries, 0, 1)).unwrap();
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Dribble a few bytes, then stall past the budget.
    s.write_all(&full[..6]).unwrap();
    let start = Instant::now();
    let mut buf = Vec::new();
    let n = s.read_to_end(&mut buf); // returns once the server gives up on us
    assert!(n.is_ok(), "server must close, not reset mid-read: {n:?}");
    assert!(
        start.elapsed() < Duration::from_secs(8),
        "slow-loris connection was not cut off in time"
    );

    let mut server = server;
    server.shutdown();
    assert_eq!(server.stats().connections_open, 0);
}

/// Deadline storm: a burst of requests with tiny deadlines against a slow
/// backend.  Every request must be answered (OK or DEADLINE_EXCEEDED);
/// expired requests must not burn backend work after the fact.
#[test]
fn deadline_storm_answers_every_request() {
    /// Backend that takes ~5ms per batch, so tiny deadlines expire while
    /// batches queue behind each other.
    struct SlowBackend(Arc<dyn SearchBackend>);
    impl SearchBackend for SlowBackend {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            thread::sleep(Duration::from_millis(5));
            self.0.search_batch(queries, r, nprobe)
        }
    }
    let (_, index) = fixture_index(128, 4, 21);
    let backend = SlowBackend(Arc::new(IvfBackend::new(index, Some(1))));
    let server = Server::start(
        Arc::new(backend),
        ServerConfig {
            batcher: BatcherConfig {
                // Batch capacity (2 queries / 5 ms) far below the offered
                // load of 8 synchronous clients, so requests genuinely queue
                // behind a busy backend and their 1–3 ms budgets expire.
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = fixture_index(64, 4, 23).0;

    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let queries = queries.clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                let mut deadline = 0u64;
                let mut other = 0u64;
                let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
                for i in 0..25u64 {
                    let mut req = request(t * 1000 + i, &queries, (i as usize) % 32, 1);
                    req.deadline_ms = 1 + (i % 3) as u32; // 1–3 ms budgets
                    match client.search(&req) {
                        Ok(results) => {
                            assert_eq!(results.len(), 1);
                            ok += 1;
                        }
                        Err(ClientError::Rejected {
                            status: Status::DeadlineExceeded,
                            ..
                        }) => deadline += 1,
                        Err(ClientError::Rejected { .. }) => other += 1,
                        Err(e) => panic!("unexpected transport/protocol error: {e}"),
                    }
                }
                (ok, deadline, other)
            })
        })
        .collect();
    let mut total_ok = 0;
    let mut total_deadline = 0;
    let mut total_other = 0;
    for h in handles {
        let (ok, deadline, other) = h.join().unwrap();
        total_ok += ok;
        total_deadline += deadline;
        total_other += other;
    }
    assert_eq!(
        total_ok + total_deadline + total_other,
        200,
        "every request must be answered exactly once"
    );
    assert!(
        total_deadline > 0,
        "1–3 ms budgets against a 5 ms/batch backend must expire some requests \
         (ok={total_ok}, deadline={total_deadline})"
    );

    let mut server = server;
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_open, 0);
    assert_eq!(
        stats.batcher.served
            + stats.batcher.deadline_expired
            + stats.batcher.shed
            + stats.batcher.internal_errors,
        stats.batcher.accepted,
        "batcher accounting must balance: {stats:?}"
    );
}

/// Overload flood: far more concurrent work than the queue admits.  The
/// server must shed typed OVERLOADED responses, keep serving, and recover
/// full service once the flood passes.
#[test]
fn overload_flood_sheds_and_recovers() {
    /// ~2ms per batch so a flood outruns the backend.
    struct SlowBackend(Arc<dyn SearchBackend>);
    impl SearchBackend for SlowBackend {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            thread::sleep(Duration::from_millis(2));
            self.0.search_batch(queries, r, nprobe)
        }
    }
    let (_, index) = fixture_index(128, 4, 31);
    let backend = SlowBackend(Arc::new(IvfBackend::new(index, Some(1))));
    let server = Server::start(
        Arc::new(backend),
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 4,
                max_delay: Duration::from_micros(200),
                queue_cap: 8,
                resume_depth: 2,
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = fixture_index(64, 4, 33).0;

    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let queries = queries.clone();
            thread::spawn(move || {
                let mut ok = 0u64;
                let mut shed = 0u64;
                let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
                for i in 0..20u64 {
                    let req = request(t * 1000 + i, &queries, (i as usize) % 32, 2);
                    match client.search(&req) {
                        Ok(results) => {
                            assert_eq!(results.len(), 2);
                            ok += 1;
                        }
                        Err(ClientError::Rejected {
                            status: Status::Overloaded,
                            ..
                        }) => shed += 1,
                        Err(e) => panic!("flood must only produce OK/OVERLOADED, got {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let mut total_ok = 0u64;
    let mut total_shed = 0u64;
    for h in handles {
        let (ok, shed) = h.join().unwrap();
        total_ok += ok;
        total_shed += shed;
    }
    assert_eq!(total_ok + total_shed, 160, "answered-or-shed, exactly once");
    assert!(
        total_shed > 0,
        "an 8-deep queue under 8×20 requests must shed"
    );
    assert!(total_ok > 0, "shedding must not starve all service");

    // Flood over: hysteresis must recover and serve cleanly again.
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    let mut recovered = false;
    for attempt in 0..50 {
        match client.search(&request(99_999, &queries, 0, 1)) {
            Ok(_) => {
                recovered = true;
                break;
            }
            Err(ClientError::Rejected {
                status: Status::Overloaded,
                ..
            }) => thread::sleep(Duration::from_millis(10 * (attempt + 1))),
            Err(e) => panic!("unexpected post-flood error: {e}"),
        }
    }
    assert!(recovered, "server did not recover service after the flood");

    let mut server = server;
    server.shutdown();
    assert_eq!(server.stats().connections_open, 0);
}

/// An injected worker panic fails only the affected batch with INTERNAL;
/// the pool respawns and the server keeps serving every later request.
#[test]
fn injected_worker_panic_fails_one_batch_and_serving_continues() {
    /// Panics (on the pool's worker threads, via the checked batch API)
    /// whenever the poison flag is set.
    struct PoisonableBackend {
        inner: IvfBackend,
        poison: AtomicBool,
    }
    impl SearchBackend for PoisonableBackend {
        fn dim(&self) -> usize {
            self.inner.dim()
        }
        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            if self.poison.swap(false, Ordering::SeqCst) {
                // Route the panic through the worker pool exactly like a
                // kernel bug would surface: inside a pool round, contained
                // by run_blocks_checked.
                vecstore::parallel::run_blocks_checked(2, 4, |b| {
                    if b == 2 {
                        panic!("injected kernel panic in block {b}");
                    }
                    b
                })?;
            }
            self.inner.search_batch(queries, r, nprobe)
        }
    }
    let (_, index) = fixture_index(128, 4, 51);
    let backend = Arc::new(PoisonableBackend {
        inner: IvfBackend::new(index, Some(2)),
        poison: AtomicBool::new(false),
    });
    let server = Server::start(
        Arc::clone(&backend) as Arc<dyn SearchBackend>,
        quick_config(),
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = fixture_index(32, 4, 53).0;

    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    // Healthy request first.
    assert_eq!(client.search(&request(1, &queries, 0, 2)).unwrap().len(), 2);

    // Poisoned round: the batch fails with INTERNAL, nothing crashes.
    backend.poison.store(true, Ordering::SeqCst);
    match client.search(&request(2, &queries, 0, 2)) {
        Err(ClientError::Rejected {
            status: Status::Internal,
            message,
        }) => assert!(
            message.contains("injected kernel panic"),
            "INTERNAL response must carry the contained panic context: {message}"
        ),
        other => panic!("poisoned batch must answer INTERNAL, got {other:?}"),
    }

    // The very next request on the same connection is served again.
    for i in 3..10u64 {
        let results = client.search(&request(i, &queries, 0, 1)).unwrap();
        assert_eq!(results.len(), 1, "request {i} after the panic");
    }

    let mut server = server;
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.batcher.internal_errors, 1);
    assert_eq!(stats.connections_open, 0);
}

/// Graceful shutdown via the control frame: in-flight work drains, the ack
/// arrives after earlier responses, and the exit is classified.
#[test]
fn ctl_frame_shutdown_drains_in_flight_work() {
    /// Slow enough that requests are still in flight when shutdown lands.
    struct SlowBackend(Arc<dyn SearchBackend>);
    impl SearchBackend for SlowBackend {
        fn dim(&self) -> usize {
            self.0.dim()
        }
        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            thread::sleep(Duration::from_millis(10));
            self.0.search_batch(queries, r, nprobe)
        }
    }
    let (_, index) = fixture_index(128, 4, 61);
    let backend = SlowBackend(Arc::new(IvfBackend::new(index, Some(1))));
    let mut server = Server::start(
        Arc::new(backend),
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let queries = fixture_index(16, 4, 63).0;

    // Fire requests from worker threads, then shut down mid-stream.
    let in_flight: Vec<_> = (0..3u64)
        .map(|t| {
            let queries = queries.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
                client.search(&request(t, &queries, 0, 1))
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(5)); // let them reach the queue

    let mut ctl = Client::connect(addr, Duration::from_secs(5)).unwrap();
    ctl.shutdown_server().unwrap();
    let reason = server.join();
    assert_eq!(reason, StopReason::CtlFrame);

    // Every in-flight request got a real answer (drained, not dropped) or a
    // typed SHUTTING_DOWN if it raced the drain point.
    for h in in_flight {
        match h.join().unwrap() {
            Ok(results) => assert_eq!(results.len(), 1),
            Err(ClientError::Rejected {
                status: Status::ShuttingDown,
                ..
            }) => {}
            Err(e) => panic!("drain must answer or classify, got {e}"),
        }
    }
    assert_eq!(server.stats().connections_open, 0, "drain must close all");
}

/// Signal-path shutdown (`request_shutdown`, what the CLI's SIGINT handler
/// calls) also drains.
#[test]
fn requested_shutdown_drains() {
    let (server, _) = start_ivf_server(quick_config());
    let addr = server.local_addr();
    let queries = fixture_index(8, 2, 71).0;
    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    assert_eq!(client.search(&request(1, &queries, 0, 1)).unwrap().len(), 1);

    server.request_shutdown();
    let mut server = server;
    assert_eq!(server.join(), StopReason::Requested);
    assert_eq!(server.stats().connections_open, 0);
}

/// Pipelined requests on one connection all get answered with matching ids.
#[test]
fn pipelined_requests_are_all_answered() {
    let (server, _) = start_ivf_server(quick_config());
    let addr = server.local_addr();
    let queries = fixture_index(32, 4, 81).0;

    // Write N frames back-to-back before reading anything.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let n = 16u64;
    let mut blob = Vec::new();
    for i in 0..n {
        serve::protocol::write_search(&mut blob, &request(i, &queries, i as usize, 1)).unwrap();
    }
    s.write_all(&blob).unwrap();

    let mut seen = std::collections::BTreeSet::new();
    let mut buf = Vec::new();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    while seen.len() < n as usize {
        let mut chunk = [0u8; 4096];
        let got = s.read(&mut chunk).unwrap();
        assert!(got > 0, "server closed before answering everything");
        buf.extend_from_slice(&chunk[..got]);
        let mut carry: &[u8] = &buf[..];
        loop {
            let mut cursor = carry;
            match serve::protocol::read_frame(&mut cursor, 1 << 20) {
                Ok(Some(frame)) => {
                    carry = cursor;
                    assert_eq!(frame.kind, FrameKind::Response);
                    let resp = serve::protocol::SearchResponse::decode(&frame.payload).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                    assert!(seen.insert(resp.id), "duplicate response id {}", resp.id);
                }
                Ok(None) | Err(serve::protocol::WireError::Truncated) => break,
                Err(e) => panic!("bad response stream: {e}"),
            }
        }
        buf = carry.to_vec();
    }
    assert_eq!(seen.len(), n as usize);
    assert_eq!(
        seen.iter().copied().collect::<Vec<_>>(),
        (0..n).collect::<Vec<_>>()
    );

    let mut server = server;
    server.shutdown();
}

/// The connection cap refuses the overflow connection with a typed
/// response instead of hanging it.
#[test]
fn connection_cap_refuses_with_typed_response() {
    let mut config = quick_config();
    config.max_connections = 2;
    let (server, _) = start_ivf_server(config);
    let addr = server.local_addr();

    let _a = TcpStream::connect(addr).unwrap();
    let _b = TcpStream::connect(addr).unwrap();
    thread::sleep(Duration::from_millis(100)); // let both register

    let mut c = TcpStream::connect(addr).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut cursor_buf = Vec::new();
    c.read_to_end(&mut cursor_buf).unwrap();
    let mut slice: &[u8] = &cursor_buf;
    let frame = serve::protocol::read_frame(&mut slice, 1 << 20)
        .unwrap()
        .expect("refusal must be a frame, not a silent close");
    let resp = serve::protocol::SearchResponse::decode(&frame.payload).unwrap();
    assert_eq!(resp.status, Status::Overloaded);

    let mut server = server;
    server.shutdown();
    assert!(server.stats().connections_refused >= 1);
}
