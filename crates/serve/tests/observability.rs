//! End-to-end observability: traced queries whose stage timings add up,
//! the slow-query ring, the `Stats` frame exposition agreeing with the
//! drain-summary counters, and the metrics HTTP listener staying alive
//! under hostile traffic while queries flow.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ivf::{IvfIndex, IvfSearchParams};
use obs::{trace::next_trace_id, ObsHandle, StageTimings};
use rand::Rng;
use serve::batcher::BatcherConfig;
use serve::client::{Client, ClientError};
use serve::metrics::MetricsServer;
use serve::protocol::{SearchRequest, StatsFormat, Status};
use serve::server::{Server, ServerConfig};
use serve::IvfBackend;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

const DIM: usize = 8;

fn fixture_index(n: usize, k: usize, seed: u64) -> (VectorSet, IvfIndex) {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push((0..DIM).map(|_| rng.gen_range(0..9) as f32).collect());
    }
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = data.gather(&(0..k).collect::<Vec<_>>()).unwrap();
    let labels: Vec<usize> = data
        .rows()
        .map(|row| {
            centroids
                .rows()
                .enumerate()
                .map(|(c, cent)| {
                    let d: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d, c)
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap()
                .1
        })
        .collect();
    let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
    (data, index)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        batcher: BatcherConfig {
            max_delay: Duration::from_millis(1),
            ..BatcherConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn start_obs_server(threads: usize, obs: &ObsHandle) -> (Server, IvfIndex) {
    let (_, index) = fixture_index(256, 8, 42);
    let backend = IvfBackend::new(index.clone(), Some(threads));
    let server = Server::start_obs(Arc::new(backend), quick_config(), obs).unwrap();
    (server, index)
}

fn request(id: u64, queries: &VectorSet, lo: usize, n: usize) -> SearchRequest {
    let flat: Vec<f32> = (lo..lo + n).flat_map(|i| queries.row(i).to_vec()).collect();
    SearchRequest {
        id,
        deadline_ms: 0,
        r: 5,
        nprobe: 4,
        dim: DIM as u32,
        queries: flat,
    }
}

/// The acceptance demo: a traced query comes back with per-stage timings
/// whose pieces are disjoint sub-intervals of the total — queue wait plus
/// route plus scan plus re-rank never exceeds the total, the gap is only
/// dispatch overhead, and the results are bit-identical to an untraced
/// search of the same index.
#[test]
fn traced_query_stage_timings_add_up_and_results_match() {
    let obs = ObsHandle::enabled();
    let (mut server, index) = start_obs_server(2, &obs);
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    let req = request(21, &queries, 0, 16);
    let trace_id = next_trace_id();
    let (results, timings) = client.search_traced(trace_id, &req).unwrap();

    let params = IvfSearchParams::default().nprobe(4).threads(1);
    let want = index.batch_search(
        &queries.gather(&(0..16).collect::<Vec<_>>()).unwrap(),
        5,
        params,
    );
    assert_eq!(results, want, "traced results must match the direct search");

    assert!(
        timings.total_nanos > 0,
        "total must be measured: {timings:?}"
    );
    assert!(
        timings.queue_wait_nanos > 0,
        "queue wait must be measured: {timings:?}"
    );
    assert!(timings.scan_nanos > 0, "scan must be measured: {timings:?}");
    assert!(
        timings.stage_sum() <= timings.total_nanos,
        "stages are sub-intervals of the total: {timings:?}"
    );
    // The unattributed remainder (batch dispatch, channel hops) must be
    // bounded — the stages genuinely account for the residence time.
    let overhead = timings.total_nanos - timings.stage_sum();
    assert!(
        overhead < Duration::from_millis(250).as_nanos() as u64,
        "unattributed overhead {overhead}ns is implausibly large: {timings:?}"
    );
    server.shutdown();
}

/// A deliberately slow query (threshold 0 admits everything) lands in the
/// slow-query ring with its trace id, search knobs and deadline slack.
#[test]
fn slow_query_ring_captures_shape_knobs_and_deadline_slack() {
    let obs = ObsHandle::with_slow_threshold(0);
    let (mut server, _) = start_obs_server(2, &obs);
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    let mut req = request(31, &queries, 0, 8);
    req.deadline_ms = 2_000; // generous: the slack must come back positive
    let trace_id = next_trace_id();
    let (_, _) = client.search_traced(trace_id, &req).unwrap();

    let slow = obs.obs().unwrap().slow_log().recent();
    let entry = slow
        .iter()
        .find(|q| q.trace_id == trace_id)
        .expect("the traced query must be in the ring");
    assert_eq!(entry.queries, 8);
    assert_eq!(entry.dim, DIM as u32);
    assert_eq!(entry.r, 5);
    assert_eq!(entry.nprobe, 4);
    assert!(
        entry.deadline_slack_nanos > 0,
        "a query finished well before its deadline has positive slack: {entry:?}"
    );
    assert!(entry.timings.total_nanos > 0);
    server.shutdown();
}

/// The `Stats` frame and the local drain-summary snapshot report the same
/// numbers — they read the same atomics.
#[test]
fn stats_frame_agrees_with_drain_summary_counters() {
    let obs = ObsHandle::enabled();
    let (mut server, _) = start_obs_server(2, &obs);
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    for i in 0..10 {
        let req = request(100 + i, &queries, (i as usize) % 16, 2);
        client.search(&req).unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.batcher.served, 10);
    let snap = obs.snapshot().unwrap();
    assert_eq!(snap.counter("batcher_served_total"), Some(10));
    assert_eq!(
        snap.counter("batcher_served_total"),
        Some(stats.batcher.served),
        "exposition and drain summary must read the same atomics"
    );

    let prom = client.stats(StatsFormat::Prometheus).unwrap();
    assert!(
        prom.contains("batcher_served_total 10"),
        "prometheus text must carry the served count:\n{prom}"
    );
    assert!(prom.contains("server_frames_total"), "{prom}");

    let json = client.stats(StatsFormat::Json).unwrap();
    assert!(json.contains("\"batcher_served_total\""), "{json}");
    let human = client.stats(StatsFormat::Human).unwrap();
    assert!(human.contains("batcher_served_total"), "{human}");
    server.shutdown();
}

/// A server started without observability answers `Stats` with a typed
/// rejection, not a hang or an empty page.
#[test]
fn stats_frame_is_rejected_without_observability() {
    let (_, index) = fixture_index(256, 8, 42);
    let backend = IvfBackend::new(index, Some(2));
    let mut server = Server::start(Arc::new(backend), quick_config()).unwrap();
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    match client.stats(StatsFormat::Human) {
        Err(ClientError::Rejected { status, .. }) => assert_eq!(status, Status::BadRequest),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    server.shutdown();
}

/// Metrics on, thread counts {1, 2, 4, 7}: every traced serve returns
/// bit-identical neighbours — instrumentation must not perturb results.
#[test]
fn traced_results_are_bit_identical_across_thread_counts() {
    let queries = fixture_index(32, 4, 7).0;
    let mut baseline: Option<(Vec<Vec<knn_graph::Neighbor>>, IvfIndex)> = None;
    for threads in [1usize, 2, 4, 7] {
        let obs = ObsHandle::enabled();
        let (mut server, index) = start_obs_server(threads, &obs);
        let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
        let req = request(41, &queries, 0, 32);
        let (results, _) = client.search_traced(next_trace_id(), &req).unwrap();
        match &baseline {
            None => baseline = Some((results, index)),
            Some((want, _)) => assert_eq!(
                &results, want,
                "results diverged at {threads} threads with metrics on"
            ),
        }
        server.shutdown();
    }
    let (results, index) = baseline.unwrap();
    let params = IvfSearchParams::default().nprobe(4).threads(1);
    let want = index.batch_search(&queries, 5, params);
    assert_eq!(
        results, want,
        "served baseline must equal the direct search"
    );
}

/// Chaos: garbage HTTP and a slow-loris on the exposition port while real
/// queries flow — every query succeeds and the listener still answers a
/// clean scrape afterwards.
#[test]
fn metrics_listener_survives_hostile_http_while_queries_flow() {
    let obs = ObsHandle::enabled();
    let (mut server, _) = start_obs_server(2, &obs);
    let mut metrics = MetricsServer::start("127.0.0.1:0", obs.clone()).unwrap();
    let metrics_addr = metrics.local_addr();
    let queries = fixture_index(32, 4, 7).0;

    let vandal = thread::spawn(move || {
        for i in 0..20 {
            if let Ok(mut s) = TcpStream::connect(metrics_addr) {
                let _ = s.write_all(&[0x00, 0xFF, b'\r', b'\n', i as u8, b'\n', b'\n']);
            }
        }
        // Slow-loris: partial request lines, held open briefly, dropped.
        let mut held = Vec::new();
        for _ in 0..4 {
            if let Ok(mut s) = TcpStream::connect(metrics_addr) {
                let _ = s.write_all(b"GET /metr");
                held.push(s);
            }
        }
        thread::sleep(Duration::from_millis(100));
        drop(held);
    });

    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    for i in 0..50u64 {
        let req = request(1_000 + i, &queries, (i as usize) % 16, 1);
        let results = client.search(&req).unwrap();
        assert_eq!(results.len(), 1);
    }
    vandal.join().unwrap();

    // The listener must still answer a clean scrape with live counters.
    let mut s = TcpStream::connect(metrics_addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    let _ = std::io::Read::read_to_string(&mut s, &mut body);
    assert!(body.starts_with("HTTP/1.1 200 OK\r\n"), "{body}");
    assert!(body.contains("batcher_served_total"), "{body}");

    metrics.shutdown();
    server.shutdown();
}

/// The default-threshold slow log stays empty under fast queries, and the
/// timings handed back for an expired request report its whole queue life.
#[test]
fn fast_queries_stay_out_of_the_default_slow_log() {
    let obs = ObsHandle::enabled(); // 25 ms threshold
    let (mut server, _) = start_obs_server(2, &obs);
    let queries = fixture_index(32, 4, 7).0;
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
    let req = request(51, &queries, 0, 1);
    client.search(&req).unwrap();
    // A 1-query scan of a 256-vector index is microseconds; it must not
    // pollute the ring reserved for genuinely slow queries.
    let slow = obs.obs().unwrap().slow_log().recent();
    assert!(
        slow.iter().all(|q| q.timings.total_nanos >= 25_000_000),
        "only genuinely slow queries may be retained: {slow:?}"
    );
    server.shutdown();
}

/// StageTimings default is all-zero (what untraced rejections carry).
#[test]
fn default_stage_timings_are_zero() {
    let t = StageTimings::default();
    assert_eq!(t.stage_sum(), 0);
    assert_eq!(t.total_nanos, 0);
}
