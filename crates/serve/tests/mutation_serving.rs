//! End-to-end mutation serving: a real [`ivf::MutableStore`] behind
//! [`serve::MutableIvfBackend`], driven over TCP with GKSQ mutation frames.
//!
//! The invariants under test:
//!
//! * an insert ack is **durable**: after the server drains, reopening the
//!   store from disk replays exactly the acknowledged mutations;
//! * searches interleaved with mutations observe the fence — a vector is
//!   findable immediately after its insert ack and gone immediately after
//!   its delete ack;
//! * `COMPACT` hot-swaps the serving generation under concurrent search
//!   load without a single failed or torn response;
//! * an immutable server answers mutation frames `BAD_REQUEST`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ivf::{IvfIndex, MutableStore};
use rand::Rng;
use serve::batcher::BatcherConfig;
use serve::client::{Client, ClientError};
use serve::protocol::{SearchRequest, Status};
use serve::server::{Server, ServerConfig};
use serve::{IvfBackend, MutableIvfBackend};
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

const DIM: usize = 4;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gkm-serve-mut-{tag}-{}-{:?}",
        std::process::id(),
        thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fixture_index(n: usize, k: usize, seed: u64) -> IvfIndex {
    let mut rng = rng_from_seed(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(0..9) as f32).collect())
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = data.gather(&(0..k).collect::<Vec<_>>()).unwrap();
    let labels: Vec<usize> = data
        .rows()
        .map(|row| {
            centroids
                .rows()
                .enumerate()
                .map(|(c, cent)| {
                    let d: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d, c)
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap()
                .1
        })
        .collect();
    IvfIndex::build(&data, &centroids, &labels).unwrap()
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        batcher: BatcherConfig {
            max_delay: Duration::from_millis(1),
            ..BatcherConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn search_one(client: &mut Client, id: u64, query: &[f32], r: u16) -> Vec<u32> {
    let results = client
        .search(&SearchRequest {
            id,
            deadline_ms: 0,
            r,
            nprobe: 8,
            dim: DIM as u32,
            queries: query.to_vec(),
        })
        .unwrap();
    results[0].iter().map(|n| n.id).collect()
}

#[test]
fn acked_mutations_are_findable_and_survive_a_drain() {
    let dir = scratch_dir("durable");
    let index_path = dir.join("live.ivf");
    let store = MutableStore::create(&index_path, fixture_index(64, 4, 11)).unwrap();
    let backend = Arc::new(MutableIvfBackend::new(store, Some(1)));
    let mut server = Server::start_mutable(
        Arc::clone(&backend) as Arc<dyn serve::MutableBackend>,
        quick_config(),
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    // Insert a far-away outlier; its ack carries the assigned id and it is
    // immediately the nearest neighbour of itself.
    let outlier = vec![100.0; DIM];
    let ack = client.insert(1, DIM as u32, outlier.clone()).unwrap();
    assert_eq!(ack.ids, vec![64]);
    assert_eq!(ack.live, 65);
    assert_eq!(search_one(&mut client, 2, &outlier, 1), vec![64]);

    // Delete it; it must vanish from results at once.
    let ack = client.delete(3, vec![64, 9999]).unwrap();
    assert_eq!(ack.ids, vec![64], "only the live id counts as deleted");
    assert_eq!(ack.live, 64);
    assert_ne!(search_one(&mut client, 4, &outlier, 1), vec![64]);

    // A second insert after the delete gets a fresh (monotone) id.
    let ack = client.insert(5, DIM as u32, vec![200.0; DIM]).unwrap();
    assert_eq!(ack.ids, vec![65]);

    server.shutdown();
    // Persist nothing manually: reopening must replay the journal and land
    // on exactly the acknowledged state.
    drop(client);
    drop(server); // releases the batcher's backend Arc
    let store = Arc::into_inner(backend).unwrap().into_store();
    drop(store); // release the WAL handle before reopening
    let (reopened, report) = MutableStore::open(&index_path).unwrap();
    assert_eq!(report.replayed, 4, "insert + 2 delete records + insert");
    assert!(!report.torn_tail_dropped);
    assert!(reopened.index().is_live(65));
    assert!(!reopened.index().is_live(64));
    assert_eq!(reopened.index().live_len(), 65);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compact_hot_swaps_under_concurrent_search_load() {
    let dir = scratch_dir("hotswap");
    let index_path = dir.join("live.ivf");
    let store = MutableStore::create(&index_path, fixture_index(128, 8, 23)).unwrap();
    let backend = Arc::new(MutableIvfBackend::new(store, Some(1)));
    let mut server = Server::start_mutable(
        Arc::clone(&backend) as Arc<dyn serve::MutableBackend>,
        quick_config(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Background searchers hammer the server across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let searchers: Vec<_> = (0..3)
        .map(|t| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
                let mut served = 0u64;
                let mut id = 1_000 * (t + 1);
                while !stop.load(Ordering::Relaxed) {
                    let q = vec![(id % 9) as f32; DIM];
                    let r = search_one(&mut client, id, &q, 3);
                    assert_eq!(r.len(), 3, "every response carries r results");
                    served += 1;
                    id += 1;
                }
                served
            })
        })
        .collect();

    let mut client = Client::connect(addr, Duration::from_secs(5)).unwrap();
    // Mutation storm with periodic compactions: every ack must be Ok.
    let mut inserted = Vec::new();
    for round in 0..8u64 {
        let ack = client
            .insert(round * 10 + 1, DIM as u32, vec![50.0 + round as f32; DIM])
            .unwrap();
        inserted.extend(ack.ids.iter().copied());
        if round % 2 == 1 {
            let victim = inserted.remove(0);
            client.delete(round * 10 + 2, vec![victim]).unwrap();
        }
        if round % 3 == 2 {
            let ack = client.compact(round * 10 + 3).unwrap();
            assert_eq!(ack.status, Status::Ok);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let mut total = 0;
    for s in searchers {
        total += s.join().unwrap();
    }
    assert!(total > 0, "searchers must have run during the storm");

    server.shutdown();
    drop(client);
    drop(server); // releases the batcher's backend Arc
                  // After the final compaction cycle the surviving inserts are exactly the
                  // live appends; reopen and compare against the journal's promise.
    let store = Arc::into_inner(backend).unwrap().into_store();
    let live: Vec<u32> = inserted
        .iter()
        .copied()
        .filter(|&id| store.index().is_live(id))
        .collect();
    assert_eq!(live, inserted, "acked inserts minus acked deletes survive");
    drop(store);
    let (reopened, _) = MutableStore::open(&index_path).unwrap();
    for &id in &inserted {
        assert!(reopened.index().is_live(id), "id {id} lost across reopen");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn immutable_server_answers_mutations_bad_request() {
    let index = fixture_index(64, 4, 5);
    let backend = IvfBackend::new(index, Some(1));
    let mut server = Server::start(Arc::new(backend), quick_config()).unwrap();
    let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();

    let err = client.insert(1, DIM as u32, vec![1.0; DIM]).unwrap_err();
    match err {
        ClientError::Rejected { status, message } => {
            assert_eq!(status, Status::BadRequest);
            assert!(message.contains("immutable"), "got: {message}");
        }
        other => panic!("expected a typed rejection, got {other}"),
    }
    // The connection survives and searches still work.
    assert_eq!(search_one(&mut client, 2, &[1.0; DIM], 3).len(), 3);
    server.shutdown();
}
