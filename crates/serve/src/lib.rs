//! Fault-tolerant dynamic-batching query serving for the IVF index.
//!
//! This crate is the traffic-facing layer of the workspace: a hand-rolled
//! `std::net` TCP server speaking the checksummed [`protocol`] (GKSQ frames),
//! a [`batcher`] that coalesces concurrent requests into the IVF engine's
//! 64-query blocks under a latency deadline, and a [`client`] with
//! classification-aware retries.  Robustness is the design centre:
//!
//! * **Deadlines** — per-request budgets propagate into the batch schedule;
//!   expired requests are answered `DEADLINE_EXCEEDED`, never dropped.
//! * **Backpressure** — a bounded admission queue sheds `OVERLOADED` with
//!   two-watermark hysteresis instead of queueing without bound.
//! * **Hostile clients** — frames are length-capped before allocation and
//!   CRC-32C-checksummed; slow-loris and silent connections hit typed
//!   timeouts.
//! * **Panic containment** — search runs through
//!   [`ivf::IvfIndex::try_batch_search`], so a worker panic fails one batch
//!   with `INTERNAL` and the process keeps serving.
//! * **Graceful drain** — a signal or `Shutdown` frame stops admission,
//!   answers everything in flight, then joins every thread.
//! * **Durable mutation** — a [`MutableBackend`] serves INSERT/DELETE/COMPACT
//!   frames through the same batcher under an `RwLock`'d
//!   [`ivf::MutableStore`]: every mutation is journalled and fsynced before
//!   its ack is sent (so acks are non-idempotent — [`retry_mutation`] retries
//!   only `OVERLOADED`), and compaction hot-swaps the checkpoint atomically
//!   while searches keep flowing.
//!
//! A minimal round trip against an in-process server:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use serve::batcher::{BatcherConfig, SearchBackend};
//! use serve::client::Client;
//! use serve::protocol::SearchRequest;
//! use serve::server::{Server, ServerConfig};
//!
//! // Any SearchBackend serves; production wraps ivf::IvfIndex in IvfBackend.
//! struct Nearest;
//! impl SearchBackend for Nearest {
//!     fn dim(&self) -> usize { 2 }
//!     fn search_batch(
//!         &self,
//!         queries: &vecstore::VectorSet,
//!         r: usize,
//!         _nprobe: usize,
//!     ) -> vecstore::Result<Vec<Vec<knn_graph::Neighbor>>> {
//!         Ok(queries.rows().map(|_| vec![knn_graph::Neighbor::new(0, 0.0); r]).collect())
//!     }
//! }
//!
//! let mut server = Server::start(Arc::new(Nearest), ServerConfig {
//!     batcher: BatcherConfig { max_delay: Duration::from_millis(1), ..Default::default() },
//!     ..Default::default()
//! }).unwrap();
//! let mut client = Client::connect(server.local_addr(), Duration::from_secs(5)).unwrap();
//! let results = client.search(&SearchRequest {
//!     id: 1, deadline_ms: 0, r: 3, nprobe: 1, dim: 2, queries: vec![0.5, 0.5],
//! }).unwrap();
//! assert_eq!(results[0].len(), 3);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod signal;

pub use batcher::{
    Batcher, BatcherConfig, BatcherStats, IvfBackend, MutableBackend, MutableIvfBackend,
    MutationOutcome, Reply, SearchBackend,
};
pub use client::{
    retry_mutation, retry_search, Client, ClientError, RetryPolicy, Sleeper, ThreadSleeper,
};
pub use metrics::MetricsServer;
pub use protocol::{
    MutateResponse, MutationRequest, SearchRequest, SearchResponse, StatsFormat, StatsRequest,
    StatsResponse, Status, TracedSearchRequest, TracedSearchResponse, WireMutation,
};
pub use server::{Server, ServerConfig, ServerStats, StopReason};
