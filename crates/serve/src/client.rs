//! Blocking client for the GKSQ protocol, plus the retry policies for
//! idempotent searches and non-idempotent mutations.
//!
//! Retries are **classification-driven**: a search is idempotent, so
//! [`retry_search`] retries on `OVERLOADED` (the server shed it unprocessed)
//! and on connect/transport failures (the request may never have arrived) —
//! but *never* on `DEADLINE_EXCEEDED`: the client's time budget is spent, and
//! retrying a deadline miss under load is how retry storms start.  Backoff is
//! exponential with equal-jitter (`[delay/2, delay]`) from a deterministic
//! xorshift stream, so tests can pin the seed and assert exact schedules.
//!
//! Mutations are **not idempotent**: replaying an insert doubles it.
//! [`retry_mutation`] therefore retries *only* a typed `OVERLOADED`
//! rejection — the server's pre-admission shed, which guarantees nothing was
//! journalled.  A transport failure after the frame was sent is ambiguous
//! (the mutation may be durable even though the ack was lost), so `Io`,
//! `Wire` and every other failure is terminal for a mutation even though
//! `Io` is retryable for a search.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use knn_graph::Neighbor;
use obs::StageTimings;

use crate::protocol::{
    read_frame, write_frame, write_mutation, write_search, write_stats_request,
    write_traced_search, FrameKind, MutateResponse, MutationRequest, SearchRequest, SearchResponse,
    StatsFormat, StatsRequest, StatsResponse, Status, TracedSearchRequest, TracedSearchResponse,
    WireError, WireMutation, DEFAULT_MAX_PAYLOAD,
};

/// Client-side failure classification.
#[derive(Debug)]
pub enum ClientError {
    /// Connect or transport failure — the request may not have reached the
    /// server (retryable for idempotent operations).
    Io(io::Error),
    /// The server's bytes did not parse as protocol frames.
    Wire(WireError),
    /// The server answered with a typed non-`OK` status.
    Rejected {
        /// The classification the server returned.
        status: Status,
        /// Human-readable reason from the response frame.
        message: String,
    },
    /// The server answered a different request id than asked.
    Mismatch {
        /// Id the client sent.
        sent: u64,
        /// Id the server echoed.
        got: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failure: {e}"),
            ClientError::Wire(e) => write!(f, "protocol failure: {e}"),
            ClientError::Rejected { status, message } => {
                write!(f, "{status}: {message}")
            }
            ClientError::Mismatch { sent, got } => {
                write!(f, "response id {got} does not match request id {sent}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(inner) => ClientError::Io(inner),
            other => ClientError::Wire(other),
        }
    }
}

impl ClientError {
    /// True when retrying an *idempotent* request is sound: the server shed
    /// it unprocessed (`OVERLOADED`) or transport failed.  Deadline misses,
    /// protocol errors and every other rejection are terminal.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Rejected { status, .. } => *status == Status::Overloaded,
            _ => false,
        }
    }

    /// True when retrying a **non-idempotent mutation** is sound.  Only a
    /// typed `OVERLOADED` rejection qualifies: it is produced *before*
    /// admission, so nothing was journalled.  A transport failure is
    /// ambiguous — the mutation may have been journalled and the ack lost —
    /// and replaying it would double-apply, so `Io` is terminal here even
    /// though [`ClientError::is_retryable`] accepts it for searches.
    pub fn is_mutation_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Rejected {
                status: Status::Overloaded,
                ..
            }
        )
    }
}

/// A connected GKSQ client.
pub struct Client {
    stream: TcpStream,
    max_payload: u32,
}

impl Client {
    /// Connects with a timeout (applied to connect, reads and writes).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client, ClientError> {
        let resolved = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        // Frames are small and request/response-shaped; Nagle + delayed ACK
        // would add tens of milliseconds per round trip.
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Sends one search request and blocks for its response.
    pub fn search(&mut self, req: &SearchRequest) -> Result<Vec<Vec<Neighbor>>, ClientError> {
        write_search(&mut self.stream, req)?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?
                .ok_or(ClientError::Wire(WireError::Truncated))?;
            match frame.kind {
                FrameKind::Response => {
                    let resp = SearchResponse::decode(&frame.payload)?;
                    if resp.status != Status::Ok {
                        return Err(ClientError::Rejected {
                            status: resp.status,
                            message: resp.message,
                        });
                    }
                    if resp.id != req.id {
                        return Err(ClientError::Mismatch {
                            sent: req.id,
                            got: resp.id,
                        });
                    }
                    return Ok(resp.results);
                }
                // Stray control frames (e.g. a pong from an earlier ping
                // crossing this request) are skipped.
                FrameKind::Pong | FrameKind::ShutdownAck => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame kind {other:?} while awaiting a response"
                    ))))
                }
            }
        }
    }

    /// Sends one traced search and blocks for its traced response: the
    /// results plus the server-measured per-stage timings (queue wait, IVF
    /// route / scan / re-rank, and total residence).
    ///
    /// `trace_id` must be non-zero (mint one with [`obs::trace::next_trace_id`])
    /// and is echoed back verbatim — a mismatch is reported like an id
    /// mismatch.  Works only against a server started with observability;
    /// other servers still answer (timings are simply zero).
    pub fn search_traced(
        &mut self,
        trace_id: u64,
        req: &SearchRequest,
    ) -> Result<(Vec<Vec<Neighbor>>, StageTimings), ClientError> {
        if trace_id == 0 {
            return Err(ClientError::Wire(WireError::Malformed(
                "trace id 0 is reserved for untraced requests".into(),
            )));
        }
        write_traced_search(
            &mut self.stream,
            &TracedSearchRequest {
                trace_id,
                req: req.clone(),
            },
        )?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?
                .ok_or(ClientError::Wire(WireError::Truncated))?;
            match frame.kind {
                FrameKind::TracedResponse => {
                    let traced = TracedSearchResponse::decode(&frame.payload)?;
                    if traced.resp.status != Status::Ok {
                        return Err(ClientError::Rejected {
                            status: traced.resp.status,
                            message: traced.resp.message,
                        });
                    }
                    if traced.trace_id != trace_id {
                        return Err(ClientError::Mismatch {
                            sent: trace_id,
                            got: traced.trace_id,
                        });
                    }
                    if traced.resp.id != req.id {
                        return Err(ClientError::Mismatch {
                            sent: req.id,
                            got: traced.resp.id,
                        });
                    }
                    return Ok((traced.resp.results, traced.timings));
                }
                // Stray control frames crossing this request are skipped.
                FrameKind::Pong | FrameKind::ShutdownAck => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame kind {other:?} while awaiting a traced response"
                    ))))
                }
            }
        }
    }

    /// Fetches the server's stats rendered in `format`.
    ///
    /// Servers started without observability answer a typed `BAD_REQUEST`
    /// rejection, which surfaces here as [`ClientError::Rejected`].
    pub fn stats(&mut self, format: StatsFormat) -> Result<String, ClientError> {
        write_stats_request(&mut self.stream, &StatsRequest { format })?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?
                .ok_or(ClientError::Wire(WireError::Truncated))?;
            match frame.kind {
                FrameKind::StatsText => {
                    return Ok(StatsResponse::decode(&frame.payload)?.text);
                }
                // A rejection (e.g. observability disabled) arrives as a
                // plain response frame.
                FrameKind::Response => {
                    let resp = SearchResponse::decode(&frame.payload)?;
                    return Err(ClientError::Rejected {
                        status: resp.status,
                        message: resp.message,
                    });
                }
                // Stray control frames crossing this request are skipped.
                FrameKind::Pong | FrameKind::ShutdownAck => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame kind {other:?} while awaiting stats text"
                    ))))
                }
            }
        }
    }

    /// Sends one mutation and blocks for its ack.
    ///
    /// An `Ok` return means the mutation is durable (journalled, fsynced and
    /// applied).  An `Err` must **not** be blindly retried: see
    /// [`ClientError::is_mutation_retryable`] / [`retry_mutation`].
    pub fn mutate(&mut self, req: &MutationRequest) -> Result<MutateResponse, ClientError> {
        write_mutation(&mut self.stream, req)?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?
                .ok_or(ClientError::Wire(WireError::Truncated))?;
            match frame.kind {
                FrameKind::MutateAck => {
                    let ack = MutateResponse::decode(&frame.payload)?;
                    if ack.status != Status::Ok {
                        return Err(ClientError::Rejected {
                            status: ack.status,
                            message: ack.message,
                        });
                    }
                    if ack.id != req.id {
                        return Err(ClientError::Mismatch {
                            sent: req.id,
                            got: ack.id,
                        });
                    }
                    return Ok(ack);
                }
                // Stray control frames crossing this request are skipped.
                FrameKind::Pong | FrameKind::ShutdownAck => continue,
                other => {
                    return Err(ClientError::Wire(WireError::Malformed(format!(
                        "unexpected frame kind {other:?} while awaiting a mutate ack"
                    ))))
                }
            }
        }
    }

    /// Inserts `vectors` (row-major, `dim` wide); returns the assigned ids.
    pub fn insert(
        &mut self,
        id: u64,
        dim: u32,
        vectors: Vec<f32>,
    ) -> Result<MutateResponse, ClientError> {
        self.mutate(&MutationRequest {
            id,
            op: WireMutation::Insert { dim, vectors },
        })
    }

    /// Tombstones `ids`; the ack lists the ids that were actually live.
    pub fn delete(&mut self, id: u64, ids: Vec<u32>) -> Result<MutateResponse, ClientError> {
        self.mutate(&MutationRequest {
            id,
            op: WireMutation::Delete { ids },
        })
    }

    /// Asks the server to checkpoint-compact its index and truncate the
    /// journal.
    pub fn compact(&mut self, id: u64) -> Result<MutateResponse, ClientError> {
        self.mutate(&MutationRequest {
            id,
            op: WireMutation::Compact,
        })
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, FrameKind::Ping, &[])?;
        let frame = read_frame(&mut self.stream, self.max_payload)?
            .ok_or(ClientError::Wire(WireError::Truncated))?;
        match frame.kind {
            FrameKind::Pong => Ok(()),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "expected a pong, got {other:?}"
            )))),
        }
    }

    /// Asks the server to drain and exit; resolves once the drain has begun.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.stream, FrameKind::Shutdown, &[])?;
        let frame = read_frame(&mut self.stream, self.max_payload)?
            .ok_or(ClientError::Wire(WireError::Truncated))?;
        match frame.kind {
            FrameKind::ShutdownAck => Ok(()),
            other => Err(ClientError::Wire(WireError::Malformed(format!(
                "expected a shutdown ack, got {other:?}"
            )))),
        }
    }
}

/// Exponential backoff with equal-jitter and a cap.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub cap: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Injection point for time so the retry schedule is unit-testable without
/// sleeping: production uses [`ThreadSleeper`], tests record durations.
pub trait Sleeper {
    /// Waits for `d` (or records it, in tests).
    fn sleep(&mut self, d: Duration);
}

/// Real wall-clock sleeper.
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// splitmix64 — tiny deterministic generator for jitter (no rand dep on the
/// client path).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The backoff before retry number `retry` (1-based), jittered into
/// `[delay/2, delay]` where `delay = min(base · 2^(retry-1), cap)`.
fn backoff(policy: &RetryPolicy, retry: u32, jitter_state: &mut u64) -> Duration {
    let exp = retry.saturating_sub(1).min(32);
    let delay = policy
        .base
        .saturating_mul(1u32 << exp.min(31))
        .min(policy.cap);
    let half = delay / 2;
    if half.is_zero() {
        return delay;
    }
    let span_nanos = (delay - half).as_nanos() as u64;
    let jitter = splitmix64(jitter_state) % (span_nanos + 1);
    half + Duration::from_nanos(jitter)
}

/// Runs `attempt` up to `policy.max_attempts` times, backing off between
/// tries.  Retries only errors whose [`ClientError::is_retryable`] is true —
/// `OVERLOADED` rejections and transport failures — and returns the last
/// error when attempts are exhausted.  `DEADLINE_EXCEEDED` and every other
/// classification fail fast on the first occurrence.
pub fn retry_search<T>(
    policy: &RetryPolicy,
    sleeper: &mut impl Sleeper,
    attempt: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    retry_classified(policy, sleeper, ClientError::is_retryable, attempt)
}

/// Runs a **non-idempotent mutation** up to `policy.max_attempts` times.
///
/// The only error retried is a typed `OVERLOADED` rejection
/// ([`ClientError::is_mutation_retryable`]): the server sheds before
/// admission, so nothing was journalled and resending cannot double-apply.
/// Transport failures (`Io`), protocol failures and every other rejection
/// fail fast — after an ambiguous failure the caller must reconcile (e.g.
/// re-read state) rather than resend.
pub fn retry_mutation<T>(
    policy: &RetryPolicy,
    sleeper: &mut impl Sleeper,
    attempt: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    retry_classified(policy, sleeper, ClientError::is_mutation_retryable, attempt)
}

fn retry_classified<T>(
    policy: &RetryPolicy,
    sleeper: &mut impl Sleeper,
    retryable: impl Fn(&ClientError) -> bool,
    mut attempt: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.max_attempts.max(1);
    let mut jitter_state = policy.jitter_seed;
    let mut tries = 0;
    loop {
        tries += 1;
        match attempt(tries) {
            Ok(v) => return Ok(v),
            Err(e) if retryable(&e) && tries < attempts => {
                sleeper.sleep(backoff(policy, tries, &mut jitter_state));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fake clock: records every sleep instead of waiting.
    struct FakeSleeper {
        slept: Vec<Duration>,
    }

    impl Sleeper for FakeSleeper {
        fn sleep(&mut self, d: Duration) {
            self.slept.push(d);
        }
    }

    fn overloaded() -> ClientError {
        ClientError::Rejected {
            status: Status::Overloaded,
            message: "shed".into(),
        }
    }

    fn deadline_exceeded() -> ClientError {
        ClientError::Rejected {
            status: Status::DeadlineExceeded,
            message: "late".into(),
        }
    }

    #[test]
    fn retries_overloaded_until_success() {
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out = retry_search(&policy, &mut sleeper, |attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            if calls < 3 {
                Err(overloaded())
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls, 3);
        assert_eq!(sleeper.slept.len(), 2, "one backoff per failed attempt");
    }

    #[test]
    fn never_retries_deadline_exceeded() {
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let err = retry_search::<()>(&policy, &mut sleeper, |_| {
            calls += 1;
            Err(deadline_exceeded())
        })
        .unwrap_err();
        assert_eq!(calls, 1, "a deadline miss must fail fast");
        assert!(sleeper.slept.is_empty(), "no backoff for a terminal error");
        assert!(matches!(
            err,
            ClientError::Rejected {
                status: Status::DeadlineExceeded,
                ..
            }
        ));
    }

    #[test]
    fn retries_transport_failures_and_exhausts() {
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let policy = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let err = retry_search::<()>(&policy, &mut sleeper, |_| {
            calls += 1;
            Err(ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "nope",
            )))
        })
        .unwrap_err();
        assert_eq!(calls, 5);
        assert_eq!(sleeper.slept.len(), 4);
        assert!(matches!(err, ClientError::Io(_)));
    }

    #[test]
    fn other_rejections_fail_fast() {
        for status in [Status::Internal, Status::BadRequest, Status::ShuttingDown] {
            let mut sleeper = FakeSleeper { slept: Vec::new() };
            let mut calls = 0;
            let _ = retry_search::<()>(&RetryPolicy::default(), &mut sleeper, |_| {
                calls += 1;
                Err(ClientError::Rejected {
                    status,
                    message: String::new(),
                })
            });
            assert_eq!(calls, 1, "{status} must not be retried");
            assert!(sleeper.slept.is_empty());
        }
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered_within_bounds() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            jitter_seed: 7,
        };
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let _ = retry_search::<()>(&policy, &mut sleeper, |_| Err(overloaded()));
        assert_eq!(sleeper.slept.len(), 7);
        for (i, &d) in sleeper.slept.iter().enumerate() {
            let raw = policy
                .base
                .saturating_mul(1u32 << i.min(31))
                .min(policy.cap);
            assert!(
                d >= raw / 2 && d <= raw,
                "retry {} slept {d:?}, expected within [{:?}, {raw:?}]",
                i + 1,
                raw / 2
            );
        }
        // The tail is capped.
        let last = *sleeper.slept.last().unwrap();
        assert!(last <= policy.cap);
    }

    #[test]
    fn jitter_schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy {
            jitter_seed: 99,
            max_attempts: 6,
            ..RetryPolicy::default()
        };
        let run = |policy: &RetryPolicy| {
            let mut sleeper = FakeSleeper { slept: Vec::new() };
            let _ = retry_search::<()>(policy, &mut sleeper, |_| Err(overloaded()));
            sleeper.slept
        };
        assert_eq!(run(&policy), run(&policy), "same seed, same schedule");
        let other = RetryPolicy {
            jitter_seed: 100,
            ..policy
        };
        assert_ne!(
            run(&policy),
            run(&other),
            "different seed, different jitter"
        );
    }

    #[test]
    fn classification_is_retryable_matches_the_contract() {
        assert!(overloaded().is_retryable());
        assert!(ClientError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_retryable());
        assert!(!deadline_exceeded().is_retryable());
        assert!(!ClientError::Wire(WireError::ChecksumMismatch).is_retryable());
        assert!(!ClientError::Mismatch { sent: 1, got: 2 }.is_retryable());
        assert!(!ClientError::Rejected {
            status: Status::Internal,
            message: String::new()
        }
        .is_retryable());
    }

    #[test]
    fn mutation_retry_accepts_only_pre_admission_sheds() {
        // OVERLOADED is the one mutation error produced before anything was
        // journalled, so it is the one error retry_mutation may retry.
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out = retry_mutation(&policy, &mut sleeper, |attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            if calls < 3 {
                Err(overloaded())
            } else {
                Ok("durable")
            }
        })
        .unwrap();
        assert_eq!(out, "durable");
        assert_eq!(calls, 3);
        assert_eq!(sleeper.slept.len(), 2);
    }

    #[test]
    fn mutation_retry_treats_transport_failure_as_terminal() {
        // The same Io error retry_search happily retries must fail a
        // mutation fast: the insert may already be journalled server-side,
        // and a resend would double-apply it.
        let io_err = || {
            ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "ack lost mid-flight",
            ))
        };
        let policy = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };

        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let mut search_calls = 0;
        let _ = retry_search::<()>(&policy, &mut sleeper, |_| {
            search_calls += 1;
            Err(io_err())
        });
        assert_eq!(search_calls, 5, "searches are idempotent: Io retries");

        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let mut mutation_calls = 0;
        let err = retry_mutation::<()>(&policy, &mut sleeper, |_| {
            mutation_calls += 1;
            Err(io_err())
        })
        .unwrap_err();
        assert_eq!(
            mutation_calls, 1,
            "an ambiguous transport failure must never replay a mutation"
        );
        assert!(sleeper.slept.is_empty(), "no backoff for a terminal error");
        assert!(matches!(err, ClientError::Io(_)));
    }

    #[test]
    fn mutation_retry_fails_fast_on_every_other_classification() {
        for status in [
            Status::Internal,
            Status::BadRequest,
            Status::ShuttingDown,
            Status::DeadlineExceeded,
        ] {
            let mut sleeper = FakeSleeper { slept: Vec::new() };
            let mut calls = 0;
            let _ = retry_mutation::<()>(&RetryPolicy::default(), &mut sleeper, |_| {
                calls += 1;
                Err(ClientError::Rejected {
                    status,
                    message: String::new(),
                })
            });
            assert_eq!(calls, 1, "{status} must not retry a mutation");
            assert!(sleeper.slept.is_empty());
        }
        // Wire-level garbage is equally terminal.
        let mut calls = 0;
        let mut sleeper = FakeSleeper { slept: Vec::new() };
        let _ = retry_mutation::<()>(&RetryPolicy::default(), &mut sleeper, |_| {
            calls += 1;
            Err(ClientError::Wire(WireError::ChecksumMismatch))
        });
        assert_eq!(calls, 1);
    }
}
