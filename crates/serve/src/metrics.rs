//! A minimal, hardened HTTP exposition endpoint for the metrics registry.
//!
//! Serves the Prometheus text format over a plain [`TcpListener`] — no HTTP
//! library, because the container has none and the surface is one read-only
//! GET.  The parser is deliberately tiny and paranoid:
//!
//! * the request is capped at `MAX_REQUEST_BYTES` (8 KiB) before any
//!   allocation grows past a stack chunk — longer requests are answered `413`;
//! * read and write each get a 2 s socket timeout, so a slow-loris peer
//!   costs one short-lived thread for at most ~4 s, never a stuck listener;
//! * concurrent connections are capped at `MAX_OPEN` (32); beyond that the
//!   socket is dropped without a response (the scraper will retry);
//! * any parse failure answers `400` and closes — the endpoint never panics
//!   and never echoes attacker-controlled bytes back.
//!
//! `GET /metrics` (or `/`) returns the registry snapshot rendered in
//! Prometheus text format; `GET /json` returns the JSON rendering including
//! the recent slow queries.  Everything else is `404`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use obs::ObsHandle;

/// Request cap: a real scrape's request line plus headers fits in a fraction
/// of this; anything longer is hostile or confused.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Concurrent connection cap — scrapes are short, so even one aggressive
/// scraper plus a chaos test stays far below this.
const MAX_OPEN: usize = 32;
/// Socket read/write budget per connection.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll tick (shutdown latency bound).
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// A running metrics endpoint.  Dropping it stops the listener and joins
/// the accept thread.
pub struct MetricsServer {
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 picks an ephemeral one)
    /// and serves `obs`'s registry until the server is dropped or
    /// [`MetricsServer::shutdown`] is called.
    ///
    /// The handle may be disabled — the endpoint then answers `503` so a
    /// scraper sees an explicit signal rather than an empty page.
    pub fn start(addr: &str, obs: ObsHandle) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept_thread = thread::Builder::new()
            .name("gkm-metrics".into())
            .spawn(move || accept_loop(listener, &flag, &obs))?;
        Ok(MetricsServer {
            shutdown,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port of `…:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the listener and joins the accept thread.  Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shutdown: &AtomicBool, obs: &ObsHandle) {
    let open = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                workers.retain(|t| !t.is_finished());
                if open.load(Ordering::SeqCst) >= MAX_OPEN {
                    // Over the cap: drop without a response; scrapes retry.
                    continue;
                }
                open.fetch_add(1, Ordering::SeqCst);
                let conn_open = Arc::clone(&open);
                let conn_obs = obs.clone();
                let spawned =
                    thread::Builder::new()
                        .name("gkm-metrics-c".into())
                        .spawn(move || {
                            handle_scrape(stream, &conn_obs);
                            conn_open.fetch_sub(1, Ordering::SeqCst);
                        });
                match spawned {
                    Ok(t) => workers.push(t),
                    Err(_) => {
                        open.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
    for t in workers {
        let _ = t.join();
    }
}

/// Reads one request (bounded, with timeouts), answers it, closes.
fn handle_scrape(mut stream: TcpStream, obs: &ObsHandle) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);

    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    // Read until the header terminator, the cap, EOF, or the timeout —
    // whichever comes first.  A slow-loris peer hits the timeout; a
    // header-bomb hits the cap.
    let complete = loop {
        if find_header_end(&buf).is_some() {
            break true;
        }
        if buf.len() >= MAX_REQUEST_BYTES {
            let _ = write_simple(&mut stream, 413, "request too large\n");
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break false,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // WouldBlock / TimedOut: the 2 s budget elapsed mid-request.
            Err(_) => {
                let _ = write_simple(&mut stream, 408, "request timed out\n");
                return;
            }
        }
    };
    if !complete {
        // EOF before the headers ended: garbage or a probe; nothing to say.
        return;
    }

    let path = match parse_request_path(&buf) {
        Some(p) => p,
        None => {
            let _ = write_simple(&mut stream, 400, "malformed request\n");
            return;
        }
    };

    let Some(snap) = obs.snapshot() else {
        let _ = write_simple(&mut stream, 503, "metrics are not enabled on this server\n");
        return;
    };
    match path.as_str() {
        "/metrics" | "/" => {
            let body = snap.render_prometheus();
            let _ = write_response(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/json" => {
            let slow = obs.obs().map(|o| o.slow_log().recent()).unwrap_or_default();
            let body = snap.render_json(&slow);
            let _ = write_response(&mut stream, 200, "application/json", &body);
        }
        _ => {
            let _ = write_simple(&mut stream, 404, "try /metrics or /json\n");
        }
    }
}

/// Byte offset just past the `\r\n\r\n` (or bare `\n\n`) header terminator.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Extracts the path from `GET <path> HTTP/1.x`.  `None` for any other
/// method, a non-UTF-8 request line, or a missing version token.
fn parse_request_path(buf: &[u8]) -> Option<String> {
    let line_end = buf.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&buf[..line_end]).ok()?.trim_end();
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let path = parts.next()?;
    if !parts.next()?.starts_with("HTTP/") {
        return None;
    }
    // Strip a query string: scrapers sometimes append cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    Some(path.to_string())
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn write_simple(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    write_response(stream, status, "text/plain; charset=utf-8", body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_enabled() -> (MetricsServer, ObsHandle) {
        let obs = ObsHandle::enabled();
        obs.counter("test_requests_total", "Requests seen by the test")
            .add(7);
        let server = MetricsServer::start("127.0.0.1:0", obs.clone()).unwrap();
        (server, obs)
    }

    fn http_get(addr: SocketAddr, request: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn scrape_returns_prometheus_text() {
        let (mut server, _obs) = start_enabled();
        let resp = http_get(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("test_requests_total 7"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn json_endpoint_includes_metric() {
        let (mut server, _obs) = start_enabled();
        let resp = http_get(server.local_addr(), "GET /json HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("test_requests_total"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_post_is_400() {
        let (mut server, _obs) = start_enabled();
        let addr = server.local_addr();
        assert!(http_get(addr, "GET /nope HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(http_get(addr, "POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 400"));
        server.shutdown();
    }

    #[test]
    fn garbage_bytes_get_a_400_not_a_hang() {
        let (mut server, _obs) = start_enabled();
        let resp = http_get(server.local_addr(), "\x00\x01\x02garbage\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn oversized_request_is_413() {
        let (mut server, _obs) = start_enabled();
        let big = format!("GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n", "a".repeat(9000));
        let resp = http_get(server.local_addr(), &big);
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn disabled_handle_serves_503() {
        let mut server = MetricsServer::start("127.0.0.1:0", ObsHandle::disabled()).unwrap();
        let resp = http_get(server.local_addr(), "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn slow_loris_times_out_without_blocking_fast_scrapes() {
        let (mut server, _obs) = start_enabled();
        let addr = server.local_addr();
        // A peer that sends half a request line and stalls.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /metr").unwrap();
        // A well-behaved scrape issued while the loris is stalling must
        // still answer promptly.
        let resp = http_get(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        // The loris eventually gets a 408 (or a closed socket) — never a
        // wedged listener.
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut out = String::new();
        let _ = loris.read_to_string(&mut out);
        assert!(out.is_empty() || out.starts_with("HTTP/1.1 408"), "{out}");
        server.shutdown();
    }
}
