//! The GKSQ wire protocol: length-prefixed, versioned, checksummed frames.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//!      0     4  magic  "GKSQ"
//!      4     2  version (little-endian u16, currently 1)
//!      6     1  kind    (FrameKind discriminant)
//!      7     1  reserved (must be 0)
//!      8     4  payload length (little-endian u32)
//!     12     4  CRC-32C of header bytes 0..12 ‖ payload (little-endian u32)
//!     16     …  payload
//! ```
//!
//! The checksum reuses [`vecstore::checksum::crc32c`] — the same hardware
//! dispatched Castagnoli polynomial the GKSC container uses — folded over the
//! first twelve header bytes and the payload, so a flipped bit anywhere in
//! the frame (including in the declared length) surfaces as a typed
//! [`WireError::ChecksumMismatch`] instead of a garbage search.  The declared
//! length is bounds-checked against the receiver's limit *before* any
//! allocation, so a hostile 4 GiB length cannot OOM the process.
//!
//! Frames carry either a control message (ping/pong, shutdown) or a search
//! request/response; payload encodings live in [`SearchRequest`] and
//! [`SearchResponse`].  All integers are little-endian, matching the rest of
//! the workspace's on-disk formats.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::io::{self, Read, Write};

use knn_graph::Neighbor;
use vecstore::checksum::crc32c_append;

/// Frame magic: "GKSQ" (GK-means Serving Query).
pub const MAGIC: [u8; 4] = *b"GKSQ";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;
/// Default cap on a single frame payload (16 MiB) — generous for query
/// batches, small enough that a hostile length cannot exhaust memory.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 << 20;
/// Cap on queries carried by one request frame (one batcher block).
pub const MAX_QUERIES_PER_REQUEST: u32 = 64;
/// Cap on vectors carried by one insert frame (one group commit).
pub const MAX_VECTORS_PER_INSERT: u32 = 64;
/// Cap on ids carried by one delete frame.
pub const MAX_IDS_PER_DELETE: u32 = 4096;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A [`SearchRequest`] payload.
    Search = 1,
    /// A [`SearchResponse`] payload.
    Response = 2,
    /// Liveness probe; empty payload.
    Ping = 3,
    /// Reply to [`FrameKind::Ping`]; empty payload.
    Pong = 4,
    /// Control frame asking the server to drain and exit; empty payload.
    Shutdown = 5,
    /// Acknowledgement that the drain has begun; empty payload.
    ShutdownAck = 6,
    /// A [`MutationRequest`] carrying vectors to insert.
    Insert = 7,
    /// A [`MutationRequest`] carrying ids to tombstone.
    Delete = 8,
    /// A [`MutationRequest`] asking for checkpointed compaction.
    Compact = 9,
    /// A [`MutateResponse`] payload (ack of Insert/Delete/Compact).
    MutateAck = 10,
    /// A [`StatsRequest`] payload: asks the server for a metrics snapshot.
    Stats = 11,
    /// A [`StatsResponse`] payload: the rendered exposition text.
    StatsText = 12,
    /// A [`TracedSearchRequest`]: a search carrying a client-minted trace id.
    TracedSearch = 13,
    /// A [`TracedSearchResponse`]: a response carrying the trace id and the
    /// per-stage timings of the batch that served it.
    TracedResponse = 14,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => FrameKind::Search,
            2 => FrameKind::Response,
            3 => FrameKind::Ping,
            4 => FrameKind::Pong,
            5 => FrameKind::Shutdown,
            6 => FrameKind::ShutdownAck,
            7 => FrameKind::Insert,
            8 => FrameKind::Delete,
            9 => FrameKind::Compact,
            10 => FrameKind::MutateAck,
            11 => FrameKind::Stats,
            12 => FrameKind::StatsText,
            13 => FrameKind::TracedSearch,
            14 => FrameKind::TracedResponse,
            _ => return None,
        })
    }
}

/// Typed outcome of a search request.  Every accepted request is answered
/// with exactly one of these — results on `Ok`, a classified rejection
/// otherwise.  Discriminants are wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was served; results follow.
    Ok = 0,
    /// The request's deadline expired before a batch could serve it.
    DeadlineExceeded = 1,
    /// The admission queue was full; the request was shed unprocessed.
    Overloaded = 2,
    /// The serving backend failed (e.g. a contained worker panic).
    Internal = 3,
    /// The request itself was malformed (dimension mismatch, zero queries…).
    BadRequest = 4,
    /// The server is draining and no longer admits work.
    ShuttingDown = 5,
}

impl Status {
    /// Decodes a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::DeadlineExceeded,
            2 => Status::Overloaded,
            3 => Status::Internal,
            4 => Status::BadRequest,
            5 => Status::ShuttingDown,
            _ => return None,
        })
    }

    /// Canonical upper-case name (used in logs and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::DeadlineExceeded => "DEADLINE_EXCEEDED",
            Status::Overloaded => "OVERLOADED",
            Status::Internal => "INTERNAL",
            Status::BadRequest => "BAD_REQUEST",
            Status::ShuttingDown => "SHUTTING_DOWN",
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything that can go wrong reading a frame off the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes clean EOF mid-frame).
    Io(io::Error),
    /// The first four bytes were not `GKSQ`.
    BadMagic([u8; 4]),
    /// The version field is newer than this implementation speaks.
    UnsupportedVersion(u16),
    /// The kind byte does not name a known [`FrameKind`].
    UnknownKind(u8),
    /// The declared payload length exceeds the receiver's limit.
    Oversized {
        /// Length the frame header declared.
        declared: u32,
        /// The receiver's configured cap.
        limit: u32,
    },
    /// The connection ended mid-frame (header or payload cut short).
    Truncated,
    /// The frame checksum did not match header+payload.
    ChecksumMismatch,
    /// The payload decoded to something structurally invalid.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"GKSQ\")"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speaking {VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized { declared, limit } => {
                write!(
                    f,
                    "frame declares {declared} payload bytes, limit is {limit}"
                )
            }
            WireError::Truncated => f.write_str("connection closed mid-frame"),
            WireError::ChecksumMismatch => f.write_str("frame checksum mismatch"),
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // A clean EOF at a frame boundary is reported by `read_frame` before
        // this conversion; an UnexpectedEof inside a frame is a torn frame.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl WireError {
    /// True when the error means the peer went away (as opposed to speaking
    /// the protocol incorrectly) — callers close quietly instead of
    /// attempting an error reply.
    pub fn is_disconnect(&self) -> bool {
        match self {
            WireError::Truncated => true,
            WireError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            ),
            _ => false,
        }
    }
}

/// A decoded frame: its kind and raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload encodes.
    pub kind: FrameKind,
    /// Raw payload (decode with [`SearchRequest::decode`] /
    /// [`SearchResponse::decode`] as appropriate).
    pub payload: Vec<u8>,
}

/// Writes one frame (header, checksum, payload) to `w`.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_le_bytes());
    header[6] = kind as u8;
    header[7] = 0;
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32c_append(crc32c_append(!0u32, &header[..12]), payload) ^ !0u32;
    header[12..16].copy_from_slice(&crc.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from `r`, enforcing `max_payload` before allocating.
///
/// Returns `Ok(None)` on a clean EOF *at a frame boundary* (the peer hung up
/// between requests); every other short read is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    // Hand-rolled first read so EOF-before-any-byte is distinguishable from
    // EOF-mid-header.
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = FrameKind::from_u8(header[6]).ok_or(WireError::UnknownKind(header[6]))?;
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > max_payload {
        return Err(WireError::Oversized {
            declared: len,
            limit: max_payload,
        });
    }
    let declared_crc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let crc = crc32c_append(crc32c_append(!0u32, &header[..12]), &payload) ^ !0u32;
    if crc != declared_crc {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some(Frame { kind, payload }))
}

/// A batch of queries from one client, tagged with a correlation id and an
/// optional deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Milliseconds the client is willing to wait (0 = no deadline).  The
    /// server starts the clock when it *reads* the frame.
    pub deadline_ms: u32,
    /// Neighbours requested per query.
    pub r: u16,
    /// Inverted lists probed per query.
    pub nprobe: u16,
    /// Query dimensionality.
    pub dim: u32,
    /// Flattened row-major query vectors, `count × dim` values.
    pub queries: Vec<f32>,
}

impl SearchRequest {
    /// Number of query vectors carried.
    pub fn count(&self) -> u32 {
        if self.dim == 0 {
            0
        } else {
            (self.queries.len() / self.dim as usize) as u32
        }
    }

    /// Encodes the request payload.
    ///
    /// Layout: `id u64 | deadline_ms u32 | r u16 | nprobe u16 | dim u32 |
    /// count u32 | count×dim f32`, all little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.queries.len() * 4);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.extend_from_slice(&self.r.to_le_bytes());
        out.extend_from_slice(&self.nprobe.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.count().to_le_bytes());
        for v in &self.queries {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a request payload, validating counts against the buffer.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        let deadline_ms = c.u32()?;
        let r = c.u16()?;
        let nprobe = c.u16()?;
        let dim = c.u32()?;
        let count = c.u32()?;
        if count == 0 || dim == 0 {
            return Err(WireError::Malformed(format!(
                "request must carry at least one query of non-zero dimension \
                 (count = {count}, dim = {dim})"
            )));
        }
        if count > MAX_QUERIES_PER_REQUEST {
            return Err(WireError::Malformed(format!(
                "request carries {count} queries, cap is {MAX_QUERIES_PER_REQUEST}"
            )));
        }
        let values = (count as usize)
            .checked_mul(dim as usize)
            .ok_or_else(|| WireError::Malformed("count × dim overflows".into()))?;
        if c.remaining() != values * 4 {
            return Err(WireError::Malformed(format!(
                "expected {} query bytes, payload has {}",
                values * 4,
                c.remaining()
            )));
        }
        let mut queries = Vec::with_capacity(values);
        for _ in 0..values {
            queries.push(f32::from_le_bytes(c.array()?));
        }
        Ok(SearchRequest {
            id,
            deadline_ms,
            r,
            nprobe,
            dim,
            queries,
        })
    }
}

/// The answer to one [`SearchRequest`]: either neighbour lists or a typed
/// rejection with a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// Correlation id copied from the request (0 for connection-level errors
    /// emitted before a request id could be parsed).
    pub id: u64,
    /// Outcome classification.
    pub status: Status,
    /// Per-query neighbour lists (empty unless `status == Ok`).
    pub results: Vec<Vec<Neighbor>>,
    /// Reason text (empty when `status == Ok`).
    pub message: String,
}

impl SearchResponse {
    /// Builds a success response.
    pub fn ok(id: u64, results: Vec<Vec<Neighbor>>) -> Self {
        SearchResponse {
            id,
            status: Status::Ok,
            results,
            message: String::new(),
        }
    }

    /// Builds a typed rejection.
    pub fn rejection(id: u64, status: Status, message: impl Into<String>) -> Self {
        SearchResponse {
            id,
            status,
            results: Vec::new(),
            message: message.into(),
        }
    }

    /// Encodes the response payload.
    ///
    /// Layout: `id u64 | status u8`, then for `Ok`: `nq u32 | per query
    /// (len u32 | len × (id u32, dist f32))`; otherwise `msg_len u32 |
    /// msg_len UTF-8 bytes`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(self.status as u8);
        if self.status == Status::Ok {
            out.extend_from_slice(&(self.results.len() as u32).to_le_bytes());
            for list in &self.results {
                out.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for n in list {
                    out.extend_from_slice(&n.id.to_le_bytes());
                    out.extend_from_slice(&n.dist.to_le_bytes());
                }
            }
        } else {
            out.extend_from_slice(&(self.message.len() as u32).to_le_bytes());
            out.extend_from_slice(self.message.as_bytes());
        }
        out
    }

    /// Decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        let status_byte = c.u8()?;
        let status = Status::from_u8(status_byte)
            .ok_or_else(|| WireError::Malformed(format!("unknown status {status_byte}")))?;
        if status == Status::Ok {
            let nq = c.u32()? as usize;
            // Each query needs at least its 4-byte length on the wire.
            if nq > c.remaining() / 4 + 1 {
                return Err(WireError::Malformed(format!(
                    "response declares {nq} result lists, payload too short"
                )));
            }
            let mut results = Vec::with_capacity(nq);
            for _ in 0..nq {
                let len = c.u32()? as usize;
                if len > c.remaining() / 8 {
                    return Err(WireError::Malformed(format!(
                        "result list declares {len} neighbours, payload too short"
                    )));
                }
                let mut list = Vec::with_capacity(len);
                for _ in 0..len {
                    let nid = c.u32()?;
                    let dist = f32::from_le_bytes(c.array()?);
                    list.push(Neighbor::new(nid, dist));
                }
                results.push(list);
            }
            if c.remaining() != 0 {
                return Err(WireError::Malformed(format!(
                    "{} trailing bytes after result lists",
                    c.remaining()
                )));
            }
            Ok(SearchResponse::ok(id, results))
        } else {
            let len = c.u32()? as usize;
            if len != c.remaining() {
                return Err(WireError::Malformed(format!(
                    "message declares {len} bytes, payload has {}",
                    c.remaining()
                )));
            }
            let message = String::from_utf8_lossy(c.rest()).into_owned();
            Ok(SearchResponse::rejection(id, status, message))
        }
    }
}

/// The payload of a mutation frame (Insert / Delete / Compact).
#[derive(Debug, Clone, PartialEq)]
pub enum WireMutation {
    /// Insert `count = vectors.len() / dim` vectors; the server assigns ids
    /// and returns them (in row order) in the [`MutateResponse`].
    Insert {
        /// Vector dimensionality.
        dim: u32,
        /// Flattened row-major vectors, `count × dim` values.
        vectors: Vec<f32>,
    },
    /// Tombstone the given external ids (idempotent per id).
    Delete {
        /// External ids to tombstone.
        ids: Vec<u32>,
    },
    /// Fold the mutable tier into the next clean on-disk generation and
    /// truncate the journal (the hot-swap point).
    Compact,
}

/// A mutation from one client, tagged with a correlation id.  The operation
/// selects the frame kind; the ack is a [`MutateResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRequest {
    /// Client-chosen correlation id, echoed in the ack.
    pub id: u64,
    /// The operation.
    pub op: WireMutation,
}

impl MutationRequest {
    /// The frame kind this request travels under.
    pub fn kind(&self) -> FrameKind {
        match self.op {
            WireMutation::Insert { .. } => FrameKind::Insert,
            WireMutation::Delete { .. } => FrameKind::Delete,
            WireMutation::Compact => FrameKind::Compact,
        }
    }

    /// Encodes the request payload.
    ///
    /// Layouts (all little-endian, `id u64` first in each):
    /// * Insert: `id | dim u32 | count u32 | count×dim f32`
    /// * Delete: `id | count u32 | count × u32`
    /// * Compact: `id`
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.id.to_le_bytes());
        match &self.op {
            WireMutation::Insert { dim, vectors } => {
                out.extend_from_slice(&dim.to_le_bytes());
                let count = if *dim == 0 {
                    0
                } else {
                    (vectors.len() / *dim as usize) as u32
                };
                out.extend_from_slice(&count.to_le_bytes());
                for v in vectors {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            WireMutation::Delete { ids } => {
                out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
            WireMutation::Compact => {}
        }
        out
    }

    /// Decodes a mutation payload for the given frame kind, validating
    /// counts against the buffer and the per-frame caps.
    pub fn decode(kind: FrameKind, payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        let op = match kind {
            FrameKind::Insert => {
                let dim = c.u32()?;
                let count = c.u32()?;
                if count == 0 || dim == 0 {
                    return Err(WireError::Malformed(format!(
                        "insert must carry at least one vector of non-zero dimension \
                         (count = {count}, dim = {dim})"
                    )));
                }
                if count > MAX_VECTORS_PER_INSERT {
                    return Err(WireError::Malformed(format!(
                        "insert carries {count} vectors, cap is {MAX_VECTORS_PER_INSERT}"
                    )));
                }
                let values = (count as usize)
                    .checked_mul(dim as usize)
                    .ok_or_else(|| WireError::Malformed("count × dim overflows".into()))?;
                if c.remaining() != values * 4 {
                    return Err(WireError::Malformed(format!(
                        "expected {} vector bytes, payload has {}",
                        values * 4,
                        c.remaining()
                    )));
                }
                let mut vectors = Vec::with_capacity(values);
                for _ in 0..values {
                    vectors.push(f32::from_le_bytes(c.array()?));
                }
                WireMutation::Insert { dim, vectors }
            }
            FrameKind::Delete => {
                let count = c.u32()?;
                if count == 0 {
                    return Err(WireError::Malformed(
                        "delete must carry at least one id".into(),
                    ));
                }
                if count > MAX_IDS_PER_DELETE {
                    return Err(WireError::Malformed(format!(
                        "delete carries {count} ids, cap is {MAX_IDS_PER_DELETE}"
                    )));
                }
                if c.remaining() != count as usize * 4 {
                    return Err(WireError::Malformed(format!(
                        "expected {} id bytes, payload has {}",
                        count as usize * 4,
                        c.remaining()
                    )));
                }
                let mut ids = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    ids.push(c.u32()?);
                }
                WireMutation::Delete { ids }
            }
            FrameKind::Compact => {
                if c.remaining() != 0 {
                    return Err(WireError::Malformed(format!(
                        "{} trailing bytes after compact request",
                        c.remaining()
                    )));
                }
                WireMutation::Compact
            }
            other => {
                return Err(WireError::Malformed(format!(
                    "frame kind {other:?} is not a mutation"
                )))
            }
        };
        Ok(MutationRequest { id, op })
    }
}

/// The acknowledgement of one [`MutationRequest`].
///
/// An `Ok` ack means the mutation is **durable**: it was journalled and
/// fsynced before being applied.  `OVERLOADED`, `SHUTTING_DOWN` and
/// `BAD_REQUEST` are *pre-journal* rejections — nothing durable happened, so
/// retrying is safe.  `INTERNAL` is **ambiguous**: the failure may have
/// landed after a partial journal write, so the mutation may still replay
/// after a restart — the contract behind the retrying client's rule of never
/// retrying a mutation whose outcome is unknown.
#[derive(Debug, Clone, PartialEq)]
pub struct MutateResponse {
    /// Correlation id copied from the request.
    pub id: u64,
    /// Outcome classification.
    pub status: Status,
    /// Insert: the assigned external ids, in row order.  Delete: the ids
    /// that were live and are now tombstoned.  Compact: empty.
    pub ids: Vec<u32>,
    /// Live vectors in the index after the mutation (`status == Ok` only).
    pub live: u64,
    /// Reason text (empty when `status == Ok`).
    pub message: String,
}

impl MutateResponse {
    /// Builds a success ack.
    pub fn ok(id: u64, ids: Vec<u32>, live: u64) -> Self {
        MutateResponse {
            id,
            status: Status::Ok,
            ids,
            live,
            message: String::new(),
        }
    }

    /// Builds a typed rejection.
    pub fn rejection(id: u64, status: Status, message: impl Into<String>) -> Self {
        MutateResponse {
            id,
            status,
            ids: Vec::new(),
            live: 0,
            message: message.into(),
        }
    }

    /// Encodes the ack payload.
    ///
    /// Layout: `id u64 | status u8`, then for `Ok`: `live u64 | n u32 |
    /// n × u32 ids`; otherwise `msg_len u32 | msg_len UTF-8 bytes`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.ids.len() * 4);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(self.status as u8);
        if self.status == Status::Ok {
            out.extend_from_slice(&self.live.to_le_bytes());
            out.extend_from_slice(&(self.ids.len() as u32).to_le_bytes());
            for id in &self.ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        } else {
            out.extend_from_slice(&(self.message.len() as u32).to_le_bytes());
            out.extend_from_slice(self.message.as_bytes());
        }
        out
    }

    /// Decodes an ack payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let id = c.u64()?;
        let status_byte = c.u8()?;
        let status = Status::from_u8(status_byte)
            .ok_or_else(|| WireError::Malformed(format!("unknown status {status_byte}")))?;
        if status == Status::Ok {
            let live = c.u64()?;
            let n = c.u32()? as usize;
            if n != c.remaining() / 4 || c.remaining() % 4 != 0 {
                return Err(WireError::Malformed(format!(
                    "ack declares {n} ids, payload has {} bytes",
                    c.remaining()
                )));
            }
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(c.u32()?);
            }
            Ok(MutateResponse::ok(id, ids, live))
        } else {
            let len = c.u32()? as usize;
            if len != c.remaining() {
                return Err(WireError::Malformed(format!(
                    "message declares {len} bytes, payload has {}",
                    c.remaining()
                )));
            }
            let message = String::from_utf8_lossy(c.rest()).into_owned();
            Ok(MutateResponse::rejection(id, status, message))
        }
    }
}

/// The exposition format a [`StatsRequest`] asks for.  Discriminants are
/// wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum StatsFormat {
    /// One JSON object (machine consumption, `gkm stats --json`).
    Json = 0,
    /// Prometheus text exposition format 0.0.4.
    Prometheus = 1,
    /// Aligned human-readable table (`gkm stats`).
    Human = 2,
}

impl StatsFormat {
    /// Decodes a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => StatsFormat::Json,
            1 => StatsFormat::Prometheus,
            2 => StatsFormat::Human,
            _ => return None,
        })
    }
}

/// Asks the server to render its metrics registry and slow-query log.
///
/// Payload layout: a single format byte ([`StatsFormat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsRequest {
    /// The exposition format to render.
    pub format: StatsFormat,
}

impl StatsRequest {
    /// Encodes the request payload (one byte).
    pub fn encode(&self) -> Vec<u8> {
        vec![self.format as u8]
    }

    /// Decodes a stats-request payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        if payload.len() != 1 {
            return Err(WireError::Malformed(format!(
                "stats request must be exactly one format byte, got {}",
                payload.len()
            )));
        }
        let format = StatsFormat::from_u8(payload[0])
            .ok_or_else(|| WireError::Malformed(format!("unknown stats format {}", payload[0])))?;
        Ok(StatsRequest { format })
    }
}

/// The rendered metrics snapshot answering a [`StatsRequest`].
///
/// Payload layout: the exposition text as raw UTF-8 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsResponse {
    /// Rendered exposition text in the requested format.
    pub text: String,
}

impl StatsResponse {
    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        self.text.as_bytes().to_vec()
    }

    /// Decodes a stats-response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let text = String::from_utf8(payload.to_vec())
            .map_err(|_| WireError::Malformed("stats text is not valid UTF-8".into()))?;
        Ok(StatsResponse { text })
    }
}

/// A [`SearchRequest`] carrying a client-minted trace id.
///
/// Payload layout: `trace_id u64` followed by the standard search-request
/// encoding — an untraced request is literally the traced one minus its
/// first eight bytes, so both paths share one decoder.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedSearchRequest {
    /// Non-zero client-minted trace id (0 is reserved for "untraced").
    pub trace_id: u64,
    /// The search itself.
    pub req: SearchRequest,
}

impl TracedSearchRequest {
    /// Encodes the traced-request payload.
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.req.encode();
        let mut out = Vec::with_capacity(8 + inner.len());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&inner);
        out
    }

    /// Decodes a traced-request payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let trace_id = c.u64()?;
        if trace_id == 0 {
            return Err(WireError::Malformed(
                "traced search carries trace id 0 (reserved for untraced)".into(),
            ));
        }
        let req = SearchRequest::decode(c.rest())?;
        Ok(TracedSearchRequest { trace_id, req })
    }
}

/// A [`SearchResponse`] carrying the trace id and stage timings back.
///
/// Payload layout: `trace_id u64 | queue_wait u64 | route u64 | scan u64 |
/// rerank u64 | total u64` followed by the standard response encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedSearchResponse {
    /// Trace id copied from the request.
    pub trace_id: u64,
    /// Where the time went, as measured server-side.
    pub timings: obs::trace::StageTimings,
    /// The response itself.
    pub resp: SearchResponse,
}

impl TracedSearchResponse {
    /// Encodes the traced-response payload.
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.resp.encode();
        let mut out = Vec::with_capacity(48 + inner.len());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.timings.queue_wait_nanos.to_le_bytes());
        out.extend_from_slice(&self.timings.route_nanos.to_le_bytes());
        out.extend_from_slice(&self.timings.scan_nanos.to_le_bytes());
        out.extend_from_slice(&self.timings.rerank_nanos.to_le_bytes());
        out.extend_from_slice(&self.timings.total_nanos.to_le_bytes());
        out.extend_from_slice(&inner);
        out
    }

    /// Decodes a traced-response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(payload);
        let trace_id = c.u64()?;
        let timings = obs::trace::StageTimings {
            queue_wait_nanos: c.u64()?,
            route_nanos: c.u64()?,
            scan_nanos: c.u64()?,
            rerank_nanos: c.u64()?,
            total_nanos: c.u64()?,
        };
        let resp = SearchResponse::decode(c.rest())?;
        Ok(TracedSearchResponse {
            trace_id,
            timings,
            resp,
        })
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.remaining() < N {
            return Err(WireError::Malformed(format!(
                "payload truncated at offset {} (need {N} more bytes)",
                self.pos
            )));
        }
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

/// Convenience: frames a [`SearchRequest`].
pub fn write_search(w: &mut impl Write, req: &SearchRequest) -> io::Result<()> {
    write_frame(w, FrameKind::Search, &req.encode())
}

/// Convenience: frames a [`SearchResponse`].
pub fn write_response(w: &mut impl Write, resp: &SearchResponse) -> io::Result<()> {
    write_frame(w, FrameKind::Response, &resp.encode())
}

/// Convenience: frames a [`MutationRequest`] under its operation's kind.
pub fn write_mutation(w: &mut impl Write, req: &MutationRequest) -> io::Result<()> {
    write_frame(w, req.kind(), &req.encode())
}

/// Convenience: frames a [`MutateResponse`].
pub fn write_mutate_ack(w: &mut impl Write, ack: &MutateResponse) -> io::Result<()> {
    write_frame(w, FrameKind::MutateAck, &ack.encode())
}

/// Convenience: frames a [`StatsRequest`].
pub fn write_stats_request(w: &mut impl Write, req: &StatsRequest) -> io::Result<()> {
    write_frame(w, FrameKind::Stats, &req.encode())
}

/// Convenience: frames a [`StatsResponse`].
pub fn write_stats_text(w: &mut impl Write, resp: &StatsResponse) -> io::Result<()> {
    write_frame(w, FrameKind::StatsText, &resp.encode())
}

/// Convenience: frames a [`TracedSearchRequest`].
pub fn write_traced_search(w: &mut impl Write, req: &TracedSearchRequest) -> io::Result<()> {
    write_frame(w, FrameKind::TracedSearch, &req.encode())
}

/// Convenience: frames a [`TracedSearchResponse`].
pub fn write_traced_response(w: &mut impl Write, resp: &TracedSearchResponse) -> io::Result<()> {
    write_frame(w, FrameKind::TracedResponse, &resp.encode())
}

/// Computes the canonical frame checksum for externally-assembled frames
/// (test helpers, fuzzers).
pub fn frame_crc(header12: &[u8; 12], payload: &[u8]) -> u32 {
    crc32c_append(crc32c_append(!0u32, header12), payload) ^ !0u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SearchRequest {
        SearchRequest {
            id: 0xDEAD_BEEF_1234,
            deadline_ms: 250,
            r: 10,
            nprobe: 8,
            dim: 4,
            queries: vec![0.0, 1.0, -2.5, 3.25, 4.0, 5.0, 6.0, 7.0],
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let decoded = SearchRequest::decode(&req.encode()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(decoded.count(), 2);
    }

    #[test]
    fn response_round_trips() {
        let resp = SearchResponse::ok(
            7,
            vec![vec![Neighbor::new(3, 0.5), Neighbor::new(9, 1.25)], vec![]],
        );
        assert_eq!(SearchResponse::decode(&resp.encode()).unwrap(), resp);

        let rej = SearchResponse::rejection(9, Status::Overloaded, "queue full");
        assert_eq!(SearchResponse::decode(&rej.encode()).unwrap(), rej);
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_search(&mut buf, &sample_request()).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.kind, FrameKind::Search);
        assert_eq!(
            SearchRequest::decode(&frame.payload).unwrap(),
            sample_request()
        );
    }

    #[test]
    fn clean_eof_is_none_torn_frame_is_truncated() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }, 1024).unwrap().is_none());

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping, &[]).unwrap();
        for cut in 1..buf.len() {
            let torn = &buf[..cut];
            match read_frame(&mut { torn }, 1024) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut clean = Vec::new();
        write_search(&mut clean, &sample_request()).unwrap();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut evil = clean.clone();
                evil[byte] ^= 1 << bit;
                let got = read_frame(&mut evil.as_slice(), DEFAULT_MAX_PAYLOAD);
                assert!(
                    got.is_err(),
                    "flip at byte {byte} bit {bit} went undetected: {got:?}"
                );
            }
        }
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6] = FrameKind::Search as u8;
        header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut h12 = [0u8; 12];
        h12.copy_from_slice(&header[..12]);
        header[12..16].copy_from_slice(&frame_crc(&h12, &[]).to_le_bytes());
        match read_frame(&mut header.as_slice(), DEFAULT_MAX_PAYLOAD) {
            Err(WireError::Oversized { declared, limit }) => {
                assert_eq!(declared, u32::MAX);
                assert_eq!(limit, DEFAULT_MAX_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_bad_version_and_bad_kind() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping, &[]).unwrap();

        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice(), 1024),
            Err(WireError::BadMagic(_))
        ));

        // Version and kind live under the checksum, so craft valid frames.
        let mut vheader = [0u8; HEADER_LEN];
        vheader[..4].copy_from_slice(&MAGIC);
        vheader[4..6].copy_from_slice(&99u16.to_le_bytes());
        vheader[6] = FrameKind::Ping as u8;
        let mut h12 = [0u8; 12];
        h12.copy_from_slice(&vheader[..12]);
        vheader[12..16].copy_from_slice(&frame_crc(&h12, &[]).to_le_bytes());
        assert!(matches!(
            read_frame(&mut vheader.as_slice(), 1024),
            Err(WireError::UnsupportedVersion(99))
        ));

        let mut kheader = [0u8; HEADER_LEN];
        kheader[..4].copy_from_slice(&MAGIC);
        kheader[4..6].copy_from_slice(&VERSION.to_le_bytes());
        kheader[6] = 200;
        h12.copy_from_slice(&kheader[..12]);
        kheader[12..16].copy_from_slice(&frame_crc(&h12, &[]).to_le_bytes());
        assert!(matches!(
            read_frame(&mut kheader.as_slice(), 1024),
            Err(WireError::UnknownKind(200))
        ));
    }

    #[test]
    fn malformed_requests_are_typed() {
        // Zero queries.
        let mut req = sample_request();
        req.queries.clear();
        let mut payload = req.encode();
        assert!(matches!(
            SearchRequest::decode(&payload),
            Err(WireError::Malformed(_))
        ));

        // Count over the per-request cap.
        req = sample_request();
        payload = req.encode();
        payload[20..24].copy_from_slice(&(MAX_QUERIES_PER_REQUEST + 1).to_le_bytes());
        assert!(matches!(
            SearchRequest::decode(&payload),
            Err(WireError::Malformed(_))
        ));

        // Declared count disagrees with the buffer.
        payload = sample_request().encode();
        payload[20..24].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            SearchRequest::decode(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn mutation_requests_round_trip_under_their_kinds() {
        let cases = vec![
            MutationRequest {
                id: 11,
                op: WireMutation::Insert {
                    dim: 3,
                    vectors: vec![1.0, 2.0, 3.0, -4.0, 5.5, 6.0],
                },
            },
            MutationRequest {
                id: 12,
                op: WireMutation::Delete {
                    ids: vec![3, 9, 100],
                },
            },
            MutationRequest {
                id: 13,
                op: WireMutation::Compact,
            },
        ];
        for req in &cases {
            let mut buf = Vec::new();
            write_mutation(&mut buf, req).unwrap();
            let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(frame.kind, req.kind());
            assert_eq!(
                &MutationRequest::decode(frame.kind, &frame.payload).unwrap(),
                req
            );
        }
    }

    #[test]
    fn malformed_mutations_are_typed() {
        // Zero vectors / zero dim.
        let empty = MutationRequest {
            id: 1,
            op: WireMutation::Insert {
                dim: 2,
                vectors: vec![],
            },
        };
        assert!(matches!(
            MutationRequest::decode(FrameKind::Insert, &empty.encode()),
            Err(WireError::Malformed(_))
        ));
        // Over-cap insert.
        let mut payload = MutationRequest {
            id: 1,
            op: WireMutation::Insert {
                dim: 1,
                vectors: vec![0.0],
            },
        }
        .encode();
        payload[12..16].copy_from_slice(&(MAX_VECTORS_PER_INSERT + 1).to_le_bytes());
        assert!(matches!(
            MutationRequest::decode(FrameKind::Insert, &payload),
            Err(WireError::Malformed(_))
        ));
        // Zero and over-cap deletes.
        let del = MutationRequest {
            id: 2,
            op: WireMutation::Delete { ids: vec![] },
        };
        assert!(matches!(
            MutationRequest::decode(FrameKind::Delete, &del.encode()),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage after a compact.
        let mut compact = MutationRequest {
            id: 3,
            op: WireMutation::Compact,
        }
        .encode();
        compact.push(0);
        assert!(matches!(
            MutationRequest::decode(FrameKind::Compact, &compact),
            Err(WireError::Malformed(_))
        ));
        // A non-mutation kind is refused outright.
        assert!(matches!(
            MutationRequest::decode(FrameKind::Ping, &compact),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn mutate_ack_round_trips() {
        let ok = MutateResponse::ok(5, vec![100, 101], 42);
        assert_eq!(MutateResponse::decode(&ok.encode()).unwrap(), ok);
        let rej = MutateResponse::rejection(6, Status::Overloaded, "queue full");
        assert_eq!(MutateResponse::decode(&rej.encode()).unwrap(), rej);
        // Framed form.
        let mut buf = Vec::new();
        write_mutate_ack(&mut buf, &ok).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.kind, FrameKind::MutateAck);
        assert_eq!(MutateResponse::decode(&frame.payload).unwrap(), ok);
        // Truncated id list is typed.
        let mut evil = ok.encode();
        evil.truncate(evil.len() - 2);
        assert!(MutateResponse::decode(&evil).is_err());
    }

    #[test]
    fn stats_request_round_trips_and_rejects_garbage() {
        for format in [
            StatsFormat::Json,
            StatsFormat::Prometheus,
            StatsFormat::Human,
        ] {
            let req = StatsRequest { format };
            let mut buf = Vec::new();
            write_stats_request(&mut buf, &req).unwrap();
            let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
                .unwrap()
                .unwrap();
            assert_eq!(frame.kind, FrameKind::Stats);
            assert_eq!(StatsRequest::decode(&frame.payload).unwrap(), req);
        }
        // Unknown format byte and wrong payload sizes are typed.
        assert!(matches!(
            StatsRequest::decode(&[9]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            StatsRequest::decode(&[]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            StatsRequest::decode(&[0, 0]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn stats_response_round_trips_and_rejects_bad_utf8() {
        let resp = StatsResponse {
            text: "serve_requests_total 42\n".into(),
        };
        let mut buf = Vec::new();
        write_stats_text(&mut buf, &resp).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.kind, FrameKind::StatsText);
        assert_eq!(StatsResponse::decode(&frame.payload).unwrap(), resp);
        assert!(matches!(
            StatsResponse::decode(&[0xff, 0xfe, 0x80]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn traced_search_round_trips_and_rejects_zero_trace_id() {
        let traced = TracedSearchRequest {
            trace_id: 0xABCD_EF01_2345_6789,
            req: sample_request(),
        };
        let mut buf = Vec::new();
        write_traced_search(&mut buf, &traced).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.kind, FrameKind::TracedSearch);
        assert_eq!(TracedSearchRequest::decode(&frame.payload).unwrap(), traced);

        // The traced payload is trace_id ‖ the plain encoding.
        assert_eq!(&traced.encode()[8..], &sample_request().encode()[..]);

        let zero = TracedSearchRequest {
            trace_id: 0,
            req: sample_request(),
        };
        assert!(matches!(
            TracedSearchRequest::decode(&zero.encode()),
            Err(WireError::Malformed(_))
        ));
        // A malformed inner request is still typed.
        let mut evil = traced.encode();
        evil.truncate(20);
        assert!(TracedSearchRequest::decode(&evil).is_err());
    }

    #[test]
    fn traced_response_round_trips_with_timings() {
        let traced = TracedSearchResponse {
            trace_id: 77,
            timings: obs::trace::StageTimings {
                queue_wait_nanos: 1_000,
                route_nanos: 2_000,
                scan_nanos: 3_000,
                rerank_nanos: 4_000,
                total_nanos: 11_000,
            },
            resp: SearchResponse::ok(77, vec![vec![Neighbor::new(1, 0.25)]]),
        };
        let mut buf = Vec::new();
        write_traced_response(&mut buf, &traced).unwrap();
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(frame.kind, FrameKind::TracedResponse);
        let decoded = TracedSearchResponse::decode(&frame.payload).unwrap();
        assert_eq!(decoded, traced);
        assert_eq!(decoded.timings.stage_sum(), 10_000);

        // Rejections travel traced too (deadline misses keep their timing).
        let rej = TracedSearchResponse {
            trace_id: 78,
            timings: obs::trace::StageTimings::default(),
            resp: SearchResponse::rejection(78, Status::DeadlineExceeded, "late"),
        };
        assert_eq!(TracedSearchResponse::decode(&rej.encode()).unwrap(), rej);
        // Truncated timing block is typed.
        assert!(TracedSearchResponse::decode(&traced.encode()[..30]).is_err());
    }

    #[test]
    fn status_names_round_trip() {
        for s in [
            Status::Ok,
            Status::DeadlineExceeded,
            Status::Overloaded,
            Status::Internal,
            Status::BadRequest,
            Status::ShuttingDown,
        ] {
            assert_eq!(Status::from_u8(s as u8), Some(s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(Status::from_u8(77), None);
    }
}
