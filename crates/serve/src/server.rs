//! The TCP serving front-end: accept loop, per-connection framing, timeout
//! enforcement, and the graceful drain state machine.
//!
//! # Threading model
//!
//! One accept thread polls a non-blocking listener so it can also watch the
//! shutdown flag.  Each accepted connection gets a *reader* thread (frame
//! parsing, admission) and a *writer* thread (response serialisation) joined
//! by an mpsc channel — responses for pipelined requests are written in
//! completion order without the reader blocking on the socket.  All search
//! execution happens on the shared [`Batcher`] thread, so a thousand idle
//! connections cost file descriptors and parked threads, not CPU.
//!
//! # Timeouts and hostile clients
//!
//! The reader applies a short socket read timeout as its poll tick and
//! tracks two idle budgets: `idle_timeout` between frames (a connected but
//! silent client) and `frame_timeout` *inside* a frame (a slow-loris client
//! dribbling one byte per second).  Exceeding either closes the connection.
//! Frame payloads are bounded by `max_frame_bytes` before allocation and
//! every frame is checksummed, so hostile lengths and torn writes surface as
//! typed protocol errors (answered with `BAD_REQUEST` when the peer is still
//! readable) instead of memory exhaustion or garbage queries.
//!
//! # Drain state machine
//!
//! ```text
//!   SERVING ──(signal | Shutdown frame | Server::shutdown)──► DRAINING
//!     │ accept + admit                       │ stop accepting, admission
//!     ▼                                      │ answers SHUTTING_DOWN,
//!   readers parse frames                     │ batcher drains its queue,
//!                                            ▼ writers flush, threads join
//!                                         STOPPED
//! ```
//!
//! Every request admitted before the drain began still receives its real
//! response; requests arriving during the drain receive `SHUTTING_DOWN`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use obs::{CounterHandle, GaugeHandle, HistogramHandle, ObsHandle, StageTimings};

use crate::batcher::{
    Admission, Batcher, BatcherConfig, BatcherStats, MutableBackend, MutationAdmission, Reply,
    SearchBackend,
};
use crate::protocol::{
    read_frame, write_frame, write_mutate_ack, write_response, write_stats_text,
    write_traced_response, FrameKind, MutateResponse, MutationRequest, SearchRequest,
    SearchResponse, StatsFormat, StatsRequest, StatsResponse, Status, TracedSearchRequest,
    TracedSearchResponse, DEFAULT_MAX_PAYLOAD,
};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Batcher knobs (deadline, admission bounds).
    pub batcher: BatcherConfig,
    /// Connections beyond this are answered `OVERLOADED` and closed.
    pub max_connections: usize,
    /// Idle budget between frames before the connection is closed.
    pub idle_timeout: Duration,
    /// Budget for finishing a started frame (slow-loris bound).
    pub frame_timeout: Duration,
    /// Frame payload cap enforced before allocation.
    pub max_frame_bytes: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            batcher: BatcherConfig::default(),
            max_connections: 256,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Why the server stopped — the classified exit condition for the CLI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `Shutdown` control frame asked for a drain.
    CtlFrame,
    /// [`Server::shutdown`] (or the CLI's signal handler) asked for a drain.
    Requested,
}

/// Counters exported by [`Server::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_refused: u64,
    /// Currently open connections.
    pub connections_open: usize,
    /// Frames that failed to parse (bad magic, checksum, truncation…).
    pub protocol_errors: u64,
    /// Batcher-side counters.
    pub batcher: BatcherStats,
}

/// The server's own instruments, registered alongside the batcher's on the
/// same [`ObsHandle`].  Every handle compiles to a no-op when the server was
/// started without observability, so the accept and reader loops pay one
/// predictable branch per event.
struct ServerMetrics {
    /// Frames successfully parsed across all connections.
    frames: CounterHandle,
    /// Lifetime accepted connections (mirrors `ServerStats`).
    accepted: CounterHandle,
    /// Connections refused at the `max_connections` cap.
    refused: CounterHandle,
    /// Frames that failed to parse or decode.
    protocol_errors: CounterHandle,
    /// Currently open connections.
    open: GaugeHandle,
    /// Frames handled per connection, recorded when the reader exits.
    frames_per_conn: HistogramHandle,
}

impl ServerMetrics {
    fn register(handle: &ObsHandle) -> Self {
        ServerMetrics {
            frames: handle.counter(
                "server_frames_total",
                "Frames parsed across all connections",
            ),
            accepted: handle.counter(
                "server_connections_accepted_total",
                "Connections accepted over the server's lifetime",
            ),
            refused: handle.counter(
                "server_connections_refused_total",
                "Connections refused at the connection cap",
            ),
            protocol_errors: handle.counter(
                "server_protocol_errors_total",
                "Frames that failed to parse or decode",
            ),
            open: handle.gauge("server_connections_open", "Currently open connections"),
            frames_per_conn: handle.histogram(
                "server_frames_per_connection",
                "Frames handled per connection at reader exit",
            ),
        }
    }
}

struct ServerShared {
    shutdown: AtomicBool,
    stop_reason: AtomicU64, // 0 = running, 1 = ctl frame, 2 = requested
    open: AtomicUsize,
    accepted: AtomicU64,
    refused: AtomicU64,
    protocol_errors: AtomicU64,
    config: ServerConfig,
    metrics: ServerMetrics,
}

impl ServerShared {
    fn request_stop(&self, reason: StopReason) {
        let code = match reason {
            StopReason::CtlFrame => 1,
            StopReason::Requested => 2,
        };
        let _ = self
            .stop_reason
            .compare_exchange(0, code, Ordering::SeqCst, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Counts a malformed frame in both the legacy atomic (for
    /// [`ServerStats`]) and the obs registry (for exposition).
    fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        self.metrics.protocol_errors.inc();
    }
}

/// A running server.  Dropping it triggers a drain and joins every thread.
pub struct Server {
    shared: Arc<ServerShared>,
    batcher: Arc<Batcher>,
    local_addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts serving `backend` (search-only:
    /// mutation frames are answered `BAD_REQUEST`).  Observability is off:
    /// `Stats` frames are answered `BAD_REQUEST` and no latency is recorded.
    pub fn start(backend: Arc<dyn SearchBackend>, config: ServerConfig) -> io::Result<Server> {
        Self::start_obs(backend, config, &ObsHandle::disabled())
    }

    /// Binds `config.addr` and starts serving a mutable `backend`: search,
    /// insert, delete and compact frames are all accepted.  Observability is
    /// off, as in [`Server::start`].
    pub fn start_mutable(
        backend: Arc<dyn MutableBackend>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::start_mutable_obs(backend, config, &ObsHandle::disabled())
    }

    /// [`Server::start`] with the server's and batcher's instruments
    /// registered on `obs`: connection/frame counters, per-stage latency
    /// histograms, the slow-query ring, and `Stats` frame exposition all
    /// become live.
    pub fn start_obs(
        backend: Arc<dyn SearchBackend>,
        config: ServerConfig,
        obs: &ObsHandle,
    ) -> io::Result<Server> {
        let batcher = Batcher::start_obs(backend, config.batcher, obs);
        Self::start_with(batcher, config, obs)
    }

    /// [`Server::start_mutable`] with instruments registered on `obs`.
    pub fn start_mutable_obs(
        backend: Arc<dyn MutableBackend>,
        config: ServerConfig,
        obs: &ObsHandle,
    ) -> io::Result<Server> {
        let batcher = Batcher::start_mutable_obs(backend, config.batcher, obs);
        Self::start_with(batcher, config, obs)
    }

    fn start_with(batcher: Batcher, config: ServerConfig, obs: &ObsHandle) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let batcher = Arc::new(batcher);
        let shared = Arc::new(ServerShared {
            shutdown: AtomicBool::new(false),
            stop_reason: AtomicU64::new(0),
            open: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            config,
            metrics: ServerMetrics::register(obs),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_batcher = Arc::clone(&batcher);
        let accept_thread = thread::Builder::new()
            .name("gkm-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_batcher))?;
        Ok(Server {
            shared,
            batcher,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves the ephemeral port of `…:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests a graceful drain: stop accepting, answer queued work, join.
    /// Returns after the drain completes.  Idempotent.
    pub fn shutdown(&mut self) -> StopReason {
        self.shared.request_stop(StopReason::Requested);
        self.join()
    }

    /// Waits for the server to stop (a signal, a `Shutdown` frame, or a
    /// concurrent [`Server::shutdown`]) and returns why.
    pub fn join(&mut self) -> StopReason {
        if let Some(t) = self.accept_thread.take() {
            if t.join().is_err() {
                // The accept loop contains connection panics; reaching here
                // means a bug in the loop itself, which must stay loud.
                panic!("the accept thread panicked");
            }
        }
        match self.shared.stop_reason.load(Ordering::SeqCst) {
            1 => StopReason::CtlFrame,
            _ => StopReason::Requested,
        }
    }

    /// Signals a drain without waiting (e.g. from a signal handler thread).
    pub fn request_shutdown(&self) {
        self.shared.request_stop(StopReason::Requested);
    }

    /// True once the accept loop has exited (the drain has completed).  Lets
    /// a serve loop poll for a `Shutdown`-frame-initiated stop while also
    /// watching its own signal latch, without blocking in [`Server::join`].
    pub fn is_finished(&self) -> bool {
        match self.accept_thread.as_ref() {
            Some(t) => t.is_finished(),
            None => true,
        }
    }

    /// The observability handle the server (and its batcher) registered
    /// their instruments on.  Disabled unless the server was started through
    /// [`Server::start_obs`] / [`Server::start_mutable_obs`].
    pub fn obs(&self) -> &ObsHandle {
        self.batcher.obs()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.shared.accepted.load(Ordering::Relaxed),
            connections_refused: self.shared.refused.load(Ordering::Relaxed),
            connections_open: self.shared.open.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            batcher: self.batcher.stats(),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_stop(StopReason::Requested);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Accept-loop poll tick: how often the shutdown flag is checked.
const ACCEPT_TICK: Duration = Duration::from_millis(10);
/// Reader poll tick: socket read timeout used to interleave idle accounting
/// and shutdown checks with blocking reads.
const READ_TICK: Duration = Duration::from_millis(50);

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>, batcher: Arc<Batcher>) {
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Response frames must not sit in Nagle's buffer waiting for
                // an ACK; latency is the product here.
                let _ = stream.set_nodelay(true);
                workers.retain(|t| !t.is_finished());
                if shared.open.load(Ordering::SeqCst) >= shared.config.max_connections {
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.refused.inc();
                    refuse_connection(stream);
                    continue;
                }
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                shared.metrics.accepted.inc();
                shared.open.fetch_add(1, Ordering::SeqCst);
                shared.metrics.open.add(1);
                let conn_shared = Arc::clone(&shared);
                let conn_batcher = Arc::clone(&batcher);
                let spawned = thread::Builder::new()
                    .name("gkm-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared, &conn_batcher);
                        conn_shared.open.fetch_sub(1, Ordering::SeqCst);
                        conn_shared.metrics.open.add(-1);
                    });
                match spawned {
                    Ok(t) => workers.push(t),
                    Err(_) => {
                        // Spawn failure (fd/thread exhaustion): undo the
                        // count; the stream drops closed.
                        shared.open.fetch_sub(1, Ordering::SeqCst);
                        shared.metrics.open.add(-1);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => thread::sleep(ACCEPT_TICK),
        }
    }
    // Drain: connection readers observe the flag within one READ_TICK and
    // finish their in-flight requests before exiting.
    for t in workers {
        let _ = t.join();
    }
}

/// Over the connection cap: answer `OVERLOADED` (id 0 — no request was
/// read) and close.
fn refuse_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let resp = SearchResponse::rejection(0, Status::Overloaded, "connection limit reached");
    let _ = write_response(&mut stream, &resp);
}

/// Runs one connection: reader here, writer on a helper thread.
fn handle_connection(stream: TcpStream, shared: &ServerShared, batcher: &Batcher) {
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (out_tx, out_rx) = mpsc::channel::<Reply>();
    let writer = thread::Builder::new()
        .name("gkm-conn-w".into())
        .spawn(move || writer_loop(writer_stream, &out_rx));
    let writer = match writer {
        Ok(t) => t,
        Err(_) => return,
    };

    let frames_handled = reader_loop(&stream, shared, batcher, &out_tx);
    shared.metrics.frames_per_conn.record(frames_handled);

    // Closing the channel stops the writer once every queued response (each
    // admitted request holds a sender clone until answered) has flushed.
    drop(out_tx);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Correlation id reserved for control traffic (ping/pong, shutdown ack).
/// [`handle_frame`] rejects search requests using it, so the writer can
/// distinguish control replies on the shared response channel.
const CTL_ID: u64 = u64::MAX;

fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<Reply>) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    while let Ok(reply) = rx.recv() {
        let ok = match reply {
            // Control replies ride the same channel as real responses so
            // they serialise in order behind earlier results.
            Reply::Search(resp) if resp.id == CTL_ID => {
                let kind = if resp.status == Status::ShuttingDown {
                    FrameKind::ShutdownAck
                } else {
                    FrameKind::Pong
                };
                write_frame(&mut stream, kind, &[]).is_ok()
            }
            Reply::Search(resp) => write_response(&mut stream, &resp).is_ok(),
            Reply::Traced(resp) => write_traced_response(&mut stream, &resp).is_ok(),
            Reply::Mutate(ack) => write_mutate_ack(&mut stream, &ack).is_ok(),
            Reply::Stats(resp) => write_stats_text(&mut stream, &resp).is_ok(),
        };
        if !ok {
            // Peer gone: keep draining the channel so batcher sends never
            // block, but stop touching the socket.
            while rx.recv().is_ok() {}
            return;
        }
    }
}

enum ParseState {
    Complete(crate::protocol::Frame, usize),
    Incomplete,
    Error(crate::protocol::WireError),
}

fn try_parse(buf: &[u8], max_payload: u32) -> ParseState {
    use crate::protocol::HEADER_LEN;
    if buf.len() < HEADER_LEN {
        return ParseState::Incomplete;
    }
    // Full header present: read_frame validates magic/version/kind/length
    // before the payload, so run it over a cursor and map "truncated" to
    // "incomplete".
    let mut cursor = buf;
    match read_frame(&mut cursor, max_payload) {
        Ok(Some(frame)) => {
            let consumed = buf.len() - cursor.len();
            ParseState::Complete(frame, consumed)
        }
        Ok(None) => ParseState::Incomplete,
        Err(crate::protocol::WireError::Truncated) => ParseState::Incomplete,
        Err(e) => ParseState::Error(e),
    }
}

/// Returns the number of frames handled, for the per-connection histogram.
fn reader_loop(
    stream: &TcpStream,
    shared: &ServerShared,
    batcher: &Batcher,
    out_tx: &mpsc::Sender<Reply>,
) -> u64 {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let cfg = &shared.config;
    let mut carry: Vec<u8> = Vec::new();
    let mut last_progress = Instant::now();
    let mut frames_handled: u64 = 0;
    loop {
        // Parse every complete frame already buffered.
        loop {
            match try_parse(&carry, cfg.max_frame_bytes) {
                ParseState::Complete(frame, consumed) => {
                    carry.drain(..consumed);
                    frames_handled += 1;
                    shared.metrics.frames.inc();
                    if !handle_frame(frame, shared, batcher, out_tx) {
                        return frames_handled;
                    }
                }
                ParseState::Incomplete => break,
                ParseState::Error(e) => {
                    shared.note_protocol_error();
                    if !e.is_disconnect() {
                        let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                            0,
                            Status::BadRequest,
                            e.to_string(),
                        )));
                    }
                    return frames_handled;
                }
            }
        }
        // Refill from the socket under the two idle budgets.
        let mut chunk = [0u8; 4096];
        match io::Read::read(&mut { stream }, &mut chunk) {
            Ok(0) => {
                if !carry.is_empty() {
                    shared.note_protocol_error();
                }
                // clean EOF (or torn frame — either way the peer left)
                return frames_handled;
            }
            Ok(n) => {
                carry.extend_from_slice(&chunk[..n]);
                last_progress = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) && carry.is_empty() {
                    return frames_handled; // drain: no partial frame in progress
                }
                let now = Instant::now();
                if carry.is_empty() {
                    if now - last_progress > cfg.idle_timeout {
                        return frames_handled;
                    }
                } else if now - last_progress > cfg.frame_timeout {
                    shared.note_protocol_error();
                    let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                        0,
                        Status::BadRequest,
                        "frame not completed within the slow-client budget",
                    )));
                    return frames_handled;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return frames_handled,
        }
    }
}

/// Processes one parsed frame.  Returns false when the connection should
/// close (shutdown handshake).
fn handle_frame(
    frame: crate::protocol::Frame,
    shared: &ServerShared,
    batcher: &Batcher,
    out_tx: &mpsc::Sender<Reply>,
) -> bool {
    match frame.kind {
        FrameKind::Ping => {
            let _ = out_tx.send(Reply::Search(SearchResponse::ok(CTL_ID, Vec::new())));
            true
        }
        FrameKind::Shutdown => {
            shared.request_stop(StopReason::CtlFrame);
            let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                CTL_ID,
                Status::ShuttingDown,
                String::new(),
            )));
            false
        }
        FrameKind::Search => {
            let req = match SearchRequest::decode(&frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    shared.note_protocol_error();
                    let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                        0,
                        Status::BadRequest,
                        e.to_string(),
                    )));
                    return true;
                }
            };
            admit_search(req, 0, batcher, out_tx);
            true
        }
        FrameKind::TracedSearch => {
            let req = match TracedSearchRequest::decode(&frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    shared.note_protocol_error();
                    let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                        0,
                        Status::BadRequest,
                        e.to_string(),
                    )));
                    return true;
                }
            };
            admit_search(req.req, req.trace_id, batcher, out_tx);
            true
        }
        FrameKind::Stats => {
            let req = match StatsRequest::decode(&frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    shared.note_protocol_error();
                    let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                        0,
                        Status::BadRequest,
                        e.to_string(),
                    )));
                    return true;
                }
            };
            match render_stats(req.format, batcher) {
                Some(text) => {
                    let _ = out_tx.send(Reply::Stats(StatsResponse { text }));
                }
                None => {
                    let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                        0,
                        Status::BadRequest,
                        "this server was started without observability",
                    )));
                }
            }
            true
        }
        FrameKind::Insert | FrameKind::Delete | FrameKind::Compact => {
            let req = match MutationRequest::decode(frame.kind, &frame.payload) {
                Ok(req) => req,
                Err(e) => {
                    shared.note_protocol_error();
                    let _ = out_tx.send(Reply::Mutate(MutateResponse::rejection(
                        0,
                        Status::BadRequest,
                        e.to_string(),
                    )));
                    return true;
                }
            };
            if req.id == CTL_ID {
                let _ = out_tx.send(Reply::Mutate(MutateResponse::rejection(
                    0,
                    Status::BadRequest,
                    "request id u64::MAX is reserved for control frames",
                )));
                return true;
            }
            let id = req.id;
            let admission = batcher.submit_mutation(id, req.op, out_tx.clone());
            if let MutationAdmission::Rejected(resp) = admission {
                let _ = out_tx.send(Reply::Mutate(resp));
            }
            true
        }
        // A client sending server-only kinds is confused; answer and keep
        // the connection (harmless).
        FrameKind::Response
        | FrameKind::Pong
        | FrameKind::ShutdownAck
        | FrameKind::MutateAck
        | FrameKind::StatsText
        | FrameKind::TracedResponse => {
            shared.note_protocol_error();
            let _ = out_tx.send(Reply::Search(SearchResponse::rejection(
                0,
                Status::BadRequest,
                format!("unexpected client frame kind {:?}", frame.kind),
            )));
            true
        }
    }
}

/// Admits one search (traced when `trace_id != 0`) into the batcher,
/// forwarding any synchronous rejection on the reply channel in the shape
/// the client expects: plain responses for plain searches, traced responses
/// (with zeroed stage timings) for traced ones, so the caller can always
/// correlate by trace id.
fn admit_search(
    req: SearchRequest,
    trace_id: u64,
    batcher: &Batcher,
    out_tx: &mpsc::Sender<Reply>,
) {
    let reject = |resp: SearchResponse| {
        if trace_id != 0 {
            Reply::Traced(TracedSearchResponse {
                trace_id,
                timings: StageTimings::default(),
                resp,
            })
        } else {
            Reply::Search(resp)
        }
    };
    if req.id == CTL_ID {
        let _ = out_tx.send(reject(SearchResponse::rejection(
            0,
            Status::BadRequest,
            "request id u64::MAX is reserved for control frames",
        )));
        return;
    }
    let deadline = if req.deadline_ms == 0 {
        None
    } else {
        Some(Instant::now() + Duration::from_millis(u64::from(req.deadline_ms)))
    };
    let id = req.id;
    let admission = batcher.submit_traced(
        id,
        trace_id,
        req.queries,
        req.dim as usize,
        req.r as usize,
        req.nprobe as usize,
        deadline,
        out_tx.clone(),
    );
    if let Admission::Rejected(resp) = admission {
        let _ = out_tx.send(reject(resp));
    }
}

/// Renders the registry (plus the recent slow queries for the structured
/// formats) in the requested exposition format.  `None` when the server was
/// started without observability.
fn render_stats(format: StatsFormat, batcher: &Batcher) -> Option<String> {
    let handle = batcher.obs();
    let snap = handle.snapshot()?;
    let slow = handle
        .obs()
        .map(|o| o.slow_log().recent())
        .unwrap_or_default();
    Some(match format {
        StatsFormat::Prometheus => snap.render_prometheus(),
        StatsFormat::Json => snap.render_json(&slow),
        StatsFormat::Human => snap.render_human(&slow),
    })
}
