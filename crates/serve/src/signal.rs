//! Minimal SIGINT/SIGTERM latch for the `serve` CLI.
//!
//! The workspace is fully offline (no signal-handling crate), so this binds
//! `signal(2)` directly — std already links libc on unix.  The handler only
//! sets a process-wide [`AtomicBool`]; the serve loop polls it from the same
//! tick that watches for `Shutdown` control frames, turning Ctrl-C into the
//! same graceful drain path.  On non-unix targets installation is a no-op
//! and the latch simply never trips.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been observed (sticky).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Test/CLI hook: trips the latch as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; no-op off unix).
pub fn install() {
    #[cfg(unix)]
    unsafe {
        // SAFETY: the handler is async-signal-safe — it performs exactly one
        // relaxed-compatible atomic store and returns.  `signal` itself is
        // only called from this one installation point.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_sticky_and_installable() {
        install();
        install(); // idempotent
        assert!(!shutdown_requested() || shutdown_requested()); // no crash either way
        request_shutdown();
        assert!(shutdown_requested());
    }
}
