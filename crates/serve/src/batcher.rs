//! Dynamic batcher: coalesces in-flight requests into IVF query blocks under
//! a latency deadline, with bounded admission, typed shedding and drain.
//!
//! # Deadline math
//!
//! A request enters the queue stamped with its enqueue time and an optional
//! absolute deadline (`now + deadline_ms` at frame-read time).  The batcher
//! thread flushes the queue when *either*
//!
//! * depth reaches `max_batch` (a full IVF block — no reason to wait), or
//! * `now ≥ flush_at`, where `flush_at = min(oldest.enqueued + max_delay,
//!   min over queued requests of their serve-by point)`.
//!
//! A request's *serve-by point* sits at 75% of its deadline budget: the last
//! quarter is reserved for the backend call, so a deadline that tightens the
//! flush schedule still leaves time to actually serve the request (flushing
//! *at* the deadline would expire the very request the flush was for).  So a
//! queued request waits at most `max_delay` for company, and never past the
//! tightest serve-by point in the queue.  Before assembling a batch the
//! queue is swept for requests whose full deadline has already passed, which
//! are answered `DEADLINE_EXCEEDED` immediately — a request is *never*
//! silently dropped, and never burns backend work after its client has given
//! up.
//!
//! # Shedding state machine
//!
//! Admission is bounded by `queue_cap` queued *queries* (not requests, so a
//! 64-query frame counts 64).  The batcher runs a two-watermark hysteresis:
//!
//! ```text
//!             depth > queue_cap                   depth ≤ resume_depth
//!  ┌────────┐ ──────────────────► ┌──────────────┐ ──────────────────► ┌────────┐
//!  │ OPEN   │                     │   SHEDDING   │                     │ OPEN   │
//!  └────────┘  admit everything   └──────────────┘  shed OVERLOADED    └────────┘
//! ```
//!
//! Without the low watermark an overloaded server oscillates admit/shed per
//! request; with it, shedding persists until the backlog has actually
//! drained to `resume_depth`, giving bursts a clean recovery edge.
//!
//! # Failure containment
//!
//! The backend is called through [`SearchBackend::search_batch`], whose IVF
//! implementation uses [`ivf::IvfIndex::try_batch_search`] — a worker panic
//! is contained by the pool and surfaces as `Err`, which fails *only the
//! requests in that batch* with `INTERNAL`.  A defensive `catch_unwind`
//! around the call turns any direct backend panic into the same typed
//! outcome, so the batcher thread itself never dies.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ivf::{IvfIndex, IvfSearchParams};
use knn_graph::Neighbor;
use vecstore::VectorSet;

use crate::protocol::{SearchResponse, Status};

/// Abstraction over the thing that answers query batches, so the chaos tests
/// can wrap the real index with slow / panicking / failing shims.
pub trait SearchBackend: Send + Sync + 'static {
    /// Dimensionality the backend expects.
    fn dim(&self) -> usize;
    /// Answers every row of `queries` with its `r` nearest neighbours.
    /// Errors must leave the backend serviceable (fail the batch, not the
    /// process).
    fn search_batch(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
    ) -> vecstore::Result<Vec<Vec<Neighbor>>>;
}

/// The production backend: an [`IvfIndex`] searched through the checked
/// (panic-containing) batch API.
pub struct IvfBackend {
    index: IvfIndex,
    threads: Option<usize>,
}

impl IvfBackend {
    /// Wraps `index`; `threads = None` inherits the `GKM_THREADS` default.
    pub fn new(index: IvfIndex, threads: Option<usize>) -> Self {
        IvfBackend { index, threads }
    }

    /// The wrapped index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }
}

impl SearchBackend for IvfBackend {
    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn search_batch(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
    ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
        let mut params = IvfSearchParams::default().nprobe(nprobe.max(1));
        if let Some(t) = self.threads {
            params = params.threads(t);
        }
        self.index.try_batch_search(queries, r, params)
    }
}

/// Batcher tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Queries per backend call (defaults to one IVF block).
    pub max_batch: usize,
    /// Longest a queued request waits for company before the batch flushes.
    pub max_delay: Duration,
    /// Admission bound in queued queries; beyond it requests are shed.
    pub queue_cap: usize,
    /// Low watermark: once shedding starts it persists until the queue
    /// drains to this depth.
    pub resume_depth: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 1024,
            resume_depth: 256,
        }
    }
}

impl BatcherConfig {
    /// Clamps inconsistent knobs into a usable state (resume below cap,
    /// non-zero batch).
    fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(self.max_batch);
        self.resume_depth = self.resume_depth.min(self.queue_cap.saturating_sub(1));
        self
    }
}

/// One admitted request waiting for a batch.
struct Pending {
    id: u64,
    queries: Vec<f32>,
    n: usize,
    dim: usize,
    r: usize,
    nprobe: usize,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// 75% point of the deadline budget — the flush schedule honours this,
    /// reserving the final quarter for the backend call.
    serve_by: Option<Instant>,
    reply: mpsc::Sender<SearchResponse>,
}

/// Monotonic counters exported for the stats endpoint / load generator.
#[derive(Default)]
pub struct BatcherCounters {
    /// Requests admitted into the queue.
    pub accepted: AtomicU64,
    /// Requests shed with `OVERLOADED`.
    pub shed: AtomicU64,
    /// Requests answered `DEADLINE_EXCEEDED`.
    pub deadline_expired: AtomicU64,
    /// Requests answered `INTERNAL`.
    pub internal_errors: AtomicU64,
    /// Backend batches executed.
    pub batches: AtomicU64,
    /// Requests answered `OK`.
    pub served: AtomicU64,
}

/// Point-in-time snapshot of [`BatcherCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests shed with `OVERLOADED`.
    pub shed: u64,
    /// Requests answered `DEADLINE_EXCEEDED`.
    pub deadline_expired: u64,
    /// Requests answered `INTERNAL`.
    pub internal_errors: u64,
    /// Backend batches executed.
    pub batches: u64,
    /// Requests answered `OK`.
    pub served: u64,
}

struct Shared {
    queue: Mutex<QueueState>,
    wake: Condvar,
    counters: BatcherCounters,
    config: BatcherConfig,
}

struct QueueState {
    pending: VecDeque<Pending>,
    /// Queued queries (sum of `Pending::n`), the unit `queue_cap` bounds.
    depth: usize,
    /// Hysteresis flag: true between the high-watermark trip and the
    /// low-watermark recovery.
    shedding: bool,
    /// Drain mode: no further admission, flush whatever is queued.
    closing: bool,
}

/// The dynamic batcher: admission control on callers' threads, batch
/// assembly and backend execution on one dedicated thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
}

/// Outcome of [`Batcher::submit`].
pub enum Admission {
    /// Admitted; the response arrives on the channel given to `submit`.
    Queued,
    /// Rejected immediately with the enclosed typed response (shed,
    /// draining, or malformed) — the caller forwards it and is done.
    Rejected(SearchResponse),
}

impl Batcher {
    /// Starts the batcher thread over `backend`.
    pub fn start(backend: Arc<dyn SearchBackend>, config: BatcherConfig) -> Self {
        let config = config.normalized();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                depth: 0,
                shedding: false,
                closing: false,
            }),
            wake: Condvar::new(),
            counters: BatcherCounters::default(),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("gkm-batcher".into())
            .spawn(move || batcher_loop(&worker_shared, backend.as_ref()))
            .unwrap_or_else(|e| panic!("cannot spawn the batcher thread: {e}"));
        Batcher {
            shared,
            worker: Some(worker),
        }
    }

    /// Offers a request for admission.  `queries` is `n × dim` row-major;
    /// the response (result or typed rejection) is delivered exactly once on
    /// `reply`, unless this returns [`Admission::Rejected`], in which case
    /// the caller already holds the sole response.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        id: u64,
        queries: Vec<f32>,
        dim: usize,
        r: usize,
        nprobe: usize,
        deadline: Option<Instant>,
        reply: mpsc::Sender<SearchResponse>,
    ) -> Admission {
        let n = queries.len().checked_div(dim).unwrap_or(0);
        let cfg = &self.shared.config;
        let mut q = lock(&self.shared.queue);
        if q.closing {
            return Admission::Rejected(SearchResponse::rejection(
                id,
                Status::ShuttingDown,
                "server is draining",
            ));
        }
        // Two-watermark admission: trip at the cap, recover at resume_depth.
        if q.shedding {
            if q.depth <= cfg.resume_depth {
                q.shedding = false;
            }
        } else if q.depth + n > cfg.queue_cap {
            q.shedding = true;
        }
        if q.shedding {
            drop(q);
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Rejected(SearchResponse::rejection(
                id,
                Status::Overloaded,
                format!("admission queue full ({} queries queued)", cfg.queue_cap),
            ));
        }
        q.depth += n;
        let enqueued = Instant::now();
        let serve_by = deadline.map(|d| {
            let budget = d.saturating_duration_since(enqueued);
            enqueued + budget.mul_f64(0.75)
        });
        q.pending.push_back(Pending {
            id,
            queries,
            n,
            dim,
            r,
            nprobe,
            enqueued,
            deadline,
            serve_by,
            reply,
        });
        drop(q);
        self.shared
            .counters
            .accepted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_one();
        Admission::Queued
    }

    /// Current queued-query depth (for tests and the stats endpoint).
    pub fn depth(&self) -> usize {
        lock(&self.shared.queue).depth
    }

    /// Snapshot of the monotonic counters.
    pub fn stats(&self) -> BatcherStats {
        let c = &self.shared.counters;
        BatcherStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            internal_errors: c.internal_errors.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
        }
    }

    /// Stops admission and drains: every already-queued request is still
    /// served (or expired), then the batcher thread exits.  Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.closing = true;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            // The batcher thread contains every panic via catch_unwind, so
            // join only fails if the thread died to a bug; propagate loudly.
            if worker.join().is_err() {
                panic!("the batcher thread panicked outside containment");
            }
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poison-tolerant lock: queue state is plain data plus counters, always
/// valid, so a panicking peer must not wedge admission.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn batcher_loop(shared: &Shared, backend: &dyn SearchBackend) {
    let cfg = shared.config;
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                // Expired requests are answered immediately, even mid-wait:
                // a deadline storm must not occupy queue depth.
                expire(&mut q, &shared.counters);
                if q.depth >= cfg.max_batch || (q.closing && !q.pending.is_empty()) {
                    break;
                }
                if q.pending.is_empty() {
                    if q.closing {
                        return;
                    }
                    // Parked until `submit` or `shutdown` notifies — the
                    // idle batcher burns no CPU.
                    q = match shared.wake.wait(q) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    continue;
                }
                let now = Instant::now();
                let flush_at = flush_deadline(&q, cfg.max_delay);
                if now >= flush_at {
                    break;
                }
                let (guard, _timeout) = match shared.wake.wait_timeout(q, flush_at - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => {
                        let pair = poisoned.into_inner();
                        (pair.0, pair.1)
                    }
                };
                q = guard;
            }
            take_batch(&mut q, cfg.max_batch)
        };
        if batch.is_empty() {
            continue;
        }
        run_batch(batch, backend, &shared.counters);
    }
}

/// Answers and removes every expired request in the queue.
fn expire(q: &mut QueueState, counters: &BatcherCounters) {
    let now = Instant::now();
    let mut kept = VecDeque::with_capacity(q.pending.len());
    while let Some(p) = q.pending.pop_front() {
        match p.deadline {
            Some(d) if now >= d => {
                q.depth -= p.n;
                counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(SearchResponse::rejection(
                    p.id,
                    Status::DeadlineExceeded,
                    format!("deadline expired after {:?} in queue", now - p.enqueued),
                ));
            }
            _ => kept.push_back(p),
        }
    }
    q.pending = kept;
}

/// When the current queue must flush: the oldest request's `max_delay`
/// budget, tightened by the earliest serve-by point (75% of a deadline
/// budget — see the module docs).
fn flush_deadline(q: &QueueState, max_delay: Duration) -> Instant {
    let mut flush_at = match q.pending.front() {
        Some(oldest) => oldest.enqueued + max_delay,
        None => Instant::now() + max_delay,
    };
    for p in &q.pending {
        if let Some(s) = p.serve_by {
            flush_at = flush_at.min(s);
        }
    }
    flush_at
}

/// Pops requests off the queue front into one batch.  Requests are grouped
/// by the `(r, nprobe)` of the oldest queued request — later requests with
/// different knobs stay queued for the next batch, preserving arrival order
/// within each group.
fn take_batch(q: &mut QueueState, max_batch: usize) -> Vec<Pending> {
    let mut batch = Vec::new();
    let (mut r, mut nprobe, mut dim) = (0usize, 0usize, 0usize);
    let mut taken_queries = 0usize;
    let mut i = 0;
    while i < q.pending.len() {
        let p = &q.pending[i];
        if batch.is_empty() {
            (r, nprobe, dim) = (p.r, p.nprobe, p.dim);
        }
        if p.r != r || p.nprobe != nprobe || p.dim != dim {
            i += 1;
            continue;
        }
        if !batch.is_empty() && taken_queries + p.n > max_batch {
            break;
        }
        taken_queries += p.n;
        q.depth -= p.n;
        if let Some(p) = q.pending.remove(i) {
            batch.push(p);
        }
        if taken_queries >= max_batch {
            break;
        }
    }
    batch
}

/// Executes one batch and fans the results (or a typed failure) back out.
fn run_batch(batch: Vec<Pending>, backend: &dyn SearchBackend, counters: &BatcherCounters) {
    counters.batches.fetch_add(1, Ordering::Relaxed);
    let dim = batch[0].dim;
    let r = batch[0].r;
    let nprobe = batch[0].nprobe;
    let mut flat = Vec::with_capacity(batch.iter().map(|p| p.queries.len()).sum());
    for p in &batch {
        flat.extend_from_slice(&p.queries);
    }
    let outcome = VectorSet::from_flat(flat, dim).and_then(|queries| {
        // The IVF backend already contains worker panics via the
        // checked pool API; this catch_unwind is belt-and-braces for
        // backend implementations that panic on the batcher thread
        // itself.
        match catch_unwind(AssertUnwindSafe(|| {
            backend.search_batch(&queries, r, nprobe)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                Err(vecstore::Error::Internal(format!(
                    "backend panicked: {msg}"
                )))
            }
        }
    });
    match outcome {
        Ok(results) => {
            let expected: usize = batch.iter().map(|p| p.n).sum();
            if results.len() != expected {
                fail_batch(
                    &batch,
                    counters,
                    format!(
                        "backend returned {} result lists for {expected} queries",
                        results.len()
                    ),
                );
                return;
            }
            let mut rest = results;
            for p in &batch {
                let tail = rest.split_off(p.n);
                let own = std::mem::replace(&mut rest, tail);
                counters.served.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(SearchResponse::ok(p.id, own));
            }
        }
        Err(e) => fail_batch(&batch, counters, format!("search failed: {e}")),
    }
}

/// Answers every request of a failed batch with `INTERNAL`.
fn fail_batch(batch: &[Pending], counters: &BatcherCounters, message: String) {
    for p in batch {
        counters.internal_errors.fetch_add(1, Ordering::Relaxed);
        let _ = p.reply.send(SearchResponse::rejection(
            p.id,
            Status::Internal,
            message.clone(),
        ));
    }
}

/// Best-effort panic payload text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic toy backend: neighbour id = floor of the first query
    /// coordinate, distance = fractional part.
    struct EchoBackend {
        dim: usize,
    }

    impl SearchBackend for EchoBackend {
        fn dim(&self) -> usize {
            self.dim
        }

        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            _nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            Ok(queries
                .rows()
                .map(|row| {
                    (0..r)
                        .map(|j| Neighbor::new(row[0] as u32 + j as u32, row[0].fract()))
                        .collect()
                })
                .collect())
        }
    }

    fn submit_one(b: &Batcher, id: u64, x: f32) -> mpsc::Receiver<SearchResponse> {
        let (tx, rx) = mpsc::channel();
        match b.submit(id, vec![x, 0.0], 2, 3, 1, None, tx.clone()) {
            Admission::Queued => {}
            Admission::Rejected(resp) => {
                let _ = tx.send(resp);
            }
        }
        rx
    }

    #[test]
    fn serves_and_correlates_interleaved_requests() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let rxs: Vec<_> = (0..20).map(|i| submit_one(&b, i, i as f32)).collect();
        for (i, rx) in rxs.iter().enumerate() {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.results.len(), 1);
            assert_eq!(resp.results[0][0].id, i as u32);
        }
        let stats = b.stats();
        assert_eq!(stats.served, 20);
        assert_eq!(stats.accepted, 20);
        b.shutdown();
    }

    #[test]
    fn expired_deadline_is_answered_not_dropped() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                // Long flush delay: without deadline handling the request
                // would sit for a second.
                max_delay: Duration::from_secs(1),
                max_batch: 64,
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        // Already expired at admission (e.g. the client set a 1 ms budget
        // that elapsed during frame parsing): the sweep must answer it, not
        // drop it, and must not burn a backend call on it.
        let deadline = Some(Instant::now());
        assert!(matches!(
            b.submit(42, vec![1.0, 2.0], 2, 3, 1, deadline, tx),
            Admission::Queued
        ));
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.id, 42);
        assert_eq!(resp.status, Status::DeadlineExceeded);
        assert_eq!(b.stats().deadline_expired, 1);
        b.shutdown();
    }

    #[test]
    fn deadline_tightens_the_flush_not_just_expiry() {
        // A request whose deadline is *after* now but *before* max_delay
        // must be served promptly (flush_at = deadline), not expired.
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_secs(5),
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        let deadline = Some(Instant::now() + Duration::from_millis(200));
        assert!(matches!(
            b.submit(7, vec![3.0, 0.0], 2, 2, 1, deadline, tx),
            Admission::Queued
        ));
        let start = Instant::now();
        let resp = rx.recv_timeout(Duration::from_secs(4)).unwrap();
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.message);
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "flush did not honour the deadline-tightened schedule"
        );
        b.shutdown();
    }

    #[test]
    fn overload_sheds_with_hysteresis_and_recovers() {
        /// Backend that blocks until released, to pile up a backlog.
        struct GatedBackend {
            gate: Mutex<bool>,
            cv: Condvar,
        }
        impl SearchBackend for GatedBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                let mut open = self.gate.lock().unwrap();
                while !*open {
                    open = self.cv.wait(open).unwrap();
                }
                Ok(vec![vec![Neighbor::new(0, 0.0); r]; queries.len()])
            }
        }
        let backend = Arc::new(GatedBackend {
            gate: Mutex::new(false),
            cv: Condvar::new(),
        });
        let backend2 = Arc::clone(&backend);
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_batch: 2,
                max_delay: Duration::from_micros(100),
                queue_cap: 4,
                resume_depth: 0,
            },
        );
        // Fill: the batcher takes up to one batch (2 queries) into flight
        // and blocks on the gate; then the queue fills to its cap of 4.
        let mut rxs = Vec::new();
        let mut shed = 0usize;
        for i in 0..32u64 {
            let (tx, rx) = mpsc::channel();
            match b.submit(i, vec![1.0, 0.0], 2, 1, 1, None, tx.clone()) {
                Admission::Queued => rxs.push(rx),
                Admission::Rejected(resp) => {
                    assert_eq!(resp.status, Status::Overloaded);
                    shed += 1;
                }
            }
            // Give the batcher a moment to pull the first batch into flight.
            if i == 0 {
                thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(shed > 0, "cap 4 must shed under 32 one-query requests");
        assert_eq!(b.stats().shed, shed as u64);

        // Release the gate: everything admitted must complete.
        {
            let mut open = backend2.gate.lock().unwrap();
            *open = true;
            backend2.cv.notify_all();
        }
        for rx in &rxs {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.status, Status::Ok);
        }
        // Hysteresis has recovered (resume_depth 0, queue drained): new
        // requests are admitted again.
        let rx = submit_one(&b, 999, 1.5);
        let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.id, 999);
        b.shutdown();
    }

    #[test]
    fn backend_error_fails_only_that_batch() {
        /// Fails batches containing a negative first coordinate.
        struct FlakyBackend;
        impl SearchBackend for FlakyBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                if queries.rows().any(|row| row[0] < 0.0) {
                    return Err(vecstore::Error::Internal("worker panicked".into()));
                }
                Ok(vec![vec![Neighbor::new(1, 0.5); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(FlakyBackend),
            BatcherConfig {
                max_batch: 1, // one request per batch → failures are isolated
                max_delay: Duration::from_micros(100),
                ..BatcherConfig::default()
            },
        );
        let bad = submit_one(&b, 1, -1.0);
        let good = submit_one(&b, 2, 1.0);
        let bad_resp = bad.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(bad_resp.status, Status::Internal);
        assert!(bad_resp.message.contains("worker panicked"));
        let good_resp = good.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(good_resp.status, Status::Ok);
        assert_eq!(b.stats().internal_errors, 1);
        b.shutdown();
    }

    #[test]
    fn panicking_backend_is_contained_and_batcher_survives() {
        struct PanickyBackend;
        impl SearchBackend for PanickyBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                if queries.rows().any(|row| row[0] < 0.0) {
                    panic!("injected backend panic");
                }
                Ok(vec![vec![Neighbor::new(4, 0.25); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(PanickyBackend),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_micros(100),
                ..BatcherConfig::default()
            },
        );
        let bad = submit_one(&b, 5, -2.0);
        let resp = bad.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(resp.status, Status::Internal);
        assert!(resp.message.contains("injected backend panic"));
        // The batcher thread is still alive and serving.
        let good = submit_one(&b, 6, 3.0);
        assert_eq!(
            good.recv_timeout(Duration::from_secs(5)).unwrap().status,
            Status::Ok
        );
        b.shutdown();
    }

    #[test]
    fn mixed_knobs_are_batched_separately_but_all_answered() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let mut rxs = Vec::new();
        for i in 0..12u64 {
            let (tx, rx) = mpsc::channel();
            let r = if i % 2 == 0 { 2 } else { 5 };
            match b.submit(i, vec![i as f32, 0.0], 2, r, 1, None, tx.clone()) {
                Admission::Queued => {}
                Admission::Rejected(resp) => {
                    let _ = tx.send(resp);
                }
            }
            rxs.push((rx, r));
        }
        for (i, (rx, r)) in rxs.iter().enumerate() {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.results[0].len(), *r);
        }
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        /// Slow backend so requests are still queued when shutdown lands.
        struct SlowBackend;
        impl SearchBackend for SlowBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                thread::sleep(Duration::from_millis(20));
                Ok(vec![vec![Neighbor::new(9, 1.0); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(SlowBackend),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_secs(10), // would stall without drain
                ..BatcherConfig::default()
            },
        );
        let rxs: Vec<_> = (0..4).map(|i| submit_one(&b, i, 1.0)).collect();
        b.shutdown();
        for rx in &rxs {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(resp.status, Status::Ok, "drain must serve queued work");
        }
        // Post-shutdown submission is rejected as SHUTTING_DOWN.
        let (tx, _rx) = mpsc::channel();
        match b.submit(99, vec![0.0, 0.0], 2, 1, 1, None, tx) {
            Admission::Rejected(resp) => assert_eq!(resp.status, Status::ShuttingDown),
            Admission::Queued => panic!("draining batcher must not admit"),
        }
    }

    #[test]
    fn config_normalization_keeps_knobs_consistent() {
        let cfg = BatcherConfig {
            max_batch: 0,
            queue_cap: 0,
            resume_depth: 100,
            max_delay: Duration::from_millis(1),
        }
        .normalized();
        assert_eq!(cfg.max_batch, 1);
        assert!(cfg.queue_cap >= cfg.max_batch);
        assert!(cfg.resume_depth < cfg.queue_cap);
    }
}
