//! Dynamic batcher: coalesces in-flight requests into IVF query blocks under
//! a latency deadline, with bounded admission, typed shedding and drain.
//!
//! # Deadline math
//!
//! A request enters the queue stamped with its enqueue time and an optional
//! absolute deadline (`now + deadline_ms` at frame-read time).  The batcher
//! thread flushes the queue when *either*
//!
//! * depth reaches `max_batch` (a full IVF block — no reason to wait), or
//! * `now ≥ flush_at`, where `flush_at = min(oldest.enqueued + max_delay,
//!   min over queued requests of their serve-by point)`.
//!
//! A request's *serve-by point* sits at 75% of its deadline budget: the last
//! quarter is reserved for the backend call, so a deadline that tightens the
//! flush schedule still leaves time to actually serve the request (flushing
//! *at* the deadline would expire the very request the flush was for).  So a
//! queued request waits at most `max_delay` for company, and never past the
//! tightest serve-by point in the queue.  Before assembling a batch the
//! queue is swept for requests whose full deadline has already passed, which
//! are answered `DEADLINE_EXCEEDED` immediately — a request is *never*
//! silently dropped, and never burns backend work after its client has given
//! up.
//!
//! # Shedding state machine
//!
//! Admission is bounded by `queue_cap` queued *queries* (not requests, so a
//! 64-query frame counts 64).  The batcher runs a two-watermark hysteresis:
//!
//! ```text
//!             depth > queue_cap                   depth ≤ resume_depth
//!  ┌────────┐ ──────────────────► ┌──────────────┐ ──────────────────► ┌────────┐
//!  │ OPEN   │                     │   SHEDDING   │                     │ OPEN   │
//!  └────────┘  admit everything   └──────────────┘  shed OVERLOADED    └────────┘
//! ```
//!
//! Without the low watermark an overloaded server oscillates admit/shed per
//! request; with it, shedding persists until the backlog has actually
//! drained to `resume_depth`, giving bursts a clean recovery edge.
//!
//! # Failure containment
//!
//! The backend is called through [`SearchBackend::search_batch`], whose IVF
//! implementation uses [`ivf::IvfIndex::try_batch_search`] — a worker panic
//! is contained by the pool and surfaces as `Err`, which fails *only the
//! requests in that batch* with `INTERNAL`.  A defensive `catch_unwind`
//! around the call turns any direct backend panic into the same typed
//! outcome, so the batcher thread itself never dies.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use ivf::{IvfIndex, IvfSearchParams, IvfSearchStats, MutableStore};
use knn_graph::Neighbor;
use obs::{ObsHandle, SlowQuery, StageTimings};
use vecstore::VectorSet;

use crate::protocol::{
    MutateResponse, SearchResponse, StatsResponse, Status, TracedSearchResponse, WireMutation,
};

/// What flows back to a connection's writer: a search answer (traced or
/// plain) or a mutation ack.  One channel per connection carries all three,
/// preserving the order the batcher produced them in.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to a search (or a control frame riding the search path).
    Search(SearchResponse),
    /// Answer to a traced search, carrying the trace id and stage timings.
    Traced(TracedSearchResponse),
    /// Ack of an insert/delete/compact.
    Mutate(MutateResponse),
    /// Rendered stats text answering a [`FrameKind::Stats`] request.  Rides
    /// the same channel as real responses so it serialises in order behind
    /// earlier results.
    ///
    /// [`FrameKind::Stats`]: crate::protocol::FrameKind::Stats
    Stats(StatsResponse),
}

impl From<SearchResponse> for Reply {
    fn from(r: SearchResponse) -> Self {
        Reply::Search(r)
    }
}

impl From<MutateResponse> for Reply {
    fn from(r: MutateResponse) -> Self {
        Reply::Mutate(r)
    }
}

/// Abstraction over the thing that answers query batches, so the chaos tests
/// can wrap the real index with slow / panicking / failing shims.
pub trait SearchBackend: Send + Sync + 'static {
    /// Dimensionality the backend expects.
    fn dim(&self) -> usize;
    /// Answers every row of `queries` with its `r` nearest neighbours.
    /// Errors must leave the backend serviceable (fail the batch, not the
    /// process).
    fn search_batch(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
    ) -> vecstore::Result<Vec<Vec<Neighbor>>>;

    /// [`SearchBackend::search_batch`] plus aggregate cost counters; when
    /// `timings` is true the backend additionally measures per-stage
    /// wall-clock time (route / scan / re-rank).  The default forwards to
    /// `search_batch` and reports empty stats, so shim backends in tests
    /// stay three lines.
    fn search_batch_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
        timings: bool,
    ) -> vecstore::Result<(Vec<Vec<Neighbor>>, IvfSearchStats)> {
        let _ = timings;
        self.search_batch(queries, r, nprobe)
            .map(|results| (results, IvfSearchStats::default()))
    }
}

/// The production backend: an [`IvfIndex`] searched through the checked
/// (panic-containing) batch API.
pub struct IvfBackend {
    index: IvfIndex,
    threads: Option<usize>,
    quantized: bool,
}

impl IvfBackend {
    /// Wraps `index`; `threads = None` inherits the `GKM_THREADS` default.
    pub fn new(index: IvfIndex, threads: Option<usize>) -> Self {
        IvfBackend {
            index,
            threads,
            quantized: false,
        }
    }

    /// Serves every batch from the SQ8 quantized tier (overfetch + exact
    /// re-rank).  The wrapped index must be quantized — an unquantized one
    /// would fail every batch with a typed error rather than crash, but the
    /// server validates up front and refuses to start instead.
    #[must_use]
    pub fn quantized(mut self, quantized: bool) -> Self {
        self.quantized = quantized;
        self
    }

    /// The wrapped index.
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    fn params(&self, nprobe: usize) -> IvfSearchParams {
        let mut params = IvfSearchParams::default()
            .nprobe(nprobe.max(1))
            .sq8(self.quantized);
        if let Some(t) = self.threads {
            params = params.threads(t);
        }
        params
    }
}

impl SearchBackend for IvfBackend {
    fn dim(&self) -> usize {
        self.index.dim()
    }

    fn search_batch(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
    ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
        self.index.try_batch_search(queries, r, self.params(nprobe))
    }

    fn search_batch_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
        timings: bool,
    ) -> vecstore::Result<(Vec<Vec<Neighbor>>, IvfSearchStats)> {
        self.index
            .try_batch_search_with_stats(queries, r, self.params(nprobe).timings(timings))
    }
}

/// Outcome of one applied mutation: the ids it touched (assigned ids for an
/// insert, actually-deleted ids for a delete, empty for a compaction) plus
/// the live count afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Ids the mutation touched.
    pub ids: Vec<u32>,
    /// Live vectors after the mutation.
    pub live: u64,
}

/// A search backend that additionally accepts journalled mutations.
///
/// `mutate` must uphold the durability contract: an `Ok` return means the
/// mutation is journalled (fsynced) *and* applied; an `Err` before anything
/// was journalled is a clean rejection.  An `Err` after a partial journal
/// write is allowed (the record may replay after a restart) — which is
/// exactly why clients must never retry a mutation whose outcome is unknown.
pub trait MutableBackend: SearchBackend {
    /// Journals, applies and acks one wire mutation.
    fn mutate(&self, op: &WireMutation) -> vecstore::Result<MutationOutcome>;
}

/// The production mutable backend: a [`MutableStore`] behind an `RwLock`.
///
/// Searches take the read lock, mutations the write lock, so a compaction's
/// generation swap waits for in-flight searches to finish on the old
/// generation and every later search sees the new one — the hot-swap is a
/// pointer swap under the write lock, never a torn view.
pub struct MutableIvfBackend {
    store: RwLock<MutableStore>,
    threads: Option<usize>,
    dim: usize,
    quantized: bool,
}

impl MutableIvfBackend {
    /// Wraps `store`; `threads = None` inherits the `GKM_THREADS` default.
    pub fn new(store: MutableStore, threads: Option<usize>) -> Self {
        let dim = store.index().dim();
        MutableIvfBackend {
            store: RwLock::new(store),
            threads,
            dim,
            quantized: false,
        }
    }

    /// Serves every batch from the SQ8 quantized tier.  Hot-swap safe: the
    /// store's quantized flag survives compaction (a quantized generation
    /// re-quantizes its successor from the live `f32` set under the write
    /// lock), so a reader never observes a generation the mode cannot serve.
    #[must_use]
    pub fn quantized(mut self, quantized: bool) -> Self {
        self.quantized = quantized;
        self
    }

    /// Runs `f` over the store under the read lock (stats endpoints, drain
    /// summaries).
    pub fn with_store<T>(&self, f: impl FnOnce(&MutableStore) -> T) -> T {
        f(&read_lock(&self.store))
    }

    /// Consumes the backend and returns the store (final checkpoint at
    /// shutdown).
    pub fn into_store(self) -> MutableStore {
        match self.store.into_inner() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn params(&self, nprobe: usize) -> IvfSearchParams {
        let mut params = IvfSearchParams::default()
            .nprobe(nprobe.max(1))
            .sq8(self.quantized);
        if let Some(t) = self.threads {
            params = params.threads(t);
        }
        params
    }
}

impl SearchBackend for MutableIvfBackend {
    fn dim(&self) -> usize {
        self.dim
    }

    fn search_batch(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
    ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
        read_lock(&self.store)
            .index()
            .try_batch_search(queries, r, self.params(nprobe))
    }

    fn search_batch_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
        timings: bool,
    ) -> vecstore::Result<(Vec<Vec<Neighbor>>, IvfSearchStats)> {
        read_lock(&self.store).index().try_batch_search_with_stats(
            queries,
            r,
            self.params(nprobe).timings(timings),
        )
    }
}

impl MutableBackend for MutableIvfBackend {
    fn mutate(&self, op: &WireMutation) -> vecstore::Result<MutationOutcome> {
        let mut store = write_lock(&self.store);
        match op {
            WireMutation::Insert { dim, vectors } => {
                if *dim as usize != self.dim {
                    return Err(vecstore::Error::DimensionMismatch {
                        expected: self.dim,
                        found: *dim as usize,
                    });
                }
                let set = VectorSet::from_flat(vectors.clone(), self.dim)?;
                let ids = store.insert_batch(&set)?;
                Ok(MutationOutcome {
                    ids,
                    live: store.index().live_len() as u64,
                })
            }
            WireMutation::Delete { ids } => {
                let hits = store.delete_batch(ids)?;
                let deleted = ids
                    .iter()
                    .zip(&hits)
                    .filter(|(_, &was_live)| was_live)
                    .map(|(&id, _)| id)
                    .collect();
                Ok(MutationOutcome {
                    ids: deleted,
                    live: store.index().live_len() as u64,
                })
            }
            WireMutation::Compact => {
                store.compact()?;
                Ok(MutationOutcome {
                    ids: Vec::new(),
                    live: store.index().live_len() as u64,
                })
            }
        }
    }
}

/// Poison-tolerant read lock (mirrors [`lock`]): the store's invariants are
/// upheld by `MutableStore` itself, not by guard scopes.
fn read_lock<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Poison-tolerant write lock (mirrors [`lock`]).
fn write_lock<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The two backend flavours a batcher can drive.  Kept as an enum (rather
/// than trait upcasting) so an immutable deployment pays nothing for the
/// mutation path and rejects mutation frames with a typed `BAD_REQUEST`.
enum AnyBackend {
    Immutable(Arc<dyn SearchBackend>),
    Mutable(Arc<dyn MutableBackend>),
}

impl AnyBackend {
    fn search_batch_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        nprobe: usize,
        timings: bool,
    ) -> vecstore::Result<(Vec<Vec<Neighbor>>, IvfSearchStats)> {
        match self {
            AnyBackend::Immutable(b) => b.search_batch_with_stats(queries, r, nprobe, timings),
            AnyBackend::Mutable(b) => b.search_batch_with_stats(queries, r, nprobe, timings),
        }
    }

    fn mutable(&self) -> Option<&dyn MutableBackend> {
        match self {
            AnyBackend::Immutable(_) => None,
            AnyBackend::Mutable(b) => Some(b.as_ref()),
        }
    }
}

/// Batcher tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Queries per backend call (defaults to one IVF block).
    pub max_batch: usize,
    /// Longest a queued request waits for company before the batch flushes.
    pub max_delay: Duration,
    /// Admission bound in queued queries; beyond it requests are shed.
    pub queue_cap: usize,
    /// Low watermark: once shedding starts it persists until the queue
    /// drains to this depth.
    pub resume_depth: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            queue_cap: 1024,
            resume_depth: 256,
        }
    }
}

impl BatcherConfig {
    /// Clamps inconsistent knobs into a usable state (resume below cap,
    /// non-zero batch).
    fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(self.max_batch);
        self.resume_depth = self.resume_depth.min(self.queue_cap.saturating_sub(1));
        self
    }
}

/// One admitted request waiting for a batch.
struct Pending {
    id: u64,
    /// Client-minted trace id (0 = untraced; the response travels as a
    /// plain [`Reply::Search`]).
    trace_id: u64,
    queries: Vec<f32>,
    n: usize,
    dim: usize,
    r: usize,
    nprobe: usize,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// 75% point of the deadline budget — the flush schedule honours this,
    /// reserving the final quarter for the backend call.
    serve_by: Option<Instant>,
    reply: mpsc::Sender<Reply>,
}

impl Pending {
    /// Delivers the response on the request's channel — traced requests get
    /// their timings piggybacked, untraced ones the plain frame.
    fn send(&self, resp: SearchResponse, timings: StageTimings) {
        if self.trace_id != 0 {
            let _ = self.reply.send(Reply::Traced(TracedSearchResponse {
                trace_id: self.trace_id,
                timings,
                resp,
            }));
        } else {
            let _ = self.reply.send(Reply::Search(resp));
        }
    }
}

/// One admitted mutation waiting its turn in the queue.  Mutations carry no
/// deadline: once admitted they will be journalled, and expiring a journalled
/// mutation would break exactly-once semantics.
struct PendingMutation {
    id: u64,
    op: WireMutation,
    weight: usize,
    reply: mpsc::Sender<Reply>,
}

/// A queue entry: searches batch together, mutations act as fences.
enum Work {
    Search(Pending),
    Mutation(PendingMutation),
}

/// Admission weight of a wire mutation: rows for an insert, requested ids
/// for a delete, so a 64-vector insert occupies as much admission budget as
/// a 64-query search.
fn mutation_weight(op: &WireMutation) -> usize {
    match op {
        WireMutation::Insert { dim, vectors } => (vectors.len() / (*dim).max(1) as usize).max(1),
        WireMutation::Delete { ids } => ids.len().max(1),
        WireMutation::Compact => 1,
    }
}

/// The batcher's pre-registered instruments.
///
/// The **counters** are the single source of truth for [`BatcherStats`]:
/// the drain summary and the `Stats` frame read the very same atomics, so
/// they can never disagree.  When the caller's [`ObsHandle`] is disabled
/// the counters fall back to a private always-enabled registry — counting
/// is part of the batcher's contract (tests and drain summaries rely on
/// it), and a relaxed `fetch_add` is what the pre-obs `AtomicU64`s cost
/// anyway.  The **histograms** stay on the caller's handle, so with
/// metrics off every latency record is one branch and no clock is read.
struct BatcherMetrics {
    /// Requests admitted into the queue.
    accepted: obs::CounterHandle,
    /// Requests shed with `OVERLOADED`.
    shed: obs::CounterHandle,
    /// Requests answered `DEADLINE_EXCEEDED`.
    deadline_expired: obs::CounterHandle,
    /// Requests answered `INTERNAL`.
    internal_errors: obs::CounterHandle,
    /// Backend batches executed.
    batches: obs::CounterHandle,
    /// Requests answered `OK`.
    served: obs::CounterHandle,
    /// Mutation records journalled (fsynced).
    mutations_journaled: obs::CounterHandle,
    /// Mutation records that changed serving state.
    mutations_applied: obs::CounterHandle,
    /// Checkpointed compactions published.
    compactions: obs::CounterHandle,
    /// Queued work weight right now (queries + mutation rows).
    queue_depth: obs::GaugeHandle,
    /// Enqueue → dequeue per request.
    queue_wait_nanos: obs::HistogramHandle,
    /// Oldest enqueue → flush per batch (the delay coalescing added).
    coalesce_delay_nanos: obs::HistogramHandle,
    /// Queries per executed batch.
    batch_size: obs::HistogramHandle,
    /// Coarse-routing nanoseconds per batch (from the IVF stage timings).
    route_nanos: obs::HistogramHandle,
    /// List-scan nanoseconds per batch.
    scan_nanos: obs::HistogramHandle,
    /// SQ8 re-rank nanoseconds per batch (0-sample on the f32 path).
    rerank_nanos: obs::HistogramHandle,
    /// The caller's handle — feeds the slow-query ring buffer.
    obs: ObsHandle,
}

impl BatcherMetrics {
    fn register(handle: &ObsHandle) -> Self {
        let counters = if handle.is_enabled() {
            handle.clone()
        } else {
            ObsHandle::enabled()
        };
        BatcherMetrics {
            accepted: counters
                .counter("batcher_accepted_total", "Requests admitted into the queue"),
            shed: counters.counter("batcher_shed_total", "Requests shed with OVERLOADED"),
            deadline_expired: counters.counter(
                "batcher_deadline_expired_total",
                "Requests answered DEADLINE_EXCEEDED",
            ),
            internal_errors: counters.counter(
                "batcher_internal_errors_total",
                "Requests answered INTERNAL",
            ),
            batches: counters.counter("batcher_batches_total", "Backend batches executed"),
            served: counters.counter("batcher_served_total", "Requests answered OK"),
            mutations_journaled: counters.counter(
                "batcher_mutations_journaled_total",
                "Mutation records journalled (fsynced)",
            ),
            mutations_applied: counters.counter(
                "batcher_mutations_applied_total",
                "Mutation records that changed serving state",
            ),
            compactions: counters.counter(
                "batcher_compactions_total",
                "Checkpointed compactions published",
            ),
            queue_depth: counters.gauge(
                "batcher_queue_depth",
                "Queued work weight (queries plus mutation rows)",
            ),
            queue_wait_nanos: handle.histogram(
                "batcher_queue_wait_nanos",
                "Enqueue-to-dequeue wait per request",
            ),
            coalesce_delay_nanos: handle.histogram(
                "batcher_coalesce_delay_nanos",
                "Oldest-enqueue-to-flush delay per batch",
            ),
            batch_size: handle.histogram("batcher_batch_size", "Queries per executed batch"),
            route_nanos: handle.histogram(
                "ivf_route_nanos",
                "Coarse-routing time per batch (query-to-centroid distances)",
            ),
            scan_nanos: handle.histogram(
                "ivf_scan_nanos",
                "Inverted-list scan time per batch (panels + append regions)",
            ),
            rerank_nanos: handle.histogram(
                "ivf_rerank_nanos",
                "Exact re-rank time per batch of SQ8 survivors",
            ),
            obs: handle.clone(),
        }
    }

    /// True when per-request clocks must be read: a latency histogram is
    /// live or the slow-query ring could admit.
    fn wants_latency(&self) -> bool {
        self.queue_wait_nanos.is_enabled() || self.obs.is_enabled()
    }
}

/// Point-in-time snapshot of the batcher's outcome counters (which live on
/// the metrics registry, so this agrees with every exposition surface).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Requests admitted into the queue.
    pub accepted: u64,
    /// Requests shed with `OVERLOADED`.
    pub shed: u64,
    /// Requests answered `DEADLINE_EXCEEDED`.
    pub deadline_expired: u64,
    /// Requests answered `INTERNAL`.
    pub internal_errors: u64,
    /// Backend batches executed.
    pub batches: u64,
    /// Requests answered `OK`.
    pub served: u64,
    /// Mutation records journalled (fsynced).
    pub mutations_journaled: u64,
    /// Mutation records that changed serving state.
    pub mutations_applied: u64,
    /// Checkpointed compactions published.
    pub compactions: u64,
}

struct Shared {
    queue: Mutex<QueueState>,
    wake: Condvar,
    metrics: BatcherMetrics,
    config: BatcherConfig,
}

struct QueueState {
    pending: VecDeque<Work>,
    /// Queued work weight (queries plus mutation rows), the unit `queue_cap`
    /// bounds.
    depth: usize,
    /// Hysteresis flag: true between the high-watermark trip and the
    /// low-watermark recovery.
    shedding: bool,
    /// Drain mode: no further admission, flush whatever is queued.
    closing: bool,
}

/// The dynamic batcher: admission control on callers' threads, batch
/// assembly and backend execution on one dedicated thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<thread::JoinHandle<()>>,
    /// Whether the backend accepts mutations (set at `start_*` time).
    mutable: bool,
}

/// Why admission refused a work item.
enum AdmitRejection {
    Closing,
    Shedding,
}

/// Two-watermark admission check under the queue lock; `Err` means reject.
fn admit(q: &mut QueueState, cfg: &BatcherConfig, weight: usize) -> Result<(), AdmitRejection> {
    if q.closing {
        return Err(AdmitRejection::Closing);
    }
    // Trip at the cap, recover at resume_depth.
    if q.shedding {
        if q.depth <= cfg.resume_depth {
            q.shedding = false;
        }
    } else if q.depth + weight > cfg.queue_cap {
        q.shedding = true;
    }
    if q.shedding {
        return Err(AdmitRejection::Shedding);
    }
    Ok(())
}

/// Outcome of [`Batcher::submit`].
pub enum Admission {
    /// Admitted; the response arrives on the channel given to `submit`.
    Queued,
    /// Rejected immediately with the enclosed typed response (shed,
    /// draining, or malformed) — the caller forwards it and is done.
    Rejected(SearchResponse),
}

/// Outcome of [`Batcher::submit_mutation`].
pub enum MutationAdmission {
    /// Admitted; the ack arrives on the channel given to `submit_mutation`
    /// only after the mutation is journalled and applied.
    Queued,
    /// Rejected *before* anything was journalled — the one rejection class
    /// a client may safely retry (when the status is `OVERLOADED`).
    Rejected(MutateResponse),
}

impl Batcher {
    /// Starts the batcher thread over an immutable `backend`.  Mutation
    /// frames are answered `BAD_REQUEST`.  Counters still run (on a private
    /// registry); latency histograms and the slow-query ring are off.
    pub fn start(backend: Arc<dyn SearchBackend>, config: BatcherConfig) -> Self {
        Self::start_any(
            AnyBackend::Immutable(backend),
            config,
            &ObsHandle::disabled(),
        )
    }

    /// Starts the batcher thread over a mutable `backend`: searches batch as
    /// usual, and insert/delete/compact frames are journalled, applied and
    /// acked in arrival order.
    pub fn start_mutable(backend: Arc<dyn MutableBackend>, config: BatcherConfig) -> Self {
        Self::start_any(AnyBackend::Mutable(backend), config, &ObsHandle::disabled())
    }

    /// [`Batcher::start`] with the batcher's instruments registered on
    /// `obs`: counters, the queue-depth gauge, queue-wait / coalesce-delay /
    /// batch-size histograms, the per-stage IVF timing histograms and the
    /// slow-query ring buffer all become live.
    pub fn start_obs(
        backend: Arc<dyn SearchBackend>,
        config: BatcherConfig,
        obs: &ObsHandle,
    ) -> Self {
        Self::start_any(AnyBackend::Immutable(backend), config, obs)
    }

    /// [`Batcher::start_mutable`] with instruments registered on `obs`.
    pub fn start_mutable_obs(
        backend: Arc<dyn MutableBackend>,
        config: BatcherConfig,
        obs: &ObsHandle,
    ) -> Self {
        Self::start_any(AnyBackend::Mutable(backend), config, obs)
    }

    fn start_any(backend: AnyBackend, config: BatcherConfig, obs: &ObsHandle) -> Self {
        let mutable = backend.mutable().is_some();
        let config = config.normalized();
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                depth: 0,
                shedding: false,
                closing: false,
            }),
            wake: Condvar::new(),
            metrics: BatcherMetrics::register(obs),
            config,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("gkm-batcher".into())
            .spawn(move || batcher_loop(&worker_shared, &backend))
            .unwrap_or_else(|e| panic!("cannot spawn the batcher thread: {e}"));
        Batcher {
            shared,
            worker: Some(worker),
            mutable,
        }
    }

    /// Offers a request for admission.  `queries` is `n × dim` row-major;
    /// the response (result or typed rejection) is delivered exactly once on
    /// `reply`, unless this returns [`Admission::Rejected`], in which case
    /// the caller already holds the sole response.
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        id: u64,
        queries: Vec<f32>,
        dim: usize,
        r: usize,
        nprobe: usize,
        deadline: Option<Instant>,
        reply: mpsc::Sender<Reply>,
    ) -> Admission {
        self.submit_inner(id, 0, queries, dim, r, nprobe, deadline, reply)
    }

    /// [`Batcher::submit`] for a traced request: the non-zero `trace_id`
    /// rides through the queue and the response comes back as a
    /// [`Reply::Traced`] carrying per-stage timings.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_traced(
        &self,
        id: u64,
        trace_id: u64,
        queries: Vec<f32>,
        dim: usize,
        r: usize,
        nprobe: usize,
        deadline: Option<Instant>,
        reply: mpsc::Sender<Reply>,
    ) -> Admission {
        self.submit_inner(id, trace_id, queries, dim, r, nprobe, deadline, reply)
    }

    #[allow(clippy::too_many_arguments)]
    fn submit_inner(
        &self,
        id: u64,
        trace_id: u64,
        queries: Vec<f32>,
        dim: usize,
        r: usize,
        nprobe: usize,
        deadline: Option<Instant>,
        reply: mpsc::Sender<Reply>,
    ) -> Admission {
        let n = queries.len().checked_div(dim).unwrap_or(0);
        let cfg = &self.shared.config;
        let m = &self.shared.metrics;
        let mut q = lock(&self.shared.queue);
        match admit(&mut q, cfg, n) {
            Err(AdmitRejection::Closing) => {
                return Admission::Rejected(SearchResponse::rejection(
                    id,
                    Status::ShuttingDown,
                    "server is draining",
                ));
            }
            Err(AdmitRejection::Shedding) => {
                drop(q);
                m.shed.inc();
                return Admission::Rejected(SearchResponse::rejection(
                    id,
                    Status::Overloaded,
                    format!("admission queue full ({} queries queued)", cfg.queue_cap),
                ));
            }
            Ok(()) => {}
        }
        q.depth += n;
        m.queue_depth.set(q.depth as i64);
        // Counted *before* the queue can serve it: `stats()` loads outcome
        // counters first and `accepted` last, so accepted ≥ outcomes holds
        // in every snapshot.
        m.accepted.inc();
        let enqueued = Instant::now();
        let serve_by = deadline.map(|d| {
            let budget = d.saturating_duration_since(enqueued);
            enqueued + budget.mul_f64(0.75)
        });
        q.pending.push_back(Work::Search(Pending {
            id,
            trace_id,
            queries,
            n,
            dim,
            r,
            nprobe,
            enqueued,
            deadline,
            serve_by,
            reply,
        }));
        drop(q);
        self.shared.wake.notify_one();
        Admission::Queued
    }

    /// Offers a mutation for admission.  Rejections here are *pre-journal*:
    /// nothing durable happened, so a `Status::Overloaded` rejection is the
    /// only mutation failure a client may safely retry.
    pub fn submit_mutation(
        &self,
        id: u64,
        op: WireMutation,
        reply: mpsc::Sender<Reply>,
    ) -> MutationAdmission {
        if !self.mutable {
            return MutationAdmission::Rejected(MutateResponse::rejection(
                id,
                Status::BadRequest,
                "this server is immutable: no journal is attached to the index",
            ));
        }
        let weight = mutation_weight(&op);
        let cfg = &self.shared.config;
        let m = &self.shared.metrics;
        let mut q = lock(&self.shared.queue);
        match admit(&mut q, cfg, weight) {
            Err(AdmitRejection::Closing) => {
                return MutationAdmission::Rejected(MutateResponse::rejection(
                    id,
                    Status::ShuttingDown,
                    "server is draining",
                ));
            }
            Err(AdmitRejection::Shedding) => {
                drop(q);
                m.shed.inc();
                return MutationAdmission::Rejected(MutateResponse::rejection(
                    id,
                    Status::Overloaded,
                    format!(
                        "admission queue full ({} queries queued); \
                         nothing was journalled — safe to retry",
                        cfg.queue_cap
                    ),
                ));
            }
            Ok(()) => {}
        }
        q.depth += weight;
        m.queue_depth.set(q.depth as i64);
        m.accepted.inc();
        q.pending.push_back(Work::Mutation(PendingMutation {
            id,
            op,
            weight,
            reply,
        }));
        drop(q);
        self.shared.wake.notify_one();
        MutationAdmission::Queued
    }

    /// Current queued-query depth (for tests and the stats endpoint).
    pub fn depth(&self) -> usize {
        lock(&self.shared.queue).depth
    }

    /// Coherent snapshot of the monotonic counters.
    ///
    /// Load order is the coherence mechanism: the *outcome* counters
    /// (served, expired, internal) are read **before** `accepted`, and every
    /// request increments `accepted` before it can reach an outcome — so in
    /// any snapshot, however racy the traffic,
    /// `served + deadline_expired + internal_errors ≤ accepted`.  Reading
    /// `accepted` first would allow snapshots where outcomes from
    /// just-admitted requests exceed the stale accepted count.
    pub fn stats(&self) -> BatcherStats {
        let m = &self.shared.metrics;
        let served = m.served.get();
        let deadline_expired = m.deadline_expired.get();
        let internal_errors = m.internal_errors.get();
        let batches = m.batches.get();
        let shed = m.shed.get();
        let mutations_journaled = m.mutations_journaled.get();
        let mutations_applied = m.mutations_applied.get();
        let compactions = m.compactions.get();
        let accepted = m.accepted.get();
        BatcherStats {
            accepted,
            shed,
            deadline_expired,
            internal_errors,
            batches,
            served,
            mutations_journaled,
            mutations_applied,
            compactions,
        }
    }

    /// The observability handle this batcher records into (disabled unless
    /// started through [`Batcher::start_obs`] / [`Batcher::start_mutable_obs`]).
    pub fn obs(&self) -> &ObsHandle {
        &self.shared.metrics.obs
    }

    /// Whether this batcher accepts mutations.
    pub fn is_mutable(&self) -> bool {
        self.mutable
    }

    /// Stops admission and drains: every already-queued request is still
    /// served (or expired), then the batcher thread exits.  Idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.closing = true;
        }
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            // The batcher thread contains every panic via catch_unwind, so
            // join only fails if the thread died to a bug; propagate loudly.
            if worker.join().is_err() {
                panic!("the batcher thread panicked outside containment");
            }
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poison-tolerant lock: queue state is plain data plus counters, always
/// valid, so a panicking peer must not wedge admission.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One unit of work the batcher thread executes between lock drops: either a
/// block of compatible searches or a run of consecutive mutations.
enum Batch {
    Searches(Vec<Pending>),
    Mutations(Vec<PendingMutation>),
}

impl Batch {
    fn is_empty(&self) -> bool {
        match self {
            Batch::Searches(b) => b.is_empty(),
            Batch::Mutations(b) => b.is_empty(),
        }
    }
}

fn batcher_loop(shared: &Shared, backend: &AnyBackend) {
    let cfg = shared.config;
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                // Expired requests are answered immediately, even mid-wait:
                // a deadline storm must not occupy queue depth.
                expire(&mut q, &shared.metrics);
                if q.depth >= cfg.max_batch || (q.closing && !q.pending.is_empty()) {
                    break;
                }
                if q.pending.is_empty() {
                    if q.closing {
                        return;
                    }
                    // Parked until `submit` or `shutdown` notifies — the
                    // idle batcher burns no CPU.
                    q = match shared.wake.wait(q) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    continue;
                }
                // A mutation at the queue front flushes immediately: it is
                // acked only once durable, so waiting for batch company buys
                // nothing and costs ack latency.
                if matches!(q.pending.front(), Some(Work::Mutation(_))) {
                    break;
                }
                let now = Instant::now();
                let flush_at = flush_deadline(&q, cfg.max_delay);
                if now >= flush_at {
                    break;
                }
                let (guard, _timeout) = match shared.wake.wait_timeout(q, flush_at - now) {
                    Ok(pair) => pair,
                    Err(poisoned) => {
                        let pair = poisoned.into_inner();
                        (pair.0, pair.1)
                    }
                };
                q = guard;
            }
            take_batch(&mut q, cfg.max_batch, &shared.metrics)
        };
        if batch.is_empty() {
            continue;
        }
        match batch {
            Batch::Searches(b) => run_batch(b, backend, &shared.metrics),
            Batch::Mutations(b) => run_mutations(b, backend, &shared.metrics),
        }
    }
}

/// Answers and removes every expired request in the queue.  Mutations never
/// expire: an admitted mutation is always journalled and acked.
fn expire(q: &mut QueueState, m: &BatcherMetrics) {
    let now = Instant::now();
    let mut kept = VecDeque::with_capacity(q.pending.len());
    while let Some(work) = q.pending.pop_front() {
        let p = match work {
            Work::Search(p) => p,
            mu @ Work::Mutation(_) => {
                kept.push_back(mu);
                continue;
            }
        };
        match p.deadline {
            Some(d) if now >= d => {
                q.depth -= p.n;
                m.deadline_expired.inc();
                let waited = now - p.enqueued;
                // A traced request still gets its timings back: it spent its
                // whole life in the queue.
                let waited_nanos = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
                p.send(
                    SearchResponse::rejection(
                        p.id,
                        Status::DeadlineExceeded,
                        format!("deadline expired after {waited:?} in queue"),
                    ),
                    StageTimings {
                        queue_wait_nanos: waited_nanos,
                        total_nanos: waited_nanos,
                        ..StageTimings::default()
                    },
                );
            }
            _ => kept.push_back(Work::Search(p)),
        }
    }
    q.pending = kept;
    m.queue_depth.set(q.depth as i64);
}

/// When the current queue must flush: the oldest request's `max_delay`
/// budget, tightened by the earliest serve-by point (75% of a deadline
/// budget — see the module docs).  Queued mutations flush immediately —
/// their ack latency is bounded by the journal fsync, not by batching.
fn flush_deadline(q: &QueueState, max_delay: Duration) -> Instant {
    let mut flush_at = match q.pending.front() {
        Some(Work::Search(oldest)) => oldest.enqueued + max_delay,
        Some(Work::Mutation(_)) | None => Instant::now(),
    };
    for work in &q.pending {
        match work {
            Work::Search(p) => {
                if let Some(s) = p.serve_by {
                    flush_at = flush_at.min(s);
                }
            }
            Work::Mutation(_) => {
                flush_at = flush_at.min(Instant::now());
            }
        }
    }
    flush_at
}

/// Pops work off the queue front into one batch.
///
/// Searches are grouped by the `(r, nprobe, dim)` of the oldest queued
/// search — later searches with different knobs stay queued for the next
/// batch, preserving arrival order within each group.  **Mutations are
/// fences**: a search batch never reaches past a queued mutation (a search
/// admitted after a delete must not be answered from the pre-delete
/// snapshot), and a mutation batch is the maximal run of consecutive
/// mutations at the queue front, executed in arrival order.
fn take_batch(q: &mut QueueState, max_batch: usize, metrics: &BatcherMetrics) -> Batch {
    let batch = take_batch_inner(q, max_batch);
    metrics.queue_depth.set(q.depth as i64);
    batch
}

fn take_batch_inner(q: &mut QueueState, max_batch: usize) -> Batch {
    if matches!(q.pending.front(), Some(Work::Mutation(_))) {
        let mut batch = Vec::new();
        while matches!(q.pending.front(), Some(Work::Mutation(_))) {
            if let Some(Work::Mutation(m)) = q.pending.pop_front() {
                q.depth -= m.weight;
                batch.push(m);
            }
        }
        return Batch::Mutations(batch);
    }
    let mut batch = Vec::new();
    let (mut r, mut nprobe, mut dim) = (0usize, 0usize, 0usize);
    let mut taken_queries = 0usize;
    let mut i = 0;
    while i < q.pending.len() {
        let p = match &q.pending[i] {
            Work::Search(p) => p,
            // Fence: nothing behind a mutation may join this batch.
            Work::Mutation(_) => break,
        };
        if batch.is_empty() {
            (r, nprobe, dim) = (p.r, p.nprobe, p.dim);
        }
        if p.r != r || p.nprobe != nprobe || p.dim != dim {
            i += 1;
            continue;
        }
        if !batch.is_empty() && taken_queries + p.n > max_batch {
            break;
        }
        taken_queries += p.n;
        q.depth -= p.n;
        if let Some(Work::Search(p)) = q.pending.remove(i) {
            batch.push(p);
        }
        if taken_queries >= max_batch {
            break;
        }
    }
    Batch::Searches(batch)
}

/// Executes a run of mutations in arrival order and acks each.  Each `Ok`
/// ack is sent only after the store has journalled (fsynced) and applied
/// the mutation; a panic or error fails *that* mutation with a typed status
/// and the batcher thread carries on.
fn run_mutations(batch: Vec<PendingMutation>, backend: &AnyBackend, metrics: &BatcherMetrics) {
    let Some(mutable) = backend.mutable() else {
        for m in batch {
            let _ = m.reply.send(Reply::Mutate(MutateResponse::rejection(
                m.id,
                Status::BadRequest,
                "this server is immutable: no journal is attached to the index",
            )));
        }
        return;
    };
    for m in batch {
        let outcome =
            catch_unwind(AssertUnwindSafe(|| mutable.mutate(&m.op))).unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref());
                Err(vecstore::Error::Internal(format!(
                    "backend panicked: {msg}"
                )))
            });
        let reply = match outcome {
            Ok(out) => {
                metrics.mutations_journaled.add(m.weight as u64);
                let applied = match &m.op {
                    WireMutation::Compact => {
                        metrics.compactions.inc();
                        0
                    }
                    _ => out.ids.len() as u64,
                };
                metrics.mutations_applied.add(applied);
                metrics.served.inc();
                MutateResponse::ok(m.id, out.ids, out.live)
            }
            Err(e) => {
                metrics.internal_errors.inc();
                MutateResponse::rejection(m.id, mutation_error_status(&e), format!("{e}"))
            }
        };
        let _ = m.reply.send(Reply::Mutate(reply));
    }
}

/// Maps a store error to a wire status.  Validation failures (wrong dim,
/// bad parameters) are the client's fault; anything touching the journal or
/// checkpoint is `INTERNAL` — and deliberately ambiguous, because an I/O
/// error mid-journal may or may not survive a restart.
fn mutation_error_status(e: &vecstore::Error) -> Status {
    match e {
        vecstore::Error::DimensionMismatch { .. }
        | vecstore::Error::EmptyInput(_)
        | vecstore::Error::InvalidParameter(_) => Status::BadRequest,
        _ => Status::Internal,
    }
}

/// Executes one batch and fans the results (or a typed failure) back out.
///
/// Latency accounting is pay-for-what-you-touch: clocks are read only when a
/// latency histogram is live, the slow-query ring could admit, or the batch
/// carries a traced request — otherwise this is byte-for-byte the untimed
/// path.  Stage timings are measured by the backend (batch-level) and
/// attributed to every traced request the batch carried.
fn run_batch(batch: Vec<Pending>, backend: &AnyBackend, metrics: &BatcherMetrics) {
    metrics.batches.inc();
    let dim = batch[0].dim;
    let r = batch[0].r;
    let nprobe = batch[0].nprobe;
    let traced = batch.iter().any(|p| p.trace_id != 0);
    let timed = traced || metrics.wants_latency();
    let want_stage_timings = traced || metrics.route_nanos.is_enabled();
    let dequeued = timed.then(Instant::now);
    if let Some(at) = dequeued {
        let mut oldest = at;
        for p in &batch {
            metrics.queue_wait_nanos.record_duration(at - p.enqueued);
            oldest = oldest.min(p.enqueued);
        }
        metrics.coalesce_delay_nanos.record_duration(at - oldest);
    }
    let total_queries: usize = batch.iter().map(|p| p.n).sum();
    metrics.batch_size.record(total_queries as u64);
    let mut flat = Vec::with_capacity(batch.iter().map(|p| p.queries.len()).sum());
    for p in &batch {
        flat.extend_from_slice(&p.queries);
    }
    let outcome = VectorSet::from_flat(flat, dim).and_then(|queries| {
        // The IVF backend already contains worker panics via the
        // checked pool API; this catch_unwind is belt-and-braces for
        // backend implementations that panic on the batcher thread
        // itself.
        match catch_unwind(AssertUnwindSafe(|| {
            backend.search_batch_with_stats(&queries, r, nprobe, want_stage_timings)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                Err(vecstore::Error::Internal(format!(
                    "backend panicked: {msg}"
                )))
            }
        }
    });
    match outcome {
        Ok((results, stats)) => {
            if want_stage_timings {
                metrics.route_nanos.record(stats.route_nanos);
                metrics.scan_nanos.record(stats.scan_nanos);
                metrics.rerank_nanos.record(stats.rerank_nanos);
            }
            let expected: usize = batch.iter().map(|p| p.n).sum();
            if results.len() != expected {
                fail_batch(
                    &batch,
                    metrics,
                    format!(
                        "backend returned {} result lists for {expected} queries",
                        results.len()
                    ),
                );
                return;
            }
            let completed = timed.then(Instant::now);
            let mut rest = results;
            for p in &batch {
                let tail = rest.split_off(p.n);
                let own = std::mem::replace(&mut rest, tail);
                metrics.served.inc();
                let timings = stage_timings(p, &stats, dequeued, completed);
                observe_slow(metrics, p, &timings, completed);
                p.send(SearchResponse::ok(p.id, own), timings);
            }
        }
        Err(e) => fail_batch(&batch, metrics, format!("search failed: {e}")),
    }
}

/// Assembles one request's stage timings from the batch-level measurements.
fn stage_timings(
    p: &Pending,
    stats: &IvfSearchStats,
    dequeued: Option<Instant>,
    completed: Option<Instant>,
) -> StageTimings {
    let nanos = |since: Instant, until: Option<Instant>| {
        until.map_or(0, |at| {
            u64::try_from(at.saturating_duration_since(since).as_nanos()).unwrap_or(u64::MAX)
        })
    };
    StageTimings {
        queue_wait_nanos: nanos(p.enqueued, dequeued),
        route_nanos: stats.route_nanos,
        scan_nanos: stats.scan_nanos,
        rerank_nanos: stats.rerank_nanos,
        total_nanos: nanos(p.enqueued, completed),
    }
}

/// Offers a completed request to the slow-query ring buffer (a no-op when
/// observability is disabled; the ring itself applies the threshold).
fn observe_slow(
    metrics: &BatcherMetrics,
    p: &Pending,
    timings: &StageTimings,
    completed: Option<Instant>,
) {
    if !metrics.obs.is_enabled() {
        return;
    }
    // Slack left on the clock at completion: positive = finished early,
    // negative = the deadline had already passed (0 when undeadlined).
    let deadline_slack_nanos = match (p.deadline, completed) {
        (Some(d), Some(at)) if at <= d => {
            i64::try_from(d.duration_since(at).as_nanos()).unwrap_or(i64::MAX)
        }
        (Some(d), Some(at)) => i64::try_from(at.duration_since(d).as_nanos())
            .map(|n| -n)
            .unwrap_or(i64::MIN),
        _ => 0,
    };
    metrics.obs.observe_slow(SlowQuery {
        trace_id: p.trace_id,
        queries: p.n as u32,
        dim: p.dim as u32,
        r: p.r as u16,
        nprobe: p.nprobe as u16,
        deadline_slack_nanos,
        timings: *timings,
    });
}

/// Answers every request of a failed batch with `INTERNAL`.
fn fail_batch(batch: &[Pending], metrics: &BatcherMetrics, message: String) {
    for p in batch {
        metrics.internal_errors.inc();
        p.send(
            SearchResponse::rejection(p.id, Status::Internal, message.clone()),
            StageTimings::default(),
        );
    }
}

/// Best-effort panic payload text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Deterministic toy backend: neighbour id = floor of the first query
    /// coordinate, distance = fractional part.
    struct EchoBackend {
        dim: usize,
    }

    impl SearchBackend for EchoBackend {
        fn dim(&self) -> usize {
            self.dim
        }

        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            _nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            Ok(queries
                .rows()
                .map(|row| {
                    (0..r)
                        .map(|j| Neighbor::new(row[0] as u32 + j as u32, row[0].fract()))
                        .collect()
                })
                .collect())
        }
    }

    /// Unwraps a search reply off the shared channel.
    fn search_reply(reply: Reply) -> SearchResponse {
        match reply {
            Reply::Search(r) => r,
            other => panic!("expected a search reply, got {other:?}"),
        }
    }

    /// Unwraps a traced search reply off the shared channel.
    fn traced_reply(reply: Reply) -> TracedSearchResponse {
        match reply {
            Reply::Traced(t) => t,
            other => panic!("expected a traced reply, got {other:?}"),
        }
    }

    /// Unwraps a mutation ack off the shared channel.
    fn mutate_reply(reply: Reply) -> MutateResponse {
        match reply {
            Reply::Mutate(m) => m,
            other => panic!("expected a mutate ack, got {other:?}"),
        }
    }

    fn recv_search(rx: &mpsc::Receiver<Reply>) -> SearchResponse {
        search_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap())
    }

    fn submit_one(b: &Batcher, id: u64, x: f32) -> mpsc::Receiver<Reply> {
        let (tx, rx) = mpsc::channel();
        match b.submit(id, vec![x, 0.0], 2, 3, 1, None, tx.clone()) {
            Admission::Queued => {}
            Admission::Rejected(resp) => {
                let _ = tx.send(Reply::Search(resp));
            }
        }
        rx
    }

    #[test]
    fn serves_and_correlates_interleaved_requests() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let rxs: Vec<_> = (0..20).map(|i| submit_one(&b, i, i as f32)).collect();
        for (i, rx) in rxs.iter().enumerate() {
            let resp = recv_search(rx);
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.results.len(), 1);
            assert_eq!(resp.results[0][0].id, i as u32);
        }
        let stats = b.stats();
        assert_eq!(stats.served, 20);
        assert_eq!(stats.accepted, 20);
        b.shutdown();
    }

    #[test]
    fn expired_deadline_is_answered_not_dropped() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                // Long flush delay: without deadline handling the request
                // would sit for a second.
                max_delay: Duration::from_secs(1),
                max_batch: 64,
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        // Already expired at admission (e.g. the client set a 1 ms budget
        // that elapsed during frame parsing): the sweep must answer it, not
        // drop it, and must not burn a backend call on it.
        let deadline = Some(Instant::now());
        assert!(matches!(
            b.submit(42, vec![1.0, 2.0], 2, 3, 1, deadline, tx),
            Admission::Queued
        ));
        let resp = recv_search(&rx);
        assert_eq!(resp.id, 42);
        assert_eq!(resp.status, Status::DeadlineExceeded);
        assert_eq!(b.stats().deadline_expired, 1);
        b.shutdown();
    }

    #[test]
    fn deadline_tightens_the_flush_not_just_expiry() {
        // A request whose deadline is *after* now but *before* max_delay
        // must be served promptly (flush_at = deadline), not expired.
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_secs(5),
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        let deadline = Some(Instant::now() + Duration::from_millis(200));
        assert!(matches!(
            b.submit(7, vec![3.0, 0.0], 2, 2, 1, deadline, tx),
            Admission::Queued
        ));
        let start = Instant::now();
        let resp = search_reply(rx.recv_timeout(Duration::from_secs(4)).unwrap());
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.message);
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "flush did not honour the deadline-tightened schedule"
        );
        b.shutdown();
    }

    #[test]
    fn overload_sheds_with_hysteresis_and_recovers() {
        /// Backend that blocks until released, to pile up a backlog.
        struct GatedBackend {
            gate: Mutex<bool>,
            cv: Condvar,
        }
        impl SearchBackend for GatedBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                let mut open = self.gate.lock().unwrap();
                while !*open {
                    open = self.cv.wait(open).unwrap();
                }
                Ok(vec![vec![Neighbor::new(0, 0.0); r]; queries.len()])
            }
        }
        let backend = Arc::new(GatedBackend {
            gate: Mutex::new(false),
            cv: Condvar::new(),
        });
        let backend2 = Arc::clone(&backend);
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_batch: 2,
                max_delay: Duration::from_micros(100),
                queue_cap: 4,
                resume_depth: 0,
            },
        );
        // Fill: the batcher takes up to one batch (2 queries) into flight
        // and blocks on the gate; then the queue fills to its cap of 4.
        let mut rxs = Vec::new();
        let mut shed = 0usize;
        for i in 0..32u64 {
            let (tx, rx) = mpsc::channel();
            match b.submit(i, vec![1.0, 0.0], 2, 1, 1, None, tx.clone()) {
                Admission::Queued => rxs.push(rx),
                Admission::Rejected(resp) => {
                    assert_eq!(resp.status, Status::Overloaded);
                    shed += 1;
                }
            }
            // Give the batcher a moment to pull the first batch into flight.
            if i == 0 {
                thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(shed > 0, "cap 4 must shed under 32 one-query requests");
        assert_eq!(b.stats().shed, shed as u64);

        // Release the gate: everything admitted must complete.
        {
            let mut open = backend2.gate.lock().unwrap();
            *open = true;
            backend2.cv.notify_all();
        }
        for rx in &rxs {
            let resp = recv_search(rx);
            assert_eq!(resp.status, Status::Ok);
        }
        // Hysteresis has recovered (resume_depth 0, queue drained): new
        // requests are admitted again.
        let rx = submit_one(&b, 999, 1.5);
        let resp = recv_search(&rx);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.id, 999);
        b.shutdown();
    }

    #[test]
    fn backend_error_fails_only_that_batch() {
        /// Fails batches containing a negative first coordinate.
        struct FlakyBackend;
        impl SearchBackend for FlakyBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                if queries.rows().any(|row| row[0] < 0.0) {
                    return Err(vecstore::Error::Internal("worker panicked".into()));
                }
                Ok(vec![vec![Neighbor::new(1, 0.5); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(FlakyBackend),
            BatcherConfig {
                max_batch: 1, // one request per batch → failures are isolated
                max_delay: Duration::from_micros(100),
                ..BatcherConfig::default()
            },
        );
        let bad = submit_one(&b, 1, -1.0);
        let good = submit_one(&b, 2, 1.0);
        let bad_resp = recv_search(&bad);
        assert_eq!(bad_resp.status, Status::Internal);
        assert!(bad_resp.message.contains("worker panicked"));
        let good_resp = recv_search(&good);
        assert_eq!(good_resp.status, Status::Ok);
        assert_eq!(b.stats().internal_errors, 1);
        b.shutdown();
    }

    #[test]
    fn panicking_backend_is_contained_and_batcher_survives() {
        struct PanickyBackend;
        impl SearchBackend for PanickyBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                if queries.rows().any(|row| row[0] < 0.0) {
                    panic!("injected backend panic");
                }
                Ok(vec![vec![Neighbor::new(4, 0.25); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(PanickyBackend),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_micros(100),
                ..BatcherConfig::default()
            },
        );
        let bad = submit_one(&b, 5, -2.0);
        let resp = recv_search(&bad);
        assert_eq!(resp.status, Status::Internal);
        assert!(resp.message.contains("injected backend panic"));
        // The batcher thread is still alive and serving.
        let good = submit_one(&b, 6, 3.0);
        assert_eq!(recv_search(&good).status, Status::Ok);
        b.shutdown();
    }

    #[test]
    fn mixed_knobs_are_batched_separately_but_all_answered() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let mut rxs = Vec::new();
        for i in 0..12u64 {
            let (tx, rx) = mpsc::channel();
            let r = if i % 2 == 0 { 2 } else { 5 };
            match b.submit(i, vec![i as f32, 0.0], 2, r, 1, None, tx.clone()) {
                Admission::Queued => {}
                Admission::Rejected(resp) => {
                    let _ = tx.send(Reply::Search(resp));
                }
            }
            rxs.push((rx, r));
        }
        for (i, (rx, r)) in rxs.iter().enumerate() {
            let resp = recv_search(rx);
            assert_eq!(resp.id, i as u64);
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.results[0].len(), *r);
        }
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        /// Slow backend so requests are still queued when shutdown lands.
        struct SlowBackend;
        impl SearchBackend for SlowBackend {
            fn dim(&self) -> usize {
                2
            }
            fn search_batch(
                &self,
                queries: &VectorSet,
                r: usize,
                _nprobe: usize,
            ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
                thread::sleep(Duration::from_millis(20));
                Ok(vec![vec![Neighbor::new(9, 1.0); r]; queries.len()])
            }
        }
        let mut b = Batcher::start(
            Arc::new(SlowBackend),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_secs(10), // would stall without drain
                ..BatcherConfig::default()
            },
        );
        let rxs: Vec<_> = (0..4).map(|i| submit_one(&b, i, 1.0)).collect();
        b.shutdown();
        for rx in &rxs {
            let resp = recv_search(rx);
            assert_eq!(resp.status, Status::Ok, "drain must serve queued work");
        }
        // Post-shutdown submission is rejected as SHUTTING_DOWN.
        let (tx, _rx) = mpsc::channel();
        match b.submit(99, vec![0.0, 0.0], 2, 1, 1, None, tx) {
            Admission::Rejected(resp) => assert_eq!(resp.status, Status::ShuttingDown),
            Admission::Queued => panic!("draining batcher must not admit"),
        }
    }

    #[test]
    fn config_normalization_keeps_knobs_consistent() {
        let cfg = BatcherConfig {
            max_batch: 0,
            queue_cap: 0,
            resume_depth: 100,
            max_delay: Duration::from_millis(1),
        }
        .normalized();
        assert_eq!(cfg.max_batch, 1);
        assert!(cfg.queue_cap >= cfg.max_batch);
        assert!(cfg.resume_depth < cfg.queue_cap);
    }

    /// In-memory mutable backend: searches report how many mutations have
    /// been applied so far (neighbour id = mutation count), which makes
    /// ordering violations visible.  An optional gate blocks searches for
    /// queries with a negative first coordinate until released.
    struct FakeMutable {
        mutations: AtomicU64,
        next_id: AtomicU64,
        gate: Mutex<bool>,
        gate_cv: Condvar,
    }

    impl FakeMutable {
        fn new() -> Self {
            FakeMutable {
                mutations: AtomicU64::new(0),
                next_id: AtomicU64::new(100),
                gate: Mutex::new(true),
                gate_cv: Condvar::new(),
            }
        }

        fn gated() -> Self {
            let f = Self::new();
            *f.gate.lock().unwrap() = false;
            f
        }

        fn open_gate(&self) {
            *self.gate.lock().unwrap() = true;
            self.gate_cv.notify_all();
        }
    }

    impl SearchBackend for FakeMutable {
        fn dim(&self) -> usize {
            2
        }

        fn search_batch(
            &self,
            queries: &VectorSet,
            r: usize,
            _nprobe: usize,
        ) -> vecstore::Result<Vec<Vec<Neighbor>>> {
            if queries.rows().any(|row| row[0] < 0.0) {
                let mut open = self.gate.lock().unwrap();
                while !*open {
                    open = self.gate_cv.wait(open).unwrap();
                }
            }
            let seen = self.mutations.load(Ordering::SeqCst) as u32;
            Ok(vec![vec![Neighbor::new(seen, 0.0); r]; queries.len()])
        }
    }

    impl MutableBackend for FakeMutable {
        fn mutate(&self, op: &WireMutation) -> vecstore::Result<MutationOutcome> {
            self.mutations.fetch_add(1, Ordering::SeqCst);
            match op {
                WireMutation::Insert { dim, vectors } => {
                    let n = vectors.len() / (*dim as usize).max(1);
                    let base = self.next_id.fetch_add(n as u64, Ordering::SeqCst) as u32;
                    Ok(MutationOutcome {
                        ids: (base..base + n as u32).collect(),
                        live: 64 + n as u64,
                    })
                }
                WireMutation::Delete { ids } => Ok(MutationOutcome {
                    ids: ids.clone(),
                    live: 64,
                }),
                WireMutation::Compact => Ok(MutationOutcome {
                    ids: Vec::new(),
                    live: 64,
                }),
            }
        }
    }

    #[test]
    fn mutations_are_acked_with_ids_and_counted() {
        let backend = Arc::new(FakeMutable::new());
        let mut b = Batcher::start_mutable(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        assert!(b.is_mutable());
        let (tx, rx) = mpsc::channel();
        let insert = WireMutation::Insert {
            dim: 2,
            vectors: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert!(matches!(
            b.submit_mutation(11, insert, tx.clone()),
            MutationAdmission::Queued
        ));
        let ack = mutate_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!(ack.id, 11);
        assert_eq!(ack.status, Status::Ok);
        assert_eq!(ack.ids, vec![100, 101]);

        assert!(matches!(
            b.submit_mutation(12, WireMutation::Delete { ids: vec![100] }, tx.clone()),
            MutationAdmission::Queued
        ));
        let ack = mutate_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!((ack.id, ack.status), (12, Status::Ok));

        assert!(matches!(
            b.submit_mutation(13, WireMutation::Compact, tx),
            MutationAdmission::Queued
        ));
        let ack = mutate_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!((ack.id, ack.status), (13, Status::Ok));

        let stats = b.stats();
        assert_eq!(stats.mutations_journaled, 2 + 1 + 1); // rows + ids + compact
        assert_eq!(stats.mutations_applied, 2 + 1);
        assert_eq!(stats.compactions, 1);
        b.shutdown();
    }

    #[test]
    fn searches_never_cross_a_mutation_fence() {
        let backend = Arc::new(FakeMutable::gated());
        let backend2 = Arc::clone(&backend);
        let mut b = Batcher::start_mutable(
            backend,
            BatcherConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(5),
                ..BatcherConfig::default()
            },
        );
        // Warmup search (negative coordinate) blocks the batcher thread in
        // the backend while we stack the queue behind it.
        let warm = submit_one(&b, 0, -1.0);
        thread::sleep(Duration::from_millis(30));
        // Queue: search A | insert | search B — A and B share knobs, so
        // without the fence they would batch together and both observe the
        // same mutation count.
        let a = submit_one(&b, 1, 1.0);
        let (mtx, mrx) = mpsc::channel();
        assert!(matches!(
            b.submit_mutation(
                2,
                WireMutation::Insert {
                    dim: 2,
                    vectors: vec![5.0, 6.0],
                },
                mtx
            ),
            MutationAdmission::Queued
        ));
        let bq = submit_one(&b, 3, 2.0);
        backend2.open_gate();

        assert_eq!(recv_search(&warm).status, Status::Ok);
        let resp_a = recv_search(&a);
        let ack = mutate_reply(mrx.recv_timeout(Duration::from_secs(5)).unwrap());
        let resp_b = recv_search(&bq);
        assert_eq!(ack.status, Status::Ok);
        assert_eq!(resp_a.status, Status::Ok);
        assert_eq!(resp_b.status, Status::Ok);
        // A ran before the insert, B after it: the mutation count each side
        // observed proves arrival order was preserved across the fence.
        assert_eq!(resp_a.results[0][0].id, 0, "A must run pre-mutation");
        assert_eq!(resp_b.results[0][0].id, 1, "B must run post-mutation");
        b.shutdown();
    }

    #[test]
    fn immutable_batcher_rejects_mutations_as_bad_request() {
        let mut b = Batcher::start(Arc::new(EchoBackend { dim: 2 }), BatcherConfig::default());
        assert!(!b.is_mutable());
        let (tx, _rx) = mpsc::channel();
        match b.submit_mutation(7, WireMutation::Compact, tx) {
            MutationAdmission::Rejected(resp) => {
                assert_eq!(resp.status, Status::BadRequest);
                assert!(resp.message.contains("immutable"));
            }
            MutationAdmission::Queued => panic!("immutable batcher must reject mutations"),
        }
        b.shutdown();
    }

    #[test]
    fn draining_batcher_rejects_mutations_pre_journal() {
        let backend = Arc::new(FakeMutable::new());
        let mut b = Batcher::start_mutable(backend, BatcherConfig::default());
        b.shutdown();
        let (tx, _rx) = mpsc::channel();
        match b.submit_mutation(8, WireMutation::Delete { ids: vec![1] }, tx) {
            MutationAdmission::Rejected(resp) => assert_eq!(resp.status, Status::ShuttingDown),
            MutationAdmission::Queued => panic!("draining batcher must not admit mutations"),
        }
    }

    #[test]
    fn traced_requests_come_back_with_queue_wait_and_total() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        assert!(matches!(
            b.submit_traced(3, 0xfeed, vec![5.0, 0.0], 2, 4, 1, None, tx),
            Admission::Queued
        ));
        let t = traced_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!(t.trace_id, 0xfeed);
        assert_eq!(t.resp.status, Status::Ok);
        assert_eq!(t.resp.results[0].len(), 4);
        assert!(t.timings.total_nanos > 0, "total was measured");
        assert!(
            t.timings.total_nanos >= t.timings.queue_wait_nanos,
            "the total covers the queue wait"
        );
        b.shutdown();
    }

    #[test]
    fn obs_batcher_registers_counters_histograms_and_slow_queries() {
        let obs = ObsHandle::with_slow_threshold(0); // admit everything
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start_obs(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
            &obs,
        );
        let rxs: Vec<_> = (0..5).map(|i| submit_one(&b, i, i as f32)).collect();
        for rx in &rxs {
            assert_eq!(recv_search(rx).status, Status::Ok);
        }
        // The counters live in the caller's registry: the exposition and the
        // drain summary read the same atomics.
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("batcher_served_total"), Some(5));
        assert_eq!(snap.counter("batcher_accepted_total"), Some(5));
        let stats = b.stats();
        assert_eq!(stats.served, 5);
        assert_eq!(stats.accepted, 5);
        // Latency histograms recorded (threshold 0 ⇒ timed path is on).
        let qw = snap.histogram("batcher_queue_wait_nanos").unwrap();
        assert_eq!(qw.count(), 5, "one queue-wait sample per request");
        let bs = snap.histogram("batcher_batch_size").unwrap();
        assert!(bs.count() >= 1);
        assert_eq!(bs.sum, 5, "batch sizes must sum to the query count");
        // Every request crossed the 0-nanosecond slow threshold.
        let slow = obs.obs().unwrap().slow_log().recent();
        assert_eq!(slow.len(), 5);
        assert!(slow.iter().all(|q| q.timings.total_nanos > 0));
        assert!(slow.iter().all(|q| q.r == 3 && q.nprobe == 1));
        b.shutdown();
    }

    #[test]
    fn disabled_obs_batcher_still_counts_but_keeps_no_latency() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
        );
        let rx = submit_one(&b, 1, 1.0);
        assert_eq!(recv_search(&rx).status, Status::Ok);
        assert_eq!(b.stats().served, 1, "counters survive a disabled handle");
        assert!(!b.obs().is_enabled());
        b.shutdown();
    }

    #[test]
    fn stats_snapshot_is_coherent_under_concurrent_traffic() {
        // Hammer submissions from several threads while a reader snapshots:
        // in every snapshot accepted must dominate the outcome counters.
        let backend = Arc::new(EchoBackend { dim: 2 });
        let b = Arc::new(Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_micros(50),
                ..BatcherConfig::default()
            },
        ));
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..3)
            .map(|t| {
                let b = Arc::clone(&b);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut rxs = Vec::new();
                    for i in 0..300u64 {
                        if stop.load(Ordering::Relaxed) != 0 {
                            break;
                        }
                        rxs.push(submit_one(&b, t * 1000 + i, i as f32));
                    }
                    for rx in rxs {
                        let _ = rx.recv_timeout(Duration::from_secs(5));
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = b.stats();
            assert!(
                s.served + s.deadline_expired + s.internal_errors <= s.accepted,
                "incoherent snapshot: {s:?}"
            );
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let s = b.stats();
        assert_eq!(s.served, s.accepted, "all admitted requests were served");
    }

    #[test]
    fn expired_traced_request_reports_its_queue_life() {
        let backend = Arc::new(EchoBackend { dim: 2 });
        let mut b = Batcher::start(
            backend,
            BatcherConfig {
                max_delay: Duration::from_secs(1),
                ..BatcherConfig::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        let deadline = Some(Instant::now());
        assert!(matches!(
            b.submit_traced(9, 42, vec![1.0, 2.0], 2, 3, 1, deadline, tx),
            Admission::Queued
        ));
        let t = traced_reply(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        assert_eq!(t.trace_id, 42);
        assert_eq!(t.resp.status, Status::DeadlineExceeded);
        assert_eq!(
            t.timings.queue_wait_nanos, t.timings.total_nanos,
            "an expired request spent its whole life queued"
        );
        b.shutdown();
    }
}
