//! Exact KNN graph construction by exhaustive comparison.
//!
//! Complexity `O(n²·d)` — the paper reports "more than 20 hours" to produce
//! the SIFT1M ground truth this way (Sec. 5.1).  It is used exclusively for
//! evaluation: computing graph recall and the ANN-search ground truth.  Since
//! it is not one of the measured algorithms it is parallelised with rayon.

use rayon::prelude::*;

use vecstore::distance::l2_sq;
use vecstore::VectorSet;

use crate::graph::{KnnGraph, Neighbor, NeighborList};

/// Builds the exact KNN graph with `k` neighbours per sample.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn exact_graph(data: &VectorSet, k: usize) -> KnnGraph {
    assert!(k > 0, "k must be positive");
    let n = data.len();
    let lists: Vec<NeighborList> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut list = NeighborList::with_capacity(k);
            let xi = data.row(i);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = l2_sq(xi, data.row(j));
                if d < list.upper_bound() {
                    list.insert(Neighbor::new(j as u32, d));
                }
            }
            list
        })
        .collect();
    let mut graph = KnnGraph::empty(n, k);
    for (i, list) in lists.into_iter().enumerate() {
        graph.set_list(i, list);
    }
    graph
}

/// Exact ground truth for *subset* queries: the `k` nearest rows of `base`
/// for every row of `queries` (used by the ANN-search evaluation and by the
/// estimated-recall protocol of Sec. 5.1 on the largest workloads).
pub fn exact_ground_truth(base: &VectorSet, queries: &VectorSet, k: usize) -> Vec<Vec<Neighbor>> {
    assert!(k > 0, "k must be positive");
    assert_eq!(base.dim(), queries.dim(), "dimensionality mismatch");
    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let q = queries.row(qi);
            let mut list = NeighborList::with_capacity(k);
            for j in 0..base.len() {
                let d = l2_sq(q, base.row(j));
                if d < list.upper_bound() {
                    list.insert(Neighbor::new(j as u32, d));
                }
            }
            list.as_slice().to_vec()
        })
        .collect()
}

/// Exact nearest neighbours of a subset of samples *within the same set*
/// (excluding self-matches).  Returns one neighbour vector per entry of
/// `sample_ids`.  This implements the estimation protocol of Sec. 5.1:
/// "the recall is estimated by only considering nearest neighbors of 100
/// randomly selected samples".
pub fn exact_neighbors_of_subset(
    data: &VectorSet,
    sample_ids: &[usize],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    assert!(k > 0, "k must be positive");
    sample_ids
        .par_iter()
        .map(|&i| {
            let xi = data.row(i);
            let mut list = NeighborList::with_capacity(k);
            for j in 0..data.len() {
                if j == i {
                    continue;
                }
                let d = l2_sq(xi, data.row(j));
                if d < list.upper_bound() {
                    list.insert(Neighbor::new(j as u32, d));
                }
            }
            list.as_slice().to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny hand-checkable dataset on a line: 0, 1, 3, 7, 15.
    fn line_data() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![0.0],
            vec![1.0],
            vec![3.0],
            vec![7.0],
            vec![15.0],
        ])
        .unwrap()
    }

    #[test]
    fn exact_graph_finds_true_neighbours() {
        let data = line_data();
        let g = exact_graph(&data, 2);
        assert_eq!(g.len(), 5);
        // neighbours of 0.0 are 1.0 (d=1) and 3.0 (d=9)
        assert_eq!(g.neighbors(0).ids().collect::<Vec<_>>(), vec![1, 2]);
        // neighbours of 3.0 are 1.0 (d=4) and 0.0 (d=9)
        assert_eq!(g.neighbors(2).ids().collect::<Vec<_>>(), vec![1, 0]);
        // neighbours of 15.0 are 7.0 and 3.0
        assert_eq!(g.neighbors(4).ids().collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn exact_graph_excludes_self() {
        let data = line_data();
        let g = exact_graph(&data, 4);
        for (i, list) in g.iter() {
            assert!(list.ids().all(|id| id as usize != i));
            assert_eq!(list.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = line_data();
        let _ = exact_graph(&data, 0);
    }

    #[test]
    fn ground_truth_for_external_queries() {
        let base = line_data();
        let queries = VectorSet::from_rows(vec![vec![2.0], vec![14.0]]).unwrap();
        let gt = exact_ground_truth(&base, &queries, 2);
        assert_eq!(gt.len(), 2);
        // 2.0 is closest to 3.0 (d=1) then 1.0 (d=1) — tie broken by id: 1 before 2
        let ids: Vec<u32> = gt[0].iter().map(|n| n.id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&1) && ids.contains(&2));
        // 14.0 is closest to 15.0 then 7.0
        let ids: Vec<u32> = gt[1].iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 3]);
    }

    #[test]
    fn subset_neighbors_match_full_graph() {
        let data = line_data();
        let g = exact_graph(&data, 2);
        let subset = exact_neighbors_of_subset(&data, &[0, 3], 2);
        assert_eq!(
            subset[0].iter().map(|n| n.id).collect::<Vec<_>>(),
            g.neighbors(0).ids().collect::<Vec<_>>()
        );
        assert_eq!(
            subset[1].iter().map(|n| n.id).collect::<Vec<_>>(),
            g.neighbors(3).ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn distances_are_squared_euclidean() {
        let data = line_data();
        let g = exact_graph(&data, 1);
        assert_eq!(g.neighbors(4).as_slice()[0].dist, 64.0); // (15-7)^2
    }
}
