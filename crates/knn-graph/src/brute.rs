//! Exact KNN graph construction by exhaustive comparison.
//!
//! Complexity `O(n²·d)` — the paper reports "more than 20 hours" to produce
//! the SIFT1M ground truth this way (Sec. 5.1).  It is used exclusively for
//! evaluation: computing graph recall and the ANN-search ground truth.  Since
//! it is not one of the measured algorithms it is parallelised with rayon
//! over *query row blocks*, and each block scans the base matrix through the
//! register-blocked many-to-many tile kernel — the base rows loaded for one
//! tile are reused across the whole query block instead of being re-streamed
//! once per query.

use rayon::prelude::*;

use vecstore::kernels;
use vecstore::VectorSet;

use crate::graph::{KnnGraph, Neighbor, NeighborList};

/// Base rows per distance tile: large enough to amortise the dispatch, small
/// enough that the tile panel stays in L1 next to the neighbour lists.
const SCAN_BLOCK: usize = 256;

/// Query rows per tile / per parallel work item.
const QUERY_BLOCK: usize = 16;

/// Streams the distance tiles between the contiguous query rows
/// `queries[q0..q1)` and every row of `base`, invoking `sink` with
/// `(query_offset, base_row, distance)` — base rows in ascending order per
/// query, queries interleaved tile by tile.
#[inline]
fn scan_tiles(
    base: &VectorSet,
    queries_flat: &[f32],
    panel: &mut [f32],
    mut sink: impl FnMut(usize, usize, f32),
) {
    let n = base.len();
    let d = base.dim();
    let mb = queries_flat.len() / d.max(1);
    let flat = base.as_flat();
    let mut start = 0usize;
    while start < n {
        let end = (start + SCAN_BLOCK).min(n);
        let kb = end - start;
        let panel = &mut panel[..mb * kb];
        kernels::l2_sq_many_to_many(queries_flat, &flat[start * d..end * d], d, panel);
        for (qi, tile_row) in panel.chunks_exact(kb).enumerate() {
            for (offset, &dist) in tile_row.iter().enumerate() {
                sink(qi, start + offset, dist);
            }
        }
        start = end;
    }
}

/// Runs the blocked exhaustive scan of `queries` against `base`, returning
/// one `k`-nearest list per query row.  `exclude(query_index)` names a base
/// row to skip (self-matches); parallelism is over query blocks.
fn scan_blocked(
    base: &VectorSet,
    queries: &VectorSet,
    k: usize,
    exclude: impl Fn(usize) -> Option<usize> + Sync,
) -> Vec<NeighborList> {
    let m = queries.len();
    let d = queries.dim();
    let starts: Vec<usize> = (0..m).step_by(QUERY_BLOCK.max(1)).collect();
    let per_block: Vec<Vec<NeighborList>> = starts
        .par_iter()
        .map(|&q0| {
            let q1 = (q0 + QUERY_BLOCK).min(m);
            let mut lists: Vec<NeighborList> =
                (q0..q1).map(|_| NeighborList::with_capacity(k)).collect();
            let skip: Vec<Option<usize>> = (q0..q1).map(&exclude).collect();
            let mut panel = vec![0.0f32; (q1 - q0) * SCAN_BLOCK];
            let queries_flat = &queries.as_flat()[q0 * d..q1 * d];
            scan_tiles(base, queries_flat, &mut panel, |qi, j, dist| {
                if skip[qi] == Some(j) {
                    return;
                }
                let list = &mut lists[qi];
                if dist < list.upper_bound() {
                    list.insert(Neighbor::new(j as u32, dist));
                }
            });
            lists
        })
        .collect();
    per_block.into_iter().flatten().collect()
}

/// Builds the exact KNN graph with `k` neighbours per sample.
///
/// # Panics
///
/// Panics when `k == 0`.
pub fn exact_graph(data: &VectorSet, k: usize) -> KnnGraph {
    assert!(k > 0, "k must be positive");
    let n = data.len();
    let lists = scan_blocked(data, data, k, Some);
    let mut graph = KnnGraph::empty(n, k);
    for (i, list) in lists.into_iter().enumerate() {
        graph.set_list(i, list);
    }
    graph
}

/// Exact ground truth for *subset* queries: the `k` nearest rows of `base`
/// for every row of `queries` (used by the ANN-search evaluation and by the
/// estimated-recall protocol of Sec. 5.1 on the largest workloads).
pub fn exact_ground_truth(base: &VectorSet, queries: &VectorSet, k: usize) -> Vec<Vec<Neighbor>> {
    assert!(k > 0, "k must be positive");
    assert_eq!(base.dim(), queries.dim(), "dimensionality mismatch");
    scan_blocked(base, queries, k, |_| None)
        .into_iter()
        .map(|list| list.as_slice().to_vec())
        .collect()
}

/// Exact nearest neighbours of a subset of samples *within the same set*
/// (excluding self-matches).  Returns one neighbour vector per entry of
/// `sample_ids`.  This implements the estimation protocol of Sec. 5.1:
/// "the recall is estimated by only considering nearest neighbors of 100
/// randomly selected samples".
///
/// # Panics
///
/// Panics when `k == 0` or a sample id is out of range.
pub fn exact_neighbors_of_subset(
    data: &VectorSet,
    sample_ids: &[usize],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    assert!(k > 0, "k must be positive");
    // Gather the subset rows into a contiguous query block so the scan can
    // tile them; self-exclusion goes by the *original* row id.
    let queries = data.gather(sample_ids).expect("sample id out of range");
    scan_blocked(data, &queries, k, |qi| Some(sample_ids[qi]))
        .into_iter()
        .map(|list| list.as_slice().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny hand-checkable dataset on a line: 0, 1, 3, 7, 15.
    fn line_data() -> VectorSet {
        VectorSet::from_rows(vec![vec![0.0], vec![1.0], vec![3.0], vec![7.0], vec![15.0]]).unwrap()
    }

    #[test]
    fn exact_graph_finds_true_neighbours() {
        let data = line_data();
        let g = exact_graph(&data, 2);
        assert_eq!(g.len(), 5);
        // neighbours of 0.0 are 1.0 (d=1) and 3.0 (d=9)
        assert_eq!(g.neighbors(0).ids().collect::<Vec<_>>(), vec![1, 2]);
        // neighbours of 3.0 are 1.0 (d=4) and 0.0 (d=9)
        assert_eq!(g.neighbors(2).ids().collect::<Vec<_>>(), vec![1, 0]);
        // neighbours of 15.0 are 7.0 and 3.0
        assert_eq!(g.neighbors(4).ids().collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn exact_graph_excludes_self() {
        let data = line_data();
        let g = exact_graph(&data, 4);
        for (i, list) in g.iter() {
            assert!(list.ids().all(|id| id as usize != i));
            assert_eq!(list.len(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = line_data();
        let _ = exact_graph(&data, 0);
    }

    #[test]
    fn ground_truth_for_external_queries() {
        let base = line_data();
        let queries = VectorSet::from_rows(vec![vec![2.0], vec![14.0]]).unwrap();
        let gt = exact_ground_truth(&base, &queries, 2);
        assert_eq!(gt.len(), 2);
        // 2.0 is closest to 3.0 (d=1) then 1.0 (d=1) — tie broken by id: 1 before 2
        let ids: Vec<u32> = gt[0].iter().map(|n| n.id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&1) && ids.contains(&2));
        // 14.0 is closest to 15.0 then 7.0
        let ids: Vec<u32> = gt[1].iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 3]);
    }

    #[test]
    fn subset_neighbors_match_full_graph() {
        let data = line_data();
        let g = exact_graph(&data, 2);
        let subset = exact_neighbors_of_subset(&data, &[0, 3], 2);
        assert_eq!(
            subset[0].iter().map(|n| n.id).collect::<Vec<_>>(),
            g.neighbors(0).ids().collect::<Vec<_>>()
        );
        assert_eq!(
            subset[1].iter().map(|n| n.id).collect::<Vec<_>>(),
            g.neighbors(3).ids().collect::<Vec<_>>()
        );
    }

    #[test]
    fn distances_are_squared_euclidean() {
        let data = line_data();
        let g = exact_graph(&data, 1);
        assert_eq!(g.neighbors(4).as_slice()[0].dist, 64.0); // (15-7)^2
    }

    #[test]
    fn scans_longer_than_one_block_stay_exact() {
        // 600 rows forces multiple SCAN_BLOCK batches per query.
        let data = VectorSet::from_rows((0..600).map(|i| vec![i as f32, (i % 7) as f32]).collect())
            .unwrap();
        let g = exact_graph(&data, 3);
        // row 300's nearest neighbours on this lattice are 293 and 307 (the
        // rows sharing its second coordinate at distance 49) — but 299/301
        // differ by 1.0 in x and at most 36 in y². Verify against a direct scan.
        for &i in &[0usize, 299, 300, 599] {
            let mut best: Vec<(f32, usize)> = (0..600)
                .filter(|&j| j != i)
                .map(|j| {
                    (
                        vecstore::distance::l2_sq_reference(data.row(i), data.row(j)),
                        j,
                    )
                })
                .collect();
            best.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let expect: Vec<u32> = best.iter().take(3).map(|&(_, j)| j as u32).collect();
            let got: Vec<u32> = g.neighbors(i).ids().collect();
            assert_eq!(got, expect, "row {i}");
        }
    }
}
