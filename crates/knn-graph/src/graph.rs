//! The KNN graph data structure.
//!
//! Each sample keeps an ordered, bounded list of [`Neighbor`] entries.  The
//! memory layout intentionally mirrors the `G_{n×κ}` matrix of the paper: a
//! fixed capacity `κ` per sample, ascending by distance, so `G[i][j]` is the
//! `j`-th closest known neighbour of sample `i` (Alg. 2 line 8).

use serde::{Deserialize, Serialize};

/// One (neighbour id, squared distance) entry of a KNN list.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Row index of the neighbouring sample.
    pub id: u32,
    /// Squared Euclidean distance to that neighbour.
    pub dist: f32,
}

impl Neighbor {
    /// Creates a neighbour entry.
    pub fn new(id: u32, dist: f32) -> Self {
        Self { id, dist }
    }
}

/// A bounded list of at most `capacity` neighbours kept sorted by ascending
/// distance (ties broken by id for determinism).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NeighborList {
    entries: Vec<Neighbor>,
    capacity: usize,
}

impl NeighborList {
    /// Creates an empty list with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of neighbours the list retains.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored neighbours.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no neighbours are stored yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the list already holds `capacity` entries.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Distance of the current worst (furthest) retained neighbour, or
    /// `f32::INFINITY` when the list is not yet full.  A candidate can only
    /// improve the list when its distance is below this bound.
    #[inline]
    pub fn upper_bound(&self) -> f32 {
        if self.is_full() {
            self.entries.last().map_or(f32::INFINITY, |n| n.dist)
        } else {
            f32::INFINITY
        }
    }

    /// The stored neighbours in ascending-distance order.
    #[inline]
    pub fn as_slice(&self) -> &[Neighbor] {
        &self.entries
    }

    /// Ids of the stored neighbours in ascending-distance order.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries.iter().map(|n| n.id)
    }

    /// Attempts to insert a candidate neighbour.  Returns `true` when the list
    /// changed (the candidate was closer than the current worst entry, or the
    /// list was not yet full) and `false` otherwise.  Duplicate ids are
    /// rejected.
    pub fn insert(&mut self, candidate: Neighbor) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if candidate.dist >= self.upper_bound() {
            return false;
        }
        if self.entries.iter().any(|n| n.id == candidate.id) {
            return false;
        }
        // Find the insertion point (ascending dist, then id).
        let pos = self
            .entries
            .partition_point(|n| (n.dist, n.id) < (candidate.dist, candidate.id));
        self.entries.insert(pos, candidate);
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        true
    }

    /// Removes every stored neighbour (keeps the capacity).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The `G_{n×κ}` approximate KNN graph of the paper.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KnnGraph {
    lists: Vec<NeighborList>,
    k: usize,
}

impl KnnGraph {
    /// Creates an empty graph for `n` samples with `k` neighbours per sample.
    pub fn empty(n: usize, k: usize) -> Self {
        Self {
            lists: (0..n).map(|_| NeighborList::with_capacity(k)).collect(),
            k,
        }
    }

    /// Builds a graph from pre-constructed neighbour lists (used by the
    /// deserializer, which must not allocate `n × k` up front for data it has
    /// not validated yet).
    pub fn from_lists(lists: Vec<NeighborList>, k: usize) -> Self {
        Self { lists, k }
    }

    /// Number of samples (rows) in the graph.
    #[inline]
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// `true` when the graph covers no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Neighbour-list capacity κ.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Borrow the neighbour list of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &NeighborList {
        &self.lists[i]
    }

    /// Mutable access to the neighbour list of sample `i`.
    #[inline]
    pub fn neighbors_mut(&mut self, i: usize) -> &mut NeighborList {
        &mut self.lists[i]
    }

    /// Convenience: attempts `G[i].insert((j, dist))`.  Self-loops are
    /// rejected.  Returns `true` when the list changed.
    pub fn update(&mut self, i: usize, j: usize, dist: f32) -> bool {
        if i == j {
            return false;
        }
        self.lists[i].insert(Neighbor::new(j as u32, dist))
    }

    /// Symmetric update: tries to add `j` to `i`'s list *and* `i` to `j`'s
    /// list (Alg. 3 line 11 updates both `G[i]` and `G[j]`).  Returns the
    /// number of lists that changed (0, 1 or 2).
    pub fn update_pair(&mut self, i: usize, j: usize, dist: f32) -> usize {
        usize::from(self.update(i, j, dist)) + usize::from(self.update(j, i, dist))
    }

    /// Iterator over `(sample, &NeighborList)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &NeighborList)> {
        self.lists.iter().enumerate()
    }

    /// Replaces the neighbour list of sample `i` wholesale (used by
    /// construction algorithms that build candidate lists off to the side).
    pub fn set_list(&mut self, i: usize, list: NeighborList) {
        self.lists[i] = list;
    }

    /// Appends a new, empty node to the graph and returns its index (used by
    /// online/incremental extensions that grow the dataset after the graph
    /// has been built).
    pub fn add_node(&mut self) -> usize {
        self.lists.push(NeighborList::with_capacity(self.k));
        self.lists.len() - 1
    }

    /// Average number of stored neighbours per sample; equals `k` once every
    /// list is full.
    pub fn mean_degree(&self) -> f64 {
        if self.lists.is_empty() {
            return 0.0;
        }
        let total: usize = self.lists.iter().map(NeighborList::len).sum();
        total as f64 / self.lists.len() as f64
    }

    /// Total number of distance entries stored — the graph's memory footprint
    /// driver (the paper argues Alg. 3 needs only this extra memory).
    pub fn stored_edges(&self) -> usize {
        self.lists.iter().map(NeighborList::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_sorted_and_bounded() {
        let mut list = NeighborList::with_capacity(3);
        assert!(list.insert(Neighbor::new(1, 5.0)));
        assert!(list.insert(Neighbor::new(2, 1.0)));
        assert!(list.insert(Neighbor::new(3, 3.0)));
        assert!(list.is_full());
        // worse than the worst: rejected
        assert!(!list.insert(Neighbor::new(4, 9.0)));
        // better: accepted, evicts the worst
        assert!(list.insert(Neighbor::new(5, 2.0)));
        let ids: Vec<u32> = list.ids().collect();
        assert_eq!(ids, vec![2, 5, 3]);
        let dists: Vec<f32> = list.as_slice().iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut list = NeighborList::with_capacity(4);
        assert!(list.insert(Neighbor::new(7, 2.0)));
        assert!(!list.insert(Neighbor::new(7, 1.0)));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn zero_capacity_list_rejects_everything() {
        let mut list = NeighborList::with_capacity(0);
        assert!(!list.insert(Neighbor::new(1, 0.5)));
        assert!(list.is_empty());
    }

    #[test]
    fn upper_bound_transitions() {
        let mut list = NeighborList::with_capacity(2);
        assert_eq!(list.upper_bound(), f32::INFINITY);
        list.insert(Neighbor::new(0, 4.0));
        assert_eq!(list.upper_bound(), f32::INFINITY);
        list.insert(Neighbor::new(1, 2.0));
        assert_eq!(list.upper_bound(), 4.0);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut list = NeighborList::with_capacity(2);
        list.insert(Neighbor::new(0, 1.0));
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.capacity(), 2);
    }

    #[test]
    fn tie_break_is_by_id() {
        let mut list = NeighborList::with_capacity(3);
        list.insert(Neighbor::new(9, 1.0));
        list.insert(Neighbor::new(3, 1.0));
        let ids: Vec<u32> = list.ids().collect();
        assert_eq!(ids, vec![3, 9]);
    }

    #[test]
    fn graph_update_rejects_self_loop() {
        let mut g = KnnGraph::empty(4, 2);
        assert!(!g.update(1, 1, 0.0));
        assert!(g.update(1, 2, 1.0));
        assert_eq!(g.neighbors(1).len(), 1);
    }

    #[test]
    fn graph_update_pair_is_symmetric() {
        let mut g = KnnGraph::empty(4, 2);
        assert_eq!(g.update_pair(0, 3, 2.0), 2);
        assert_eq!(g.neighbors(0).ids().collect::<Vec<_>>(), vec![3]);
        assert_eq!(g.neighbors(3).ids().collect::<Vec<_>>(), vec![0]);
        // second identical update changes nothing
        assert_eq!(g.update_pair(0, 3, 2.0), 0);
    }

    #[test]
    fn graph_metrics() {
        let mut g = KnnGraph::empty(3, 2);
        assert!(!g.is_empty());
        assert_eq!(g.len(), 3);
        assert_eq!(g.k(), 2);
        assert_eq!(g.mean_degree(), 0.0);
        g.update_pair(0, 1, 1.0);
        g.update(2, 0, 3.0);
        assert_eq!(g.stored_edges(), 3);
        assert!((g.mean_degree() - 1.0).abs() < 1e-9);
        let empty = KnnGraph::empty(0, 2);
        assert!(empty.is_empty());
        assert_eq!(empty.mean_degree(), 0.0);
    }

    #[test]
    fn set_list_replaces() {
        let mut g = KnnGraph::empty(2, 2);
        let mut list = NeighborList::with_capacity(2);
        list.insert(Neighbor::new(1, 0.25));
        g.set_list(0, list);
        assert_eq!(g.neighbors(0).ids().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_enumerates_all_samples() {
        let g = KnnGraph::empty(5, 3);
        let indices: Vec<usize> = g.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }
}
