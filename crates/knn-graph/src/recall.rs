//! Graph-quality measures.
//!
//! The paper's evaluation protocol (Sec. 5.1) measures the **average recall of
//! the top-1 nearest neighbour**: for each sample, does the approximate graph
//! contain the true nearest neighbour anywhere in its κ-list?  For VLAD10M the
//! recall is estimated from 100 random samples instead of the full set; both
//! forms are provided here.

use crate::graph::{KnnGraph, Neighbor};

/// Average top-1 recall of `approx` against the exact graph `exact`.
///
/// For each sample the true nearest neighbour (first entry of the exact list)
/// is looked up in the approximate list; recall is the fraction of samples
/// where it is present.  Samples whose exact list is empty are skipped.
pub fn graph_recall_at_1(approx: &KnnGraph, exact: &KnnGraph) -> f64 {
    assert_eq!(approx.len(), exact.len(), "graph size mismatch");
    let mut hits = 0usize;
    let mut total = 0usize;
    for i in 0..exact.len() {
        let Some(true_nn) = exact.neighbors(i).as_slice().first() else {
            continue;
        };
        total += 1;
        if approx.neighbors(i).ids().any(|id| id == true_nn.id) {
            hits += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

/// Average recall@`r`: fraction of the true top-`r` neighbours that appear in
/// the approximate list, averaged over samples.
pub fn graph_recall_at_r(approx: &KnnGraph, exact: &KnnGraph, r: usize) -> f64 {
    assert_eq!(approx.len(), exact.len(), "graph size mismatch");
    assert!(r > 0, "r must be positive");
    let mut sum = 0.0f64;
    let mut total = 0usize;
    for i in 0..exact.len() {
        let truth = exact.neighbors(i).as_slice();
        if truth.is_empty() {
            continue;
        }
        let take = r.min(truth.len());
        total += 1;
        let approx_ids: std::collections::HashSet<u32> = approx.neighbors(i).ids().collect();
        let hit = truth
            .iter()
            .take(take)
            .filter(|n| approx_ids.contains(&n.id))
            .count();
        sum += hit as f64 / take as f64;
    }
    if total == 0 {
        return 0.0;
    }
    sum / total as f64
}

/// Estimated top-1 recall over a subset of samples, given the exact
/// neighbours of just those samples (Sec. 5.1's protocol for VLAD10M, where
/// the full ground truth is too expensive).
///
/// `subset_truth[s]` must hold the exact neighbours (descending closeness) of
/// sample `sample_ids[s]`.
pub fn estimated_recall_at_1(
    approx: &KnnGraph,
    sample_ids: &[usize],
    subset_truth: &[Vec<Neighbor>],
) -> f64 {
    assert_eq!(sample_ids.len(), subset_truth.len(), "subset size mismatch");
    let mut hits = 0usize;
    let mut total = 0usize;
    for (s, &i) in sample_ids.iter().enumerate() {
        let Some(true_nn) = subset_truth[s].first() else {
            continue;
        };
        total += 1;
        if approx.neighbors(i).ids().any(|id| id == true_nn.id) {
            hits += 1;
        }
    }
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

/// Recall of retrieved neighbour id lists against ground-truth lists — used by
/// the ANN-search evaluation where results come from a query, not from the
/// graph itself.  Returns recall@`r` averaged over queries.
pub fn list_recall(results: &[Vec<u32>], truth: &[Vec<Neighbor>], r: usize) -> f64 {
    assert_eq!(results.len(), truth.len(), "query count mismatch");
    assert!(r > 0, "r must be positive");
    if results.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for (res, tru) in results.iter().zip(truth) {
        let take = r.min(tru.len());
        if take == 0 {
            continue;
        }
        let res_set: std::collections::HashSet<u32> = res.iter().take(r).copied().collect();
        let hit = tru
            .iter()
            .take(take)
            .filter(|n| res_set.contains(&n.id))
            .count();
        sum += hit as f64 / take as f64;
    }
    sum / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Neighbor;

    fn graph_from_lists(lists: &[&[(u32, f32)]], k: usize) -> KnnGraph {
        let mut g = KnnGraph::empty(lists.len(), k);
        for (i, list) in lists.iter().enumerate() {
            for &(id, d) in *list {
                g.neighbors_mut(i).insert(Neighbor::new(id, d));
            }
        }
        g
    }

    #[test]
    fn perfect_recall_when_identical() {
        let exact = graph_from_lists(&[&[(1, 1.0), (2, 2.0)], &[(0, 1.0)], &[(0, 2.0)]], 2);
        assert_eq!(graph_recall_at_1(&exact, &exact), 1.0);
        assert_eq!(graph_recall_at_r(&exact, &exact, 2), 1.0);
    }

    #[test]
    fn recall_counts_presence_anywhere_in_list() {
        // approx has the true NN of sample 0 in second position → still a hit
        let exact = graph_from_lists(&[&[(1, 1.0), (2, 2.0)]], 2);
        let approx = graph_from_lists(&[&[(2, 0.5), (1, 1.0)]], 2);
        assert_eq!(graph_recall_at_1(&approx, &exact), 1.0);
    }

    #[test]
    fn recall_zero_when_disjoint() {
        let exact = graph_from_lists(&[&[(1, 1.0)], &[(0, 1.0)]], 1);
        let approx = graph_from_lists(&[&[(0, 9.0)], &[(1, 9.0)]], 1);
        // approx lists contain only self-ish wrong ids (0 for 0's list is
        // impossible via public API, but set manually here it simply misses)
        assert_eq!(graph_recall_at_1(&approx, &exact), 0.0);
    }

    #[test]
    fn recall_at_r_is_fractional() {
        let exact = graph_from_lists(&[&[(1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)]], 4);
        let approx = graph_from_lists(&[&[(1, 1.0), (9, 1.5), (3, 3.0), (8, 3.5)]], 4);
        let r = graph_recall_at_r(&approx, &exact, 4);
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_exact_lists_are_skipped() {
        let exact = KnnGraph::empty(3, 2);
        let approx = KnnGraph::empty(3, 2);
        assert_eq!(graph_recall_at_1(&approx, &exact), 0.0);
        assert_eq!(graph_recall_at_r(&approx, &exact, 2), 0.0);
    }

    #[test]
    fn estimated_recall_uses_subset() {
        let approx = graph_from_lists(&[&[(1, 1.0)], &[(2, 1.0)], &[(0, 1.0)]], 1);
        let ids = vec![0usize, 2usize];
        let truth = vec![vec![Neighbor::new(1, 1.0)], vec![Neighbor::new(1, 0.5)]];
        // sample 0: true nn 1 present → hit; sample 2: true nn 1 absent → miss
        assert_eq!(estimated_recall_at_1(&approx, &ids, &truth), 0.5);
    }

    #[test]
    fn list_recall_for_query_results() {
        let truth = vec![
            vec![Neighbor::new(3, 0.1), Neighbor::new(5, 0.2)],
            vec![Neighbor::new(8, 0.3), Neighbor::new(9, 0.4)],
        ];
        let results = vec![vec![3u32, 7u32], vec![1u32, 2u32]];
        assert_eq!(list_recall(&results, &truth, 1), 0.5);
        assert_eq!(list_recall(&results, &truth, 2), 0.25);
        assert_eq!(list_recall(&Vec::new(), &Vec::new(), 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "graph size mismatch")]
    fn size_mismatch_panics() {
        let a = KnnGraph::empty(2, 1);
        let b = KnnGraph::empty(3, 1);
        let _ = graph_recall_at_1(&a, &b);
    }
}
