//! NN-Descent ("KGraph") approximate KNN graph construction.
//!
//! Re-implementation of Dong, Moses & Li, *Efficient k-nearest neighbor graph
//! construction for generic similarity measures*, WWW 2011 — the algorithm the
//! paper uses for its "KGraph+GK-means" baseline runs and compares Alg. 3
//! against in construction cost (Sec. 4.3, Sec. 5.2).
//!
//! The implementation follows the standard formulation: start from a random
//! graph and iteratively perform *local joins* — for every sample, compare the
//! pairs among its (sampled) new forward and reverse neighbours, exploiting
//! the observation that "a neighbour of a neighbour is also likely to be a
//! neighbour".  Iterations stop when the fraction of list updates drops below
//! `delta` or after `max_iters` rounds.

use rand::seq::SliceRandom;

use vecstore::kernels;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::graph::{KnnGraph, Neighbor};
use crate::random::random_graph;

/// Tuning parameters for NN-Descent.
#[derive(Clone, Copy, Debug)]
pub struct NnDescentParams {
    /// Neighbour-list size κ of the produced graph.
    pub k: usize,
    /// Sample rate ρ for the local-join candidate sets (the original paper
    /// recommends 0.5–1.0; smaller is faster but converges more slowly).
    pub sample_rate: f64,
    /// Early-termination threshold: stop when fewer than `delta · n · k`
    /// updates happened in a round.
    pub delta: f64,
    /// Hard cap on the number of rounds.
    pub max_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NnDescentParams {
    fn default() -> Self {
        Self {
            k: 10,
            sample_rate: 0.8,
            delta: 0.001,
            max_iters: 12,
            seed: 0x5eed,
        }
    }
}

impl NnDescentParams {
    /// Convenience constructor fixing `k` and keeping the remaining defaults.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

/// Per-round bookkeeping: which neighbours are "new" since the last round
/// (only pairs involving at least one new entry need to be joined).
struct Flags {
    new_mark: Vec<Vec<bool>>,
}

impl Flags {
    fn all_new(graph: &KnnGraph) -> Self {
        Self {
            new_mark: (0..graph.len())
                .map(|i| vec![true; graph.neighbors(i).len()])
                .collect(),
        }
    }
}

/// Statistics of a construction run, useful for cost accounting in the
/// experiment harness (the paper's Fig. 5(b)/(d)/(f) time axis includes graph
/// construction cost).
#[derive(Clone, Copy, Debug, Default)]
pub struct NnDescentStats {
    /// Number of executed refinement rounds.
    pub rounds: usize,
    /// Total number of distance evaluations.
    pub distance_evals: u64,
    /// Total number of successful list updates.
    pub updates: u64,
}

/// Runs NN-Descent and returns the graph.
pub fn nn_descent(data: &VectorSet, params: &NnDescentParams) -> KnnGraph {
    nn_descent_with_stats(data, params).0
}

/// Runs NN-Descent and additionally reports counters.
pub fn nn_descent_with_stats(
    data: &VectorSet,
    params: &NnDescentParams,
) -> (KnnGraph, NnDescentStats) {
    let n = data.len();
    let k = params.k;
    let mut stats = NnDescentStats::default();
    if n == 0 || k == 0 {
        return (KnnGraph::empty(n, k), stats);
    }
    let mut rng = rng_from_seed(params.seed);
    let mut graph = random_graph(data, k, params.seed ^ 0x9e3779b97f4a7c15);
    let mut flags = Flags::all_new(&graph);

    let sample_size = ((k as f64) * params.sample_rate).ceil().max(1.0) as usize;
    let termination = (params.delta * n as f64 * k as f64).max(1.0) as u64;

    for round in 0..params.max_iters {
        stats.rounds = round + 1;
        // Build sampled new/old forward lists and reverse lists.
        let mut new_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut new_rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_rev: Vec<Vec<u32>> = vec![Vec::new(); n];

        for i in 0..n {
            let list = graph.neighbors(i);
            for (slot, nb) in list.as_slice().iter().enumerate() {
                if flags.new_mark[i][slot] {
                    new_fwd[i].push(nb.id);
                    new_rev[nb.id as usize].push(i as u32);
                } else {
                    old_fwd[i].push(nb.id);
                    old_rev[nb.id as usize].push(i as u32);
                }
            }
        }
        // Sample the reverse lists to bound the join size.
        for list in new_rev.iter_mut().chain(old_rev.iter_mut()) {
            if list.len() > sample_size {
                list.shuffle(&mut rng);
                list.truncate(sample_size);
            }
        }

        let mut round_updates: u64 = 0;
        let mut targets: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        let dim = data.dim();
        for i in 0..n {
            // Mark current entries as old for the next round *before* local
            // joins add new ones.
            for m in flags.new_mark[i].iter_mut() {
                *m = false;
            }

            let mut new_set: Vec<u32> = new_fwd[i]
                .iter()
                .chain(new_rev[i].iter())
                .copied()
                .collect();
            new_set.sort_unstable();
            new_set.dedup();
            if new_set.len() > sample_size * 2 {
                new_set.shuffle(&mut rng);
                new_set.truncate(sample_size * 2);
            }
            let mut old_set: Vec<u32> = old_fwd[i]
                .iter()
                .chain(old_rev[i].iter())
                .copied()
                .collect();
            old_set.sort_unstable();
            old_set.dedup();
            if old_set.len() > sample_size * 2 {
                old_set.shuffle(&mut rng);
                old_set.truncate(sample_size * 2);
            }

            // Local join: new × new and new × old.  All partners of one
            // anchor are scored in a single batched gather (the graph only
            // changes list contents, never the data the distances read), then
            // the list updates run in the original pair order.
            for (ai, &a) in new_set.iter().enumerate() {
                targets.clear();
                targets.extend(new_set.iter().skip(ai + 1).copied().filter(|&b| b != a));
                targets.extend(old_set.iter().copied().filter(|&b| b != a));
                if targets.is_empty() {
                    continue;
                }
                dists.resize(targets.len(), 0.0);
                kernels::l2_sq_one_to_many_indexed(
                    data.row(a as usize),
                    data.as_flat(),
                    dim,
                    &targets,
                    &mut dists,
                );
                stats.distance_evals += targets.len() as u64;
                for (&b, &d) in targets.iter().zip(&dists) {
                    round_updates += apply_join(&mut graph, &mut flags, a, b, d);
                }
            }
        }
        stats.updates += round_updates;
        if round_updates < termination {
            break;
        }
    }
    (graph, stats)
}

/// Applies a scored pair `a ↔ b` (distance `d`) to both lists; returns how
/// many lists changed.
fn apply_join(graph: &mut KnnGraph, flags: &mut Flags, a: u32, b: u32, d: f32) -> u64 {
    let (ai, bi) = (a as usize, b as usize);
    let mut changed = 0u64;
    if insert_tracked(graph, flags, ai, Neighbor::new(b, d)) {
        changed += 1;
    }
    if insert_tracked(graph, flags, bi, Neighbor::new(a, d)) {
        changed += 1;
    }
    changed
}

/// Inserts into a list while keeping the `new` flags aligned with the list
/// entries (an insert shifts/evicts entries, so flags are rebuilt from the
/// resulting list).
fn insert_tracked(graph: &mut KnnGraph, flags: &mut Flags, i: usize, cand: Neighbor) -> bool {
    let before: Vec<u32> = graph.neighbors(i).ids().collect();
    if !graph.neighbors_mut(i).insert(cand) {
        return false;
    }
    let after: Vec<u32> = graph.neighbors(i).ids().collect();
    let old_flags = std::mem::take(&mut flags.new_mark[i]);
    let lookup: std::collections::HashMap<u32, bool> = before
        .iter()
        .copied()
        .zip(old_flags.iter().copied())
        .collect();
    flags.new_mark[i] = after
        .iter()
        .map(|id| {
            if *id == cand.id {
                true
            } else {
                *lookup.get(id).unwrap_or(&true)
            }
        })
        .collect();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_graph;
    use crate::recall::graph_recall_at_1;
    use rand::Rng;
    use vecstore::distance::l2_sq;

    fn clustered(n: usize, seed: u64) -> VectorSet {
        // Simple two-moons-ish clustered data without depending on datagen
        // (which would create a dev-dependency cycle).
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let centre = (i % 8) as f32 * 10.0;
            let jitter: f32 = rng.gen_range(-1.0..1.0);
            let jitter2: f32 = rng.gen_range(-1.0..1.0);
            rows.push(vec![
                centre + jitter,
                centre * 0.5 + jitter2,
                jitter * jitter2,
            ]);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn nn_descent_beats_random_initialisation() {
        let data = clustered(400, 1);
        let exact = exact_graph(&data, 5);
        let random = random_graph(&data, 5, 2);
        let (approx, stats) = nn_descent_with_stats(&data, &NnDescentParams::with_k(5));
        let recall_random = graph_recall_at_1(&random, &exact);
        let recall_nnd = graph_recall_at_1(&approx, &exact);
        assert!(stats.rounds >= 1);
        assert!(stats.distance_evals > 0);
        assert!(
            recall_nnd > recall_random + 0.3,
            "nn-descent {recall_nnd} vs random {recall_random}"
        );
        assert!(recall_nnd > 0.8, "expected high recall, got {recall_nnd}");
    }

    #[test]
    fn produced_graph_has_requested_degree() {
        let data = clustered(100, 3);
        let g = nn_descent(&data, &NnDescentParams::with_k(4));
        for (i, list) in g.iter() {
            assert_eq!(list.len(), 4);
            assert!(list.ids().all(|id| id as usize != i));
            // distances must be exact squared euclidean for stored pairs
            for nb in list.as_slice() {
                assert_eq!(nb.dist, l2_sq(data.row(i), data.row(nb.id as usize)));
            }
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let data = clustered(150, 5);
        let p = NnDescentParams {
            k: 4,
            seed: 99,
            ..Default::default()
        };
        let a = nn_descent(&data, &p);
        let b = nn_descent(&data, &p);
        for i in 0..data.len() {
            assert_eq!(
                a.neighbors(i).ids().collect::<Vec<_>>(),
                b.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty = VectorSet::zeros(0, 4).unwrap();
        let g = nn_descent(&empty, &NnDescentParams::with_k(3));
        assert_eq!(g.len(), 0);
        let single = VectorSet::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let g = nn_descent(&single, &NnDescentParams::with_k(3));
        assert_eq!(g.len(), 1);
        assert!(g.neighbors(0).is_empty());
    }
}
