//! Compact binary serialisation of KNN graphs.
//!
//! Graph construction is the dominant cost of the GK-means pipeline (Tab. 2:
//! the init phase), so the harness caches built graphs on disk between
//! experiment runs.  The format is a simple little-endian layout:
//!
//! ```text
//! u64 n | u64 k | n × ( u32 len | len × (u32 id, f32 dist) )
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::{KnnGraph, Neighbor, NeighborList};

/// Largest neighbour-list capacity the deserializer accepts.  Real KNN graphs
/// use κ in the tens; the bound only exists so a corrupted header cannot
/// request a gigantic allocation.
const MAX_GRAPH_K: usize = 1 << 16;

/// Errors produced by graph (de)serialisation.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is truncated or structurally inconsistent.
    Malformed(String),
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Malformed(msg) => write!(f, "malformed graph file: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<std::io::Error> for GraphIoError {
    fn from(e: std::io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

/// Writes a graph to a file.
pub fn write_graph(path: impl AsRef<Path>, graph: &KnnGraph) -> Result<(), GraphIoError> {
    let file = File::create(path)?;
    write_graph_to(BufWriter::new(file), graph)
}

/// Writes a graph to an arbitrary writer.
pub fn write_graph_to(mut w: impl Write, graph: &KnnGraph) -> Result<(), GraphIoError> {
    w.write_all(&(graph.len() as u64).to_le_bytes())?;
    w.write_all(&(graph.k() as u64).to_le_bytes())?;
    for (_, list) in graph.iter() {
        w.write_all(&(list.len() as u32).to_le_bytes())?;
        for nb in list.as_slice() {
            w.write_all(&nb.id.to_le_bytes())?;
            w.write_all(&nb.dist.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from a file.
pub fn read_graph(path: impl AsRef<Path>) -> Result<KnnGraph, GraphIoError> {
    let file = File::open(path)?;
    read_graph_from(BufReader::new(file))
}

/// Reads a graph from an arbitrary reader.
pub fn read_graph_from(mut r: impl Read) -> Result<KnnGraph, GraphIoError> {
    let mut header = [0u8; 16];
    r.read_exact(&mut header)
        .map_err(|e| GraphIoError::Malformed(format!("truncated header: {e}")))?;
    let n = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes")) as usize;
    let k = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
    if k > MAX_GRAPH_K {
        return Err(GraphIoError::Malformed(format!(
            "header declares k = {k}, which exceeds the supported maximum {MAX_GRAPH_K}"
        )));
    }
    if n as u64 > u64::from(u32::MAX) {
        return Err(GraphIoError::Malformed(format!(
            "header declares {n} nodes, which exceeds the u32 id space of the format"
        )));
    }
    // Lists are built one at a time so memory use is bounded by what the file
    // actually contains — a corrupted header cannot trigger a giant upfront
    // allocation.
    let mut lists: Vec<NeighborList> = Vec::new();
    let mut len_buf = [0u8; 4];
    let mut entry = [0u8; 8];
    for i in 0..n {
        r.read_exact(&mut len_buf).map_err(|e| {
            GraphIoError::Malformed(format!("truncated list header at node {i}: {e}"))
        })?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > k {
            return Err(GraphIoError::Malformed(format!(
                "node {i} declares {len} neighbours but k = {k}"
            )));
        }
        let mut list = NeighborList::with_capacity(k);
        for _ in 0..len {
            r.read_exact(&mut entry).map_err(|e| {
                GraphIoError::Malformed(format!("truncated entry at node {i}: {e}"))
            })?;
            let id = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let dist = f32::from_le_bytes(entry[4..8].try_into().expect("4 bytes"));
            if id as usize >= n {
                return Err(GraphIoError::Malformed(format!(
                    "node {i} references out-of-range neighbour {id}"
                )));
            }
            list.insert(Neighbor::new(id, dist));
        }
        lists.push(list);
    }
    Ok(KnnGraph::from_lists(lists, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_graph() -> KnnGraph {
        let mut g = KnnGraph::empty(5, 3);
        g.update_pair(0, 1, 1.0);
        g.update_pair(0, 2, 4.0);
        g.update_pair(1, 3, 2.5);
        g.update(4, 0, 9.0);
        g
    }

    #[test]
    fn round_trip_preserves_structure() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph_to(&mut buf, &g).unwrap();
        let back = read_graph_from(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), g.len());
        assert_eq!(back.k(), g.k());
        for i in 0..g.len() {
            assert_eq!(
                back.neighbors(i).as_slice(),
                g.neighbors(i).as_slice(),
                "node {i}"
            );
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_graph_to(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_graph_from(Cursor::new(buf)),
            Err(GraphIoError::Malformed(_))
        ));
    }

    #[test]
    fn out_of_range_neighbour_is_rejected() {
        // hand-craft: n=1, k=1, one entry pointing at id 7
        let mut buf = Vec::new();
        buf.extend(1u64.to_le_bytes());
        buf.extend(1u64.to_le_bytes());
        buf.extend(1u32.to_le_bytes());
        buf.extend(7u32.to_le_bytes());
        buf.extend(0.5f32.to_le_bytes());
        assert!(matches!(
            read_graph_from(Cursor::new(buf)),
            Err(GraphIoError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_list_is_rejected() {
        let mut buf = Vec::new();
        buf.extend(1u64.to_le_bytes());
        buf.extend(1u64.to_le_bytes());
        buf.extend(5u32.to_le_bytes()); // claims 5 neighbours with k = 1
        assert!(matches!(
            read_graph_from(Cursor::new(buf)),
            Err(GraphIoError::Malformed(_))
        ));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = KnnGraph::empty(0, 4);
        let mut buf = Vec::new();
        write_graph_to(&mut buf, &g).unwrap();
        let back = read_graph_from(Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.k(), 4);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("knn-graph-io-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.knng");
        let g = sample_graph();
        write_graph(&path, &g).unwrap();
        let back = read_graph(&path).unwrap();
        assert_eq!(back.stored_edges(), g.stored_edges());
        std::fs::remove_dir_all(&dir).ok();
    }
}
