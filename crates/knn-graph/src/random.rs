//! Random KNN graph initialisation.
//!
//! Alg. 3 line 4: "Initialize G⁰ with random lists".  Each sample receives
//! `k` distinct random neighbours (excluding itself) with their true squared
//! distances, so the very first refinement round already has meaningful
//! distances to compare against.

use rand::Rng;

use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::graph::{KnnGraph, Neighbor};

/// Builds a random graph with `k` neighbours per sample.
///
/// When the dataset holds fewer than `k + 1` samples every sample is simply
/// connected to all others.
pub fn random_graph(data: &VectorSet, k: usize, seed: u64) -> KnnGraph {
    let n = data.len();
    let mut rng = rng_from_seed(seed);
    let mut graph = KnnGraph::empty(n, k);
    if n <= 1 || k == 0 {
        return graph;
    }
    for i in 0..n {
        let xi = data.row(i);
        let want = k.min(n - 1);
        let mut chosen = std::collections::HashSet::with_capacity(want * 2);
        while chosen.len() < want {
            let j = rng.gen_range(0..n);
            if j != i {
                chosen.insert(j);
            }
        }
        for j in chosen {
            let d = l2_sq(xi, data.row(j));
            graph.neighbors_mut(i).insert(Neighbor::new(j as u32, d));
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> VectorSet {
        VectorSet::from_rows((0..n).map(|i| vec![i as f32, (i * i) as f32]).collect()).unwrap()
    }

    #[test]
    fn random_graph_has_full_lists() {
        let d = data(50);
        let g = random_graph(&d, 5, 3);
        assert_eq!(g.len(), 50);
        for (i, list) in g.iter() {
            assert_eq!(list.len(), 5);
            assert!(list.ids().all(|id| id as usize != i));
        }
    }

    #[test]
    fn random_graph_distances_are_correct() {
        let d = data(20);
        let g = random_graph(&d, 3, 7);
        for (i, list) in g.iter() {
            for nb in list.as_slice() {
                let expect = l2_sq(d.row(i), d.row(nb.id as usize));
                assert_eq!(nb.dist, expect);
            }
        }
    }

    #[test]
    fn random_graph_is_seeded() {
        let d = data(30);
        let a = random_graph(&d, 4, 11);
        let b = random_graph(&d, 4, 11);
        let c = random_graph(&d, 4, 12);
        for i in 0..30 {
            assert_eq!(
                a.neighbors(i).ids().collect::<Vec<_>>(),
                b.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
        // extremely unlikely to match entirely with a different seed
        let same = (0..30).all(|i| {
            a.neighbors(i).ids().collect::<Vec<_>>() == c.neighbors(i).ids().collect::<Vec<_>>()
        });
        assert!(!same);
    }

    #[test]
    fn tiny_datasets_connect_to_everyone() {
        let d = data(3);
        let g = random_graph(&d, 10, 5);
        for (i, list) in g.iter() {
            assert_eq!(list.len(), 2);
            assert!(list.ids().all(|id| id as usize != i));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let single = data(1);
        let g = random_graph(&single, 4, 0);
        assert_eq!(g.len(), 1);
        assert!(g.neighbors(0).is_empty());
        let d = data(5);
        let g = random_graph(&d, 0, 0);
        assert!(g.iter().all(|(_, l)| l.is_empty()));
    }
}
