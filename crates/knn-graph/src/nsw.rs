//! Navigable-small-world (NSW) graph construction.
//!
//! Re-implementation of the incremental small-world construction of Malkov &
//! Yashunin (ref. \[34\] of the paper, the single-layer core of HNSW).  The
//! paper compares the cost of its Alg. 3 against "small world graph
//! construction" (Sec. 4.3: *"it is at least two times faster than NN Descent
//! and small world graph construction"*) and against graph-based ANN search
//! methods (Sec. 4.3, ANNS claim).  This module provides that comparator:
//!
//! * points are inserted one at a time;
//! * each new point is located by a greedy best-first search over the graph
//!   built so far (`ef_construction` controls the beam width);
//! * the closest `m` results become bidirectional edges, and every affected
//!   adjacency list is pruned back to `m_max` entries by distance.
//!
//! The output is an ordinary [`KnnGraph`] (bounded, ascending-distance
//! neighbour lists), so it can be plugged straight into GK-means as an
//! alternative graph supplier or into the ANNS evaluation harness — exactly
//! how the paper treats third-party graphs.

use rand::seq::SliceRandom;

use vecstore::distance::l2_sq;
use vecstore::kernels;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::graph::{KnnGraph, Neighbor, NeighborList};

/// Tuning parameters of the NSW construction.
#[derive(Clone, Copy, Debug)]
pub struct NswParams {
    /// Number of edges created for every newly inserted point.
    pub m: usize,
    /// Maximum degree a node may keep after pruning (usually `2·m`).
    pub m_max: usize,
    /// Beam width of the insertion-time search; larger values produce better
    /// graphs at higher construction cost.
    pub ef_construction: usize,
    /// Number of random entry points used to seed each insertion search.
    pub entry_points: usize,
    /// RNG seed (entry-point choice and insertion order shuffling).
    pub seed: u64,
    /// Shuffle the insertion order.  The original algorithm inserts in data
    /// order; shuffling decorrelates the early graph from the dataset layout
    /// and is the common practical choice.
    pub shuffle: bool,
}

impl Default for NswParams {
    fn default() -> Self {
        Self {
            m: 10,
            m_max: 20,
            ef_construction: 48,
            entry_points: 4,
            seed: 0x5a11,
            shuffle: true,
        }
    }
}

impl NswParams {
    /// Convenience constructor fixing the out-degree `m` (and `m_max = 2m`).
    pub fn with_m(m: usize) -> Self {
        Self {
            m,
            m_max: 2 * m,
            ..Self::default()
        }
    }

    /// Sets the construction beam width.
    #[must_use]
    pub fn ef_construction(mut self, ef: usize) -> Self {
        self.ef_construction = ef.max(1);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables insertion-order shuffling.
    #[must_use]
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }
}

/// Cost counters of one NSW construction run, comparable with
/// [`crate::nn_descent::NnDescentStats`] and the Alg. 3 construction stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct NswStats {
    /// Number of inserted points.
    pub inserted: usize,
    /// Total number of distance evaluations (search + pruning).
    pub distance_evals: u64,
    /// Total number of edges written (before pruning).
    pub edges_added: u64,
}

/// Builds an NSW graph over `data` and returns it as a [`KnnGraph`] whose
/// neighbour-list capacity is `params.m_max`.
pub fn nsw_build(data: &VectorSet, params: &NswParams) -> KnnGraph {
    nsw_build_with_stats(data, params).0
}

/// [`nsw_build`] plus cost counters.
pub fn nsw_build_with_stats(data: &VectorSet, params: &NswParams) -> (KnnGraph, NswStats) {
    let n = data.len();
    let mut stats = NswStats::default();
    let m = params.m.max(1);
    let m_max = params.m_max.max(m);
    let mut graph = KnnGraph::empty(n, m_max);
    if n == 0 {
        return (graph, stats);
    }

    let mut rng = rng_from_seed(params.seed);
    let mut order: Vec<usize> = (0..n).collect();
    if params.shuffle {
        order.shuffle(&mut rng);
    }

    // Points inserted so far, in insertion order (entry points are drawn from
    // this list so the search never touches not-yet-inserted nodes).
    let mut inserted: Vec<usize> = Vec::with_capacity(n);
    let mut visited = vec![u32::MAX; n];

    for (step, &node) in order.iter().enumerate() {
        stats.inserted += 1;
        if inserted.is_empty() {
            inserted.push(node);
            continue;
        }
        let query = data.row(node);
        let neighbours = search_inserted(
            data,
            &graph,
            &inserted,
            query,
            params,
            step as u32,
            &mut visited,
            &mut rng,
            &mut stats,
        );

        // Connect to the closest `m` results, bidirectionally, pruning each
        // touched list back to `m_max`.
        for nb in neighbours.iter().take(m) {
            graph.update(node, nb.id as usize, nb.dist);
            graph.update(nb.id as usize, node, nb.dist);
            stats.edges_added += 2;
        }
        inserted.push(node);
    }

    (graph, stats)
}

/// Greedy best-first search restricted to already-inserted nodes.  Returns the
/// `ef_construction` best candidates in ascending-distance order.
#[allow(clippy::too_many_arguments)]
fn search_inserted(
    data: &VectorSet,
    graph: &KnnGraph,
    inserted: &[usize],
    query: &[f32],
    params: &NswParams,
    epoch: u32,
    visited: &mut [u32],
    rng: &mut impl rand::Rng,
    stats: &mut NswStats,
) -> Vec<Neighbor> {
    let ef = params.ef_construction.max(params.m);
    let mut pool: Vec<Neighbor> = Vec::with_capacity(ef + 1);

    let entries = params.entry_points.clamp(1, inserted.len());
    for _ in 0..entries {
        let id = *inserted
            .get(rng.gen_range(0..inserted.len()))
            .expect("inserted is non-empty");
        if visited[id] == epoch {
            continue;
        }
        visited[id] = epoch;
        let d = l2_sq(query, data.row(id));
        stats.distance_evals += 1;
        insert_bounded(&mut pool, Neighbor::new(id as u32, d), ef);
    }

    // Expanded flags are tracked positionally against the pool contents via a
    // dense per-node map local to this search; the pool is tiny (≤ ef), so a
    // linear scan keeps the code simple.
    let mut expanded_ids: Vec<u32> = Vec::with_capacity(ef);
    let mut frontier: Vec<u32> = Vec::new();
    let mut dists: Vec<f32> = Vec::new();
    let dim = data.dim();
    loop {
        let next = pool.iter().find(|c| !expanded_ids.contains(&c.id)).copied();
        let Some(candidate) = next else { break };
        expanded_ids.push(candidate.id);
        if pool.len() >= ef && candidate.dist > pool[pool.len() - 1].dist {
            break;
        }
        // Score all unvisited neighbours of the expanded node in one batched
        // gather, then feed the pool in the original neighbour order.
        frontier.clear();
        for nb in graph.neighbors(candidate.id as usize).as_slice() {
            let id = nb.id as usize;
            if visited[id] == epoch {
                continue;
            }
            visited[id] = epoch;
            frontier.push(nb.id);
        }
        if frontier.is_empty() {
            continue;
        }
        dists.resize(frontier.len(), 0.0);
        kernels::l2_sq_one_to_many_indexed(query, data.as_flat(), dim, &frontier, &mut dists);
        stats.distance_evals += frontier.len() as u64;
        for (&id, &d) in frontier.iter().zip(&dists) {
            insert_bounded(&mut pool, Neighbor::new(id, d), ef);
        }
    }
    pool
}

/// Inserts into an ascending-by-distance pool bounded to `cap` entries.
fn insert_bounded(pool: &mut Vec<Neighbor>, cand: Neighbor, cap: usize) {
    if pool.iter().any(|n| n.id == cand.id) {
        return;
    }
    if pool.len() >= cap {
        if let Some(worst) = pool.last() {
            if cand.dist >= worst.dist {
                return;
            }
        }
    }
    let pos = pool.partition_point(|n| (n.dist, n.id) < (cand.dist, cand.id));
    pool.insert(pos, cand);
    if pool.len() > cap {
        pool.pop();
    }
}

/// Converts an NSW graph (degree `m_max`) into a graph whose lists are
/// truncated to `k` entries — useful when GK-means only consults the first κ
/// neighbours and a smaller structure is preferred.
pub fn truncate_to_k(graph: &KnnGraph, k: usize) -> KnnGraph {
    let mut out = KnnGraph::empty(graph.len(), k);
    for (i, list) in graph.iter() {
        let mut new_list = NeighborList::with_capacity(k);
        for nb in list.as_slice().iter().take(k) {
            new_list.insert(*nb);
        }
        out.set_list(i, new_list);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::exact_graph;
    use crate::recall::graph_recall_at_1;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 12) as f32 * 1.5;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn builds_graph_covering_every_node() {
        let data = clustered(400, 6, 1);
        let graph = nsw_build(&data, &NswParams::with_m(8).seed(2));
        assert_eq!(graph.len(), 400);
        // every node except possibly the very first one has neighbours
        let empty_lists = graph.iter().filter(|(_, l)| l.is_empty()).count();
        assert!(empty_lists <= 1, "{empty_lists} empty adjacency lists");
        assert!(graph.mean_degree() >= 6.0);
    }

    #[test]
    fn recall_is_well_above_random_and_improves_with_ef() {
        let data = clustered(600, 8, 3);
        let exact = exact_graph(&data, 5);
        let low = nsw_build(&data, &NswParams::with_m(8).ef_construction(8).seed(4));
        let high = nsw_build(&data, &NswParams::with_m(8).ef_construction(96).seed(4));
        let r_low = graph_recall_at_1(&truncate_to_k(&low, 5), &exact);
        let r_high = graph_recall_at_1(&truncate_to_k(&high, 5), &exact);
        assert!(r_high > 0.6, "high-ef recall too low: {r_high}");
        assert!(
            r_high >= r_low - 0.05,
            "ef=96 ({r_high}) worse than ef=8 ({r_low})"
        );
    }

    #[test]
    fn stats_account_for_cost() {
        let data = clustered(300, 5, 5);
        let (graph, stats) = nsw_build_with_stats(&data, &NswParams::with_m(6).seed(6));
        assert_eq!(stats.inserted, 300);
        assert!(stats.distance_evals > 0);
        assert!(stats.edges_added > 0);
        assert!(graph.stored_edges() > 0);
        // pruned graph never exceeds the configured maximum degree
        for (_, list) in graph.iter() {
            assert!(list.len() <= 12);
        }
    }

    #[test]
    fn truncate_keeps_closest_entries() {
        let data = clustered(200, 4, 7);
        let graph = nsw_build(&data, &NswParams::with_m(8).seed(8));
        let truncated = truncate_to_k(&graph, 3);
        assert_eq!(truncated.k(), 3);
        for (i, list) in truncated.iter() {
            assert!(list.len() <= 3);
            let full = graph.neighbors(i).as_slice();
            for (a, b) in list.as_slice().iter().zip(full.iter()) {
                assert_eq!(a.id, b.id);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = clustered(150, 4, 9);
        let a = nsw_build(&data, &NswParams::with_m(5).seed(11));
        let b = nsw_build(&data, &NswParams::with_m(5).seed(11));
        for i in 0..data.len() {
            assert_eq!(
                a.neighbors(i).ids().collect::<Vec<_>>(),
                b.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn handles_tiny_and_empty_inputs() {
        let empty = VectorSet::zeros(0, 4).unwrap();
        let (g, stats) = nsw_build_with_stats(&empty, &NswParams::default());
        assert_eq!(g.len(), 0);
        assert_eq!(stats.inserted, 0);

        let tiny = clustered(3, 3, 13);
        let g = nsw_build(&tiny, &NswParams::with_m(2).seed(1));
        assert_eq!(g.len(), 3);
        assert!(g.mean_degree() > 0.0);
    }

    #[test]
    fn unshuffled_insertion_also_connects_the_graph() {
        let data = clustered(250, 5, 15);
        let graph = nsw_build(&data, &NswParams::with_m(6).seed(3).shuffle(false));
        let empty_lists = graph.iter().filter(|(_, l)| l.is_empty()).count();
        assert!(empty_lists <= 1);
    }
}
