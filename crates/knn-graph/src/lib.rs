//! K-nearest-neighbour graph substrate.
//!
//! A KNN graph stores, for each of the `n` samples, a list of its `κ`
//! (approximate) nearest neighbours together with the squared distances.  It
//! is the central data structure of the paper: GK-means (Alg. 2) consults it
//! to restrict the candidate clusters of a sample, and Alg. 3 constructs it by
//! repeatedly clustering the data.
//!
//! This crate provides:
//!
//! * [`graph::KnnGraph`] and [`graph::NeighborList`] — the graph itself, with
//!   bounded ordered insertion and visited-pair deduplication;
//! * [`brute`] — exact construction by exhaustive comparison (the ground
//!   truth used for recall, Sec. 5.1), parallelised with rayon because it is
//!   `O(n²·d)` and only used for evaluation;
//! * [`random`] — random initial graphs (Alg. 3 line 4);
//! * [`nn_descent`] — an NN-Descent ("KGraph") implementation used for the
//!   "KGraph+GK-means" baseline runs;
//! * [`nsw`] — navigable-small-world incremental construction (Malkov &
//!   Yashunin, ref. \[34\]), the other third-party construction method the
//!   paper compares against;
//! * [`recall`] — graph-vs-ground-truth recall measures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute;
pub mod graph;
pub mod io;
pub mod nn_descent;
pub mod nsw;
pub mod random;
pub mod recall;

pub use graph::{KnnGraph, Neighbor, NeighborList};
pub use nn_descent::NnDescentParams;
pub use nsw::NswParams;
