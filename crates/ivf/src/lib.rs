//! IVF serving subsystem: a cluster-backed inverted-file ANN index.
//!
//! Sec. 4.3 of the paper argues that the GK-means output is not just a
//! clustering but a *search structure*.  This crate makes that concrete: an
//! [`IvfIndex`] is built from **any** fit result of the workspace — GK-means,
//! Lloyd, Elkan/Hamerly; anything that yields centroids plus per-sample
//! labels — and serves nearest-neighbour queries with the canonical
//! cluster-then-search (FAISS-style inverted file) structure:
//!
//! * **Build** ([`IvfIndex::build`]) — the base vectors are re-ordered into
//!   one contiguous panel per cluster with an id remap, so a list scan is a
//!   straight streaming pass over memory (gather-free) through the batched
//!   one-to-many kernels.
//! * **Route** — a query block is scored against all `k` centroids in one
//!   register-blocked `m × k` distance tile
//!   ([`vecstore::kernels::l2_sq_many_to_many`]); each query probes its
//!   `nprobe` closest lists.
//! * **Scan** — every probed list streams through
//!   [`vecstore::kernels::l2_sq_one_to_many`] into a bounded top-`R` pool
//!   ordered by `(distance, original id)`.
//! * **Quantize** ([`IvfIndex::quantize`]) — an optional SQ8 serving tier:
//!   panels re-encoded as per-list per-dim min/max `u8` codes ([`sq8`])
//!   scanned through the asymmetric-distance kernel into an enlarged
//!   top-`(R · overfetch)` pool, survivors re-ranked through the **exact**
//!   `f32` pair kernel.  4× less panel memory streamed; at full overfetch
//!   the result is bit-identical to the `f32` path.
//! * **Batch** ([`IvfIndex::batch_search`]) — queries are cut into fixed
//!   [`search::QUERY_BLOCK`]-row blocks executed on
//!   [`vecstore::parallel::WorkerPool`] and merged in block order, the same
//!   discipline as the training engines: results are **bit-identical at any
//!   thread count**.  Per-query work is independent and the kernel tiling
//!   invariant makes the 1-query routing tile agree bit-for-bit with the
//!   blocked tile, so the batched API also returns exactly what a per-query
//!   loop returns — threading and batching change wall-clock only.
//! * **Persist** ([`IvfIndex::save`] / [`IvfIndex::load`]) — the index is a
//!   chunked-section file in `vecstore::io`'s native container format
//!   (centroids, list offsets, id remap, vector panel — one section each).
//! * **Evaluate** ([`evaluate`]) — batch recall@R / QPS against the same
//!   exact ground truth `anns::evaluate` consumes, reported through the
//!   shared [`anns::eval::SearchReport`], so graph search and IVF search are
//!   directly comparable.
//!
//! # Exactness and monotonicity
//!
//! Because every base vector lives in exactly one list, probing all lists
//! (`nprobe = k`) *is* an exhaustive scan: the result equals brute-force
//! top-`R` exactly.  Growing `nprobe` only ever adds candidates to a pool
//! keyed by a total order, so recall@R is non-decreasing in `nprobe`.  Both
//! properties are pinned by the test suite.
//!
//! # When to use which searcher
//!
//! The graph searcher ([`anns::GraphSearcher`]) wins on single-query latency
//! at high recall (data-dependent neighbourhood expansion, early stopping);
//! the IVF index wins on batched throughput, bounded per-query cost
//! (`k + nprobe · avg_list_len` evaluations, known in advance), trivial
//! persistence, and serving the clustering itself.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eval;
pub mod index;
pub mod io;
pub mod search;
pub mod sq8;
pub mod store;

pub use eval::{evaluate, IvfReport};
pub use index::IvfIndex;
pub use search::{IvfSearchParams, IvfSearchStats};
pub use sq8::Sq8Panels;
pub use store::{MutableStore, RecoveryReport};
