//! SQ8 scalar quantization of the inverted-list panels: per-list, per-dim
//! min/max affine codes packed to `u8`.
//!
//! The quantized tier exists to cut the memory streamed per scan 4× — the
//! bench trajectory shows the high-d serving path is memory-bound, so byte
//! traffic, not FLOPs, is the wall.  Each list `c` stores an affine code per
//! dimension `i`:
//!
//! ```text
//! code = round((v − min[c][i]) / scale[c][i])   clamped to 0..=255
//! v̂    = min[c][i] + scale[c][i] · code
//! ```
//!
//! with `scale = (max − min) / 255` fitted over the list's own rows, so the
//! **round-trip error is ≤ scale/2 per component** (up to `f32` rounding of
//! the de-quantization arithmetic — the property suite pins the bound with a
//! one-ulp-scale tolerance).  A constant dimension fits `scale = 0` and
//! encodes to code 0 exactly.
//!
//! Distances against quantized rows are computed **asymmetrically**: the
//! query stays `f32` and is re-based per list as `aq[i] = q[i] − min[c][i]`,
//! after which
//!
//! ```text
//! ‖q − v̂‖² = Σ_i (aq[i] − scale[c][i] · code[i])²
//! ```
//!
//! is exactly the form [`vecstore::kernels::l2_sq_sq8_one_to_many`] streams,
//! widening codes in-register — the panel bytes on the bus are 1/4 of the
//! `f32` scan's.  The scan over codes is approximate; the serving contract
//! (overfetch + exact re-rank, see [`crate::search`]) restores exactness at
//! the top of the pool.

/// Per-list, per-dim SQ8 parameters and code panels for one [`crate::IvfIndex`].
///
/// Mirrors the index's own layout: `codes` is the `n × d` byte panel in
/// panel-row order (each list contiguous), `append_codes[c]` shadows the
/// list's `f32` append region row for row.  `mins`/`scales` are `k × d`,
/// row `c` owning list `c`.
///
/// Parameters are **frozen at fit time**: rows appended after
/// [`crate::IvfIndex::quantize`] are encoded (and clamped) under the frozen
/// affine map; compaction re-fits from the live `f32` set, so drift is
/// bounded by the checkpoint cadence.
#[derive(Clone, Debug, PartialEq)]
pub struct Sq8Panels {
    /// Dimensionality (`d` of the owning index).
    pub(crate) dim: usize,
    /// `k × d` per-dim lower bounds, row-major.
    pub(crate) mins: Vec<f32>,
    /// `k × d` per-dim scales (`(max − min) / 255`; `0` for a constant dim).
    pub(crate) scales: Vec<f32>,
    /// `n × d` code panel, same row order as the index panel.
    pub(crate) codes: Vec<u8>,
    /// Per-list code shadow of the `f32` append regions.
    pub(crate) append_codes: Vec<Vec<u8>>,
}

/// Encodes one component under an affine map: `round((v − min) / scale)`
/// clamped to `0..=255`.  A non-positive (constant-dimension) scale encodes
/// to 0.  The division and rounding run in `f64` so the clamp decision never
/// suffers `f32` intermediate rounding.
#[inline]
pub fn encode_component(v: f32, min: f32, scale: f32) -> u8 {
    if scale <= 0.0 {
        return 0;
    }
    let code = ((f64::from(v) - f64::from(min)) / f64::from(scale)).round();
    code.clamp(0.0, 255.0) as u8
}

/// Decodes one component: `min + scale · code` — the exact arithmetic the
/// asymmetric distance kernel folds into its difference term.
#[inline]
pub fn decode_component(code: u8, min: f32, scale: f32) -> f32 {
    min + scale * f32::from(code)
}

/// Fits per-dim min/scale over the rows of one flat `rows.len()/d × d`
/// block (plus optional extra blocks), returning `(mins, scales)` of length
/// `d` each.  With no rows at all, both are all-zero (every code decodes
/// to 0 — an empty list never gets scanned anyway).
pub fn fit_list(blocks: &[&[f32]], d: usize) -> (Vec<f32>, Vec<f32>) {
    let mut mins = vec![f32::INFINITY; d];
    let mut maxs = vec![f32::NEG_INFINITY; d];
    let mut any = false;
    for block in blocks {
        for row in block.chunks_exact(d) {
            any = true;
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
    }
    if !any {
        return (vec![0.0; d], vec![0.0; d]);
    }
    let scales = mins
        .iter()
        .zip(&maxs)
        .map(|(&lo, &hi)| {
            let span = hi - lo;
            if span > 0.0 {
                span / 255.0
            } else {
                0.0
            }
        })
        .collect();
    (mins, scales)
}

/// Encodes one `d`-long row under the list's frozen parameters, appending
/// the `d` codes to `out`.
pub fn encode_row_into(row: &[f32], mins: &[f32], scales: &[f32], out: &mut Vec<u8>) {
    for ((&v, &lo), &s) in row.iter().zip(mins).zip(scales) {
        out.push(encode_component(v, lo, s));
    }
}

/// De-quantizes one `d`-long code row into `out`.
pub fn decode_row_into(codes: &[u8], mins: &[f32], scales: &[f32], out: &mut [f32]) {
    for (slot, ((&c, &lo), &s)) in out.iter_mut().zip(codes.iter().zip(mins).zip(scales)) {
        *slot = decode_component(c, lo, s);
    }
}

impl Sq8Panels {
    /// Number of lists covered.
    #[inline]
    pub fn nlist(&self) -> usize {
        self.append_codes.len()
    }

    /// Dimensionality of the quantized vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-dim lower bounds of list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    #[inline]
    pub fn list_mins(&self, c: usize) -> &[f32] {
        &self.mins[c * self.dim..(c + 1) * self.dim]
    }

    /// Per-dim scales of list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    #[inline]
    pub fn list_scales(&self, c: usize) -> &[f32] {
        &self.scales[c * self.dim..(c + 1) * self.dim]
    }

    /// Worst-case **squared** round-trip distance for a vector of list `c`
    /// that was inside the fitted range: `Σ_i (scale_i / 2)²`, accumulated in
    /// `f64`.  A de-quantized self-hit lands at most this far (plus `f32`
    /// rounding slack) from its own original row — the spot-check bound the
    /// CLI `index verify --sq8` asserts.
    pub fn self_hit_bound(&self, c: usize) -> f64 {
        self.list_scales(c)
            .iter()
            .map(|&s| {
                let h = f64::from(s) * 0.5;
                h * h
            })
            .sum()
    }

    /// Code row of panel position `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not a panel row.
    #[inline]
    pub fn panel_row_codes(&self, p: usize) -> &[u8] {
        &self.codes[p * self.dim..(p + 1) * self.dim]
    }

    /// Code row `j` of list `c`'s append-region shadow.
    ///
    /// # Panics
    ///
    /// Panics when `c` or `j` is out of range.
    #[inline]
    pub fn append_row_codes(&self, c: usize, j: usize) -> &[u8] {
        &self.append_codes[c][j * self.dim..(j + 1) * self.dim]
    }

    /// Total bytes held by the code panel and append shadows (the stream-side
    /// footprint the quantized tier trades the `f32` panel's `4·n·d` for).
    pub fn code_bytes(&self) -> usize {
        self.codes.len() + self.append_codes.iter().map(Vec::len).sum::<usize>()
    }
}
