//! Batch evaluation of IVF search: recall@R and throughput, comparable with
//! [`anns::evaluate`] on the same ground truth.

use std::time::Instant;

use anns::eval::SearchReport;
use knn_graph::Neighbor;
use vecstore::VectorSet;

use crate::index::IvfIndex;
use crate::search::IvfSearchParams;

/// Result of evaluating a query batch at one `nprobe` setting.
///
/// The knob-agnostic figures live in the shared [`SearchReport`], the same
/// type [`anns::AnnsReport`] embeds — run both searchers against the same
/// [`knn_graph::brute::exact_ground_truth`] and the reports are directly
/// comparable.
#[derive(Clone, Copy, Debug)]
pub struct IvfReport {
    /// Number of probed lists the search **actually used** (the requested
    /// `nprobe` clamped to `1..=nlist`), so recall-vs-`nprobe` curves plot
    /// the work performed, not the knob as typed.
    pub nprobe: usize,
    /// The searcher-agnostic recall/throughput figures.
    pub stats: SearchReport,
}

/// Runs every query through the index (batched) and reports recall@`r` plus
/// timing.
///
/// `ground_truth[q]` must hold the exact nearest neighbours of query `q` (at
/// least `r` of them), e.g. from [`knn_graph::brute::exact_ground_truth`] —
/// the same input [`anns::evaluate`] takes.
///
/// # Panics
///
/// Panics when the ground truth does not cover every query.
pub fn evaluate(
    index: &IvfIndex,
    queries: &VectorSet,
    ground_truth: &[Vec<Neighbor>],
    r: usize,
    params: IvfSearchParams,
) -> IvfReport {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover every query"
    );
    let start = Instant::now();
    let (batch, stats) = index.batch_search_with_stats(queries, r, params);
    let elapsed = start.elapsed();
    let results: Vec<Vec<u32>> = batch
        .into_iter()
        .map(|res| res.into_iter().map(|n| n.id).collect())
        .collect();
    IvfReport {
        nprobe: index.effective_nprobe(params.nprobe),
        stats: SearchReport::from_batch(&results, ground_truth, r, elapsed, stats.distance_evals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::exact_ground_truth;
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    /// Connected, mildly clustered data (the corpus shape `anns` evaluates
    /// on, so the two reports exercise comparable workloads).
    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 8) as f32 * 1.2;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    fn nearest_centroid_labels(data: &VectorSet, centroids: &VectorSet) -> Vec<usize> {
        use vecstore::distance::l2_sq;
        data.rows()
            .map(|row| {
                (0..centroids.len())
                    .min_by(|&a, &b| {
                        l2_sq(row, centroids.row(a))
                            .partial_cmp(&l2_sq(row, centroids.row(b)))
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn full_probe_evaluation_reports_perfect_recall() {
        let base = clustered(300, 4, 1);
        let queries = clustered(20, 4, 50);
        let centroids = base.gather(&(0..10).collect::<Vec<_>>()).unwrap();
        let labels = nearest_centroid_labels(&base, &centroids);
        let index = IvfIndex::build(&base, &centroids, &labels).unwrap();
        let gt = exact_ground_truth(&base, &queries, 5);
        let report = evaluate(
            &index,
            &queries,
            &gt,
            5,
            IvfSearchParams::default().nprobe(index.nlist()).threads(1),
        );
        assert_eq!(report.nprobe, 10);
        assert_eq!(report.stats.recall, 1.0, "full probe is an exact scan");
        assert!(report.stats.qps > 0.0);
        assert!(report.stats.avg_query_ms > 0.0);
        // routing + full panel scan per query
        assert_eq!(
            report.stats.avg_distance_evals,
            (index.nlist() + base.len()) as f64
        );
    }

    #[test]
    fn recall_is_monotone_in_nprobe_and_cost_grows() {
        let base = clustered(400, 4, 3);
        let queries = clustered(25, 4, 60);
        let centroids = base.gather(&(0..16).collect::<Vec<_>>()).unwrap();
        let labels = nearest_centroid_labels(&base, &centroids);
        let index = IvfIndex::build(&base, &centroids, &labels).unwrap();
        let gt = exact_ground_truth(&base, &queries, 5);
        let mut last_recall = -1.0f64;
        let mut last_evals = 0.0f64;
        for nprobe in [1usize, 2, 4, 8, 16] {
            let report = evaluate(
                &index,
                &queries,
                &gt,
                5,
                IvfSearchParams::default().nprobe(nprobe).threads(1),
            );
            assert!(
                report.stats.recall >= last_recall,
                "recall dropped from {last_recall} to {} at nprobe {nprobe}",
                report.stats.recall
            );
            assert!(report.stats.avg_distance_evals >= last_evals);
            last_recall = report.stats.recall;
            last_evals = report.stats.avg_distance_evals;
        }
        assert_eq!(last_recall, 1.0, "nprobe = k must reach exact recall");
    }

    #[test]
    #[should_panic(expected = "ground truth must cover every query")]
    fn mismatched_ground_truth_panics() {
        let base = clustered(50, 3, 5);
        let queries = clustered(5, 3, 6);
        let centroids = base.gather(&[0, 1]).unwrap();
        let labels = nearest_centroid_labels(&base, &centroids);
        let index = IvfIndex::build(&base, &centroids, &labels).unwrap();
        let _ = evaluate(&index, &queries, &[], 1, IvfSearchParams::default());
    }
}
